"""Train the same network under fp32, bf16, and FPRaker arithmetic.

This is the paper's Fig 17 study in miniature: the FPRaker-emulated run
must track the bfloat16 baseline, because out-of-bounds skipping only
drops terms that cannot change the rounded result.  Every MAC of every
layer -- forward, input-gradient and weight-gradient -- routes through
the arithmetic engine, just like the paper's PlaidML mad() override.

Run:  python examples/train_with_fpraker.py
"""

import numpy as np

from repro.nn.data import synthetic_images
from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.training import Trainer


def build_network(engine: MatmulEngine, rng: np.random.Generator) -> Sequential:
    return Sequential(
        [
            Conv2d(1, 8, 3, engine, rng, padding=1, name="conv1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 16, 3, engine, rng, padding=1, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(16 * 4, 4, engine, rng, name="fc"),
        ]
    )


def main() -> None:
    epochs = 10
    dataset = synthetic_images(
        classes=4, samples_per_class=150, size=8, noise=0.8, seed=7
    )
    print(
        f"Dataset: {len(dataset.train_y)} train / {len(dataset.test_y)} "
        f"test samples, {dataset.classes} classes\n"
    )
    curves = {}
    for mode in ("fp32", "bf16", "fpraker"):
        rng = np.random.default_rng(7)  # identical initialization
        engine = MatmulEngine(EngineConfig(mode=mode))
        network = build_network(engine, rng)
        trainer = Trainer(network, SGD(lr=0.04, momentum=0.9), batch_size=32, seed=7)
        history = trainer.fit(dataset, epochs=epochs)
        curves[mode] = history.test_accuracy
        print(f"{mode:8s} final={history.final_test_accuracy:.3f} "
              f"best={history.best_test_accuracy:.3f}")

    print("\nPer-epoch validation accuracy:")
    print("epoch  " + "  ".join(f"{m:>8s}" for m in curves))
    for epoch in range(epochs):
        row = "  ".join(f"{curves[m][epoch]:8.3f}" for m in curves)
        print(f"{epoch:5d}  {row}")

    gap = np.abs(
        np.array(curves["fpraker"][-3:]) - np.array(curves["bf16"][-3:])
    ).mean()
    print(
        f"\nFPRaker-vs-bf16 gap over the last 3 epochs: {gap:.4f} "
        "(the paper reports convergence within 0.1% of the baseline)."
    )


if __name__ == "__main__":
    main()
