"""Exponent base-delta compression on real and synthetic training tensors.

Captures tensors from an actual training run of the from-scratch
framework (the paper's PyTorch-hook substitute), compresses their
exponent streams with the paper's base-delta scheme, and compares
against the calibrated synthetic tensors -- Fig 10's measurement plus a
packing roundtrip through the 32x32 off-chip containers.

Run:  python examples/compression_study.py
"""

import numpy as np

from repro.compression.base_delta import compression_summary
from repro.memory.container import pack_containers, unpack_containers
from repro.traces.calibration import get_calibration
from repro.traces.capture import capture_training_traces
from repro.traces.synthetic import generate_tensor


def main() -> None:
    print("Training the capture model (real traces)...")
    captured = capture_training_traces(epochs=5, capture_epochs=(0, 4))
    print(
        f"  final accuracy {captured.history.final_test_accuracy:.3f} "
        f"over {len(captured.history.test_accuracy)} epochs\n"
    )

    print("Base-delta compression of REAL captured tensors (epoch 4):")
    print(f"{'tensor':8s} {'values':>10s} {'exp footprint':>14s} {'total ratio':>12s}")
    for tensor in ("I", "W", "G"):
        values = captured.tensor(4, tensor)
        summary = compression_summary(values)
        print(
            f"{tensor:8s} {summary.n_values:10d} "
            f"{summary.exponent_ratio:14.1%} {summary.total_ratio:12.1%}"
        )

    print("\nBase-delta compression of CALIBRATED synthetic tensors (VGG16):")
    calibration = get_calibration("VGG16")
    rng = np.random.default_rng(0)
    for tensor in ("A", "W", "G"):
        values = generate_tensor(calibration.for_tensor(tensor), 65536, rng)
        summary = compression_summary(values)
        print(
            f"{tensor:8s} {summary.n_values:10d} "
            f"{summary.exponent_ratio:14.1%} {summary.total_ratio:12.1%}"
        )

    # Containers: the off-chip layout the compressed stream rides in.
    print("\nContainer packing roundtrip (values stay bit-exact):")
    tensor3d = generate_tensor(calibration.activations, 64 * 3 * 64, rng).reshape(
        64, 3, 64
    )
    containers = pack_containers(tensor3d)
    restored = unpack_containers(containers, tensor3d.shape)
    print(
        f"  packed {tensor3d.size} values into {len(containers)} "
        f"containers of 32x32; roundtrip exact: "
        f"{bool(np.array_equal(restored, tensor3d))}"
    )


if __name__ == "__main__":
    main()
