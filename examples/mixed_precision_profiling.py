"""Per-layer accumulator-width profiling (the paper's Fig 21).

Derives Sakr-style per-layer accumulation widths from each layer's
reduction length, then simulates ResNet18 training with the fixed
12-bit accumulator versus the profiled widths.  FPRaker converts the
narrower out-of-bounds thresholds directly into cycles -- no hardware
change, just more terms that provably cannot affect the result.

Run:  python examples/mixed_precision_profiling.py
"""

import repro.api as api
from repro.core.config import baseline_paper_config
from repro.models.zoo import get_model
from repro.nn.sakr import sakr_accumulator_profile


def main(model: str = "ResNet18") -> None:
    spec = get_model(model)
    profile = sakr_accumulator_profile(
        {
            layer.name: layer.phase_reduction("AxW", spec.batch)
            for layer in spec.layers
        }
    )
    print(f"Sakr accumulator profile for {model}:")
    print(f"{'layer':16s} {'reduction':>10s} {'frac bits':>10s}  (fixed: 12)")
    for layer in spec.layers:
        print(
            f"{layer.name:16s} {layer.reduction:10d} "
            f"{profile[layer.name]:10d}"
        )

    # One session, so the three runs share workload tensors and cache.
    session = api.session()
    baseline = api.simulate(
        model, baseline_paper_config(), session=session
    )
    fixed = api.simulate(model, session=session)
    profiled = api.simulate(model, acc_profile=profile, session=session)

    print("\nSpeedup over the bit-parallel baseline (paper Fig 21):")
    print(f"{'config':14s} {'AxW':>6s} {'GxW':>6s} {'AxG':>6s} {'total':>7s}")
    for label, result in ((model, fixed), (f"{model}-P", profiled)):
        row = "  ".join(
            f"{result.phase_speedup_vs(baseline, phase):5.2f}"
            for phase in ("AxW", "GxW", "AxG")
        )
        print(f"{label:14s} {row}  {result.speedup_vs(baseline):6.2f}")
    gain = profiled.speedup_vs(baseline) / fixed.speedup_vs(baseline)
    print(
        f"\nProfiled widths are {gain:.2f}x faster than the fixed-width "
        "accumulator (the paper reports 1.56x vs 1.13x for ResNet18 on "
        "ImageNet -- a 1.38x relative gain)."
    )


if __name__ == "__main__":
    main()
