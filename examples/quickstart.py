"""Quickstart: one FPRaker PE, term by term.

Runs a single processing element on a group of bfloat16 operand pairs,
shows the term-serial schedule (useful work, stalls, skipped terms),
and verifies the result is bit-identical to the extended-precision
reference when nothing is skipped.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.encoding.booth import terms_of_value
from repro.fp.accumulator import ExtendedAccumulator, exact_product
from repro.fp.bfloat16 import bf16_quantize


def main() -> None:
    rng = np.random.default_rng(42)
    a = bf16_quantize(rng.normal(0.0, 1.0, 8))
    a[[2, 5]] = 0.0  # natural sparsity: ReLU zeros
    b = bf16_quantize(rng.normal(0.0, 4.0, 8))

    print("Serial-side operands (A) and their signed power-of-two terms:")
    for i, x in enumerate(a):
        terms = terms_of_value(float(x))
        rendered = " ".join(
            f"{'+' if t.sign > 0 else '-'}2^{t.exponent_offset}" for t in terms
        )
        print(f"  lane {i}: {x:+10.4f}  ->  {rendered or '(no terms)'}")

    pe = FPRakerPE(PEConfig())
    trace = pe.process_group(a, b)
    print("\nOne PE group (8 MACs) processed term-serially:")
    print(f"  cycles                : {trace.cycles}")
    print(f"  terms fired           : {trace.terms_processed}")
    print(f"  zero slots skipped    : {trace.terms_zero_skipped} (of 64)")
    print(f"  out-of-bounds skipped : {trace.terms_ob_skipped}")
    print(f"  result (extended)     : {pe.value():.10f}")
    print(f"  result (bfloat16)     : {pe.read_bf16():.10f}")

    # The bit-parallel baseline would spend 8 bit positions per MAC; the
    # PE spent `cycles` rounds instead.
    parallel_work = 8 * 8
    print(
        f"\nBit-parallel equivalent work: {parallel_work} bit-slots; "
        f"FPRaker fired {trace.terms_processed} terms in {trace.cycles} cycles."
    )

    # Exactness check: without OB skipping, the PE must match the golden
    # accumulator bit for bit.
    pe_exact = FPRakerPE(PEConfig(ob_skip=False))
    pe_exact.process_group(a, b)
    reference = ExtendedAccumulator()
    reference.accumulate([exact_product(x, y) for x, y in zip(a, b)])
    assert pe_exact.value() == reference.value()
    print(
        "\nVerified: with OB skipping disabled the PE reproduces the "
        "extended-precision reference exactly "
        f"({pe_exact.value():.10f})."
    )


if __name__ == "__main__":
    main()
