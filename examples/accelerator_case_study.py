"""Simulate a full training step of one model on the FPRaker accelerator.

Simulates a Table-I model on the iso-area FPRaker (36 tiles) and the
bit-parallel baseline (8 tiles) through the :mod:`repro.api` facade,
and reports per-phase speedups, the lane-cycle breakdown, skipped-term
composition, and the energy split -- Figs 11-15 of the paper for a
single model.

Run:  python examples/accelerator_case_study.py [model]
"""

import sys

import repro.api as api
from repro.core.config import baseline_paper_config
from repro.models.zoo import STUDIED_MODELS


def main(model: str = "ResNet18-Q") -> None:
    if model not in STUDIED_MODELS:
        raise SystemExit(f"unknown model {model!r}; choose from {STUDIED_MODELS}")
    print(f"Simulating one training step of {model} (progress 50%)...\n")
    # One session, so both runs share the generated workload tensors.
    session = api.session()
    fpraker = api.simulate(model, progress=0.5, session=session)
    baseline = api.simulate(
        model, baseline_paper_config(), progress=0.5, session=session
    )

    print(f"{'phase':6s} {'FPRaker cycles':>16s} {'baseline cycles':>16s} {'speedup':>8s}")
    for phase in ("AxW", "GxW", "AxG"):
        own = fpraker.cycles_of_phase(phase)
        other = baseline.cycles_of_phase(phase)
        print(f"{phase:6s} {own:16.3e} {other:16.3e} {other / own:8.2f}")
    print(
        f"{'total':6s} {fpraker.cycles:16.3e} {baseline.cycles:16.3e} "
        f"{fpraker.speedup_vs(baseline):8.2f}"
    )

    counters = fpraker.counters_total()
    print("\nLane-cycle breakdown (paper Fig 15):")
    for name, fraction in counters.lanes.fractions().items():
        print(f"  {name:12s} {fraction:6.1%}")

    terms = counters.terms
    print("\nTerm work (paper Fig 13):")
    print(f"  slots skipped        : {terms.skipped_fraction():6.1%}")
    print(f"  out-of-bounds share  : {terms.ob_share_of_skipped():6.1%}")

    fpr_energy = fpraker.energy_total()
    base_energy = baseline.energy_total()
    print("\nEnergy (paper Figs 11/12):")
    print(f"  FPRaker core         : {fpr_energy.core.total / 1e6:10.2f} mJ")
    print(f"  baseline core        : {base_energy.core.total / 1e6:10.2f} mJ")
    print(
        f"  core efficiency      : "
        f"{base_energy.core.total / fpr_energy.core.total:10.2f}x"
    )
    print(
        f"  total efficiency     : "
        f"{base_energy.total / fpr_energy.total:10.2f}x"
    )
    print(
        f"\nOff-chip traffic with base-delta compression: "
        f"{sum(p.dram_bytes for p in fpraker.phases) / 1e9:.2f} GB "
        f"(raw {sum(p.dram_bytes_raw for p in fpraker.phases) / 1e9:.2f} GB)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet18-Q")
