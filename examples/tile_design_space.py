"""Explore the tile design space: the ablations behind FPRaker's choices.

Sweeps the four area-saving design knobs of the paper's Section IV --
shift window, exponent-block sharing, B-buffer depth, and rows per tile
-- over one model, showing the performance cost/benefit of each choice
(paper Figs 15/19/20 and the Section IV design discussion).

Run:  python examples/tile_design_space.py
"""

from dataclasses import replace

import repro.api as api
from repro.core.config import baseline_paper_config, fpraker_paper_config

MODEL = "VGG16"

# One session for the whole sweep: every point shares the generated
# workload tensors, and repeated configurations hit the memo.
SESSION = api.session()


def _speedup(config, baseline) -> float:
    result = api.simulate(MODEL, config, progress=0.5, session=SESSION)
    return result.speedup_vs(baseline)


def main() -> None:
    baseline = api.simulate(
        MODEL, baseline_paper_config(), progress=0.5, session=SESSION
    )
    default = fpraker_paper_config()
    print(f"Design-space ablations on {MODEL} (speedup vs baseline)\n")

    print("Shift window (paper: 3; larger windows cost shifter area):")
    for window in (1, 2, 3, 6, 12):
        pe = replace(default.tile.pe, shift_window=window)
        config = replace(default, tile=replace(default.tile, pe=pe))
        marker = "  <- paper" if window == 3 else ""
        print(f"  window {window:2d}: {_speedup(config, baseline):5.2f}x{marker}")

    print("\nExponent-block sharing (paper: 2 PEs per block):")
    for sharing in (1, 2, 4):
        pe = replace(default.tile.pe, exponent_sharing=sharing)
        config = replace(default, tile=replace(default.tile, pe=pe))
        marker = "  <- paper" if sharing == 2 else ""
        print(f"  {sharing} PE/block: {_speedup(config, baseline):5.2f}x{marker}")

    print("\nPer-PE B-buffer depth (cross-column run-ahead):")
    for depth in (1, 2, 4, 8):
        config = replace(default, tile=replace(default.tile, buffer_depth=depth))
        marker = "  <- default" if depth == default.tile.buffer_depth else ""
        print(f"  depth {depth}: {_speedup(config, baseline):5.2f}x{marker}")

    print("\nRows per tile at constant total PEs (paper Fig 19):")
    for rows in (2, 4, 8, 16):
        tiles = default.tiles * default.tile.rows // rows
        config = replace(
            default, tiles=tiles, tile=replace(default.tile, rows=rows)
        )
        marker = "  <- paper" if rows == 8 else ""
        print(
            f"  {rows:2d} rows x {tiles:2d} tiles: "
            f"{_speedup(config, baseline):5.2f}x{marker}"
        )

    print("\nOut-of-bounds skipping and compression (paper Fig 11):")
    for label, ob, bdc in (
        ("zero terms only        ", False, False),
        ("+ base-delta compress  ", False, True),
        ("+ out-of-bounds skip   ", True, True),
    ):
        pe = replace(default.tile.pe, ob_skip=ob)
        config = replace(
            default,
            tile=replace(default.tile, pe=pe),
            base_delta_compression=bdc,
        )
        print(f"  {label}: {_speedup(config, baseline):5.2f}x")


if __name__ == "__main__":
    main()
