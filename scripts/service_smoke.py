"""End-to-end smoke of the `repro serve` daemon (the CI service job).

Starts a real daemon process, issues one `/simulate`, a cold `/sweep`
over the Fig 11 models, then repeats the sweep and asserts the second
pass is answered almost entirely (>= 90%) from the shared store with
zero new simulations.  Finishes with `/stats` and writes the whole
transcript as JSON for the CI artifact upload.

Usage::

    python scripts/service_smoke.py --out service-smoke.json
    python scripts/service_smoke.py --models NCF SNLI   # quicker run
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def _free_port() -> int:
    """A TCP port the daemon can bind."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _start_daemon(store: Path, port: int, jobs: int) -> subprocess.Popen:
    """Launch `repro serve` and wait for its listening line."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store),
            "--port", str(port),
            "--jobs", str(jobs),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            return process
        if process.poll() is not None:
            raise SystemExit(
                f"daemon exited with {process.returncode} before listening"
            )
    process.kill()
    raise SystemExit("daemon did not start listening within 60s")


def main(argv: list[str] | None = None) -> int:
    """Run the smoke; exit non-zero on any broken invariant."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="models to sweep (default: the full Fig 11 set)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--out",
        default="service-smoke.json",
        help="JSON transcript path (default: service-smoke.json)",
    )
    args = parser.parse_args(argv)

    import repro.api as api
    from repro.models.zoo import STUDIED_MODELS

    models = list(args.models or STUDIED_MODELS)
    transcript: dict = {"models": models, "jobs": args.jobs, "checks": []}

    def check(name: str, ok: bool, detail) -> None:
        transcript["checks"].append(
            {"name": name, "ok": bool(ok), "detail": detail}
        )
        print(f"{'PASS' if ok else 'FAIL'}  {name}: {detail}", flush=True)
        if not ok:
            _finish(transcript, args.out)
            raise SystemExit(1)

    def _finish(transcript: dict, out: str) -> None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(transcript, indent=2) + "\n")

    port = _free_port()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        process = _start_daemon(Path(tmp) / "store", port, args.jobs)
        try:
            client = api.connect(f"http://127.0.0.1:{port}")
            check("healthz", client.healthy(), "daemon answers health check")

            status, result = client.submit(models[0])
            check(
                "simulate-cold",
                status == "miss" and result is not None,
                f"first /simulate of {models[0]} is a {status}",
            )
            status, _ = client.submit(models[0])
            check(
                "simulate-warm",
                status == "hit",
                f"second /simulate of {models[0]} is a {status}",
            )

            started = time.monotonic()
            cold = client.sweep(models)
            cold_seconds = round(time.monotonic() - started, 3)
            transcript["cold_sweep"] = {
                "stats": cold.stats, "seconds": cold_seconds,
            }
            check(
                "sweep-cold",
                all(r is not None for r in cold.results),
                f"{len(models)} models in {cold_seconds}s "
                f"(stats: {cold.stats})",
            )

            simulations_before = client.stats()["stats"]["simulations"]
            started = time.monotonic()
            warm = client.sweep(models)
            warm_seconds = round(time.monotonic() - started, 3)
            simulations_after = client.stats()["stats"]["simulations"]
            transcript["warm_sweep"] = {
                "stats": warm.stats,
                "seconds": warm_seconds,
                "hit_fraction": warm.hit_fraction,
                "new_simulations": simulations_after - simulations_before,
            }
            check(
                "sweep-warm-hits",
                warm.hit_fraction >= 0.9,
                f"hit fraction {warm.hit_fraction:.2f} (>= 0.90 required)",
            )
            check(
                "sweep-warm-no-new-simulations",
                simulations_after == simulations_before,
                f"{simulations_after - simulations_before} new simulations",
            )
            for index, model in enumerate(models):
                if json.dumps(warm.results[index].to_dict()) != json.dumps(
                    cold.results[index].to_dict()
                ):
                    check(
                        "sweep-warm-bytes",
                        False,
                        f"{model} warm result differs from cold",
                    )
            check(
                "sweep-warm-bytes",
                True,
                "warm results byte-identical to cold",
            )

            stats = client.stats()
            transcript["stats"] = stats
            check(
                "stats",
                stats["store"]["entries"] == len(models)
                and stats["store"]["stale_entries"] == 0,
                f"store holds {stats['store']['entries']} entries",
            )
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
    _finish(transcript, args.out)
    print(f"transcript written to {args.out}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
