"""Legacy setup shim (the environment's setuptools predates PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={
        # Everything CI needs on top of the runtime deps: the test
        # runner, the property-test engine, the benchmark timer, and
        # the coverage gate.  `pip install -e .[dev]` is the single
        # supported dev setup -- keep CI pointed here instead of
        # hand-listing packages in the workflow.
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
        ],
        # Optional compiled kernel backends (`--kernel-backend numba`).
        # Pure speed: every backend is bit-identical by contract, so
        # nothing else may depend on this extra being installed.
        "backends": [
            "numba>=0.59",
        ],
        # Static-analysis toolchain for the CI lint gate: ruff/mypy
        # configs live in ruff.toml / mypy.ini; the project-specific
        # rules need no extra install (`repro lint` ships in-package).
        "lint": [
            "ruff",
            "mypy",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.__main__:main",
        ],
    },
    python_requires=">=3.10",
)
