"""Figs 11 and 14: the headline iso-area speedups and per-phase breakdown."""

from conftest import run_once, show

from repro.harness import run_fig11_speedup, run_fig14_phases


def test_fig11_iso_area_speedup(benchmark):
    table = run_once(benchmark, run_fig11_speedup)
    show(
        table,
        "Fig 11: geomean 1.5x total speedup (zero terms +9%, BDC +5.8%, "
        "OB +35.2%); ResNet18-Q best convnet at 2.04x; SNLI 1.8x; core "
        "energy efficiency 1.4x.",
    )
    geomean = table.rows[-1]
    zero, bdc, full, energy = geomean[1], geomean[2], geomean[3], geomean[4]
    # Decomposition is cumulative and every component helps.
    assert zero > 0.95
    assert bdc >= zero
    assert full > bdc
    # Headline bands.
    assert 1.3 <= full <= 1.8
    assert 1.15 <= energy <= 1.8
    by_model = {row[0]: row for row in table.rows[:-1]}
    # ResNet18-Q is the best image classifier; SNLI is near 1.8x.
    convnets = ("SqueezeNet 1.1", "VGG16", "ResNet50-S2")
    assert all(by_model["ResNet18-Q"][3] > by_model[m][3] for m in convnets)
    assert 1.5 <= by_model["SNLI"][3] <= 2.1


def test_fig14_phase_speedups(benchmark):
    table = run_once(benchmark, run_fig14_phases)
    show(
        table,
        "Fig 14: FPRaker outperforms the baseline on all three phases "
        "of every model; the ranking follows each phase's term sparsity.",
    )
    geomean = table.rows[-1]
    for phase_speedup in geomean[1:]:
        assert phase_speedup > 1.0
