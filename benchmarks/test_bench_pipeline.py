"""Cold-vs-optimized full-pipeline benchmark with a machine-readable
trajectory file.

The headline figures sweep many accelerator configurations over the
same models, so end-to-end cost is dominated by how much per-config
work the pipeline re-does.  This benchmark runs one fig19/fig11-shaped
smoke sweep (several FPRaker geometries plus the baseline over two
training-progress points) twice:

* **legacy**: the pre-reuse pipeline shape -- workloads rebuilt per
  configuration (cold Gibbs inverse each time), one tile-engine call
  per phase (no multi-phase stacking), fresh per-config compression
  measurements;
* **optimized**: the content-addressed workload cache shares one build
  per (model, progress) across every configuration, phases stack into
  batched tile calls, and the per-workload memos (compression ratio,
  serial-side choice) amortize across configs.

Both runs must agree bit for bit before their times may be compared;
the optimized pipeline must be at least 3x faster on the sweep.  The
measured numbers land in ``benchmarks/results/BENCH_pipeline.json``
(the machine-readable perf trajectory, uploaded as a CI artifact)
alongside a per-stage profile from ``repro profile``'s engine.
"""

import json
import pathlib
import time

import numpy as np
import pytest
from conftest import show

from repro.core.accelerator import AcceleratorSimulator
from repro.core.baseline import BaselineAccelerator
from repro.core.config import baseline_paper_config, fpraker_paper_config
from repro.harness.profiling import profile_pipeline
from repro.harness.report import Table
from repro.traces.synthetic import gibbs_cache_clear
from repro.traces.workload_cache import WorkloadCache
from repro.traces.workloads import build_workloads

BENCH_FILE = pathlib.Path(__file__).parent / "results" / "BENCH_pipeline.json"

MODEL = "NCF"
PROGRESS_POINTS = (0.5, 0.8)
# Reduced sampling keeps the smoke sweep seconds-scale; the reuse
# structure under test is sampling-independent.
SAMPLING = dict(sample_strips=2, sample_steps=8)
GATE = 3.0


def _rows_config(rows):
    from dataclasses import replace

    config = fpraker_paper_config()
    tiles = config.tiles * config.tile.rows // rows
    return replace(config, tiles=tiles, tile=replace(config.tile, rows=rows))


def _sweep_configs():
    from repro.harness.experiments import _variant_config

    # The fig11 decomposition variants plus two fig19 row geometries
    # and the bit-parallel baseline: the per-model configuration mix
    # one `repro run all` actually sweeps.
    return (
        fpraker_paper_config(),
        _variant_config("zero"),
        _variant_config("zero+bdc"),
        _rows_config(4),
        _rows_config(16),
        baseline_paper_config(),
    )


def _run_legacy():
    """Rebuild-per-config pipeline: no reuse, no stacking."""
    results = []
    for progress in PROGRESS_POINTS:
        for config in _sweep_configs():
            gibbs_cache_clear()
            workloads = build_workloads(MODEL, progress=progress, cache=None)
            if config.name == "baseline":
                result = BaselineAccelerator(config).simulate_workload(
                    workloads
                )
            else:
                result = AcceleratorSimulator(
                    config, phase_stacking=False, **SAMPLING
                ).simulate_workload(workloads)
            results.append(result)
    return results


def _run_optimized():
    """Shared workload build + stacked batched engine per config."""
    gibbs_cache_clear()
    cache = WorkloadCache()
    results = []
    for progress in PROGRESS_POINTS:
        for config in _sweep_configs():
            workloads = build_workloads(MODEL, progress=progress, cache=cache)
            if config.name == "baseline":
                result = BaselineAccelerator(config).simulate_workload(
                    workloads
                )
            else:
                result = AcceleratorSimulator(
                    config, **SAMPLING
                ).simulate_workload(workloads)
            results.append(result)
    return results


def test_pipeline_reuse_speedup(benchmark):
    """Cold sweep vs reuse-enabled sweep: bit-identical, >= 3x."""
    from repro.harness.profiling import _best_of

    # Warm both paths once (numpy dispatch caches, page faults) before
    # any timed measurement: the first-ever invocation is noticeably
    # slower and must not bias either side of the ratio.
    _run_optimized()
    _run_legacy()
    t_opt, optimized = _best_of(_run_optimized, 3)
    benchmark.pedantic(_run_optimized, rounds=1, iterations=1)
    t_legacy, legacy = _best_of(_run_legacy, 3)
    # Identical results are a precondition of the timing comparison.
    assert len(optimized) == len(legacy)
    for got, want in zip(optimized, legacy):
        assert got.to_dict() == want.to_dict()
    if t_legacy / t_opt < GATE:
        # One re-measurement before judging: a background blip during
        # either ~0.5s window can dent the ratio on shared runners.
        from repro.harness.profiling import _best_of as _retry_best

        t_opt = min(t_opt, _retry_best(_run_optimized, 3)[0])
        t_legacy = min(t_legacy, _retry_best(_run_legacy, 3)[0])
    speedup = t_legacy / t_opt
    table = Table(
        f"Cold vs optimized sweep pipeline "
        f"({MODEL}, {len(PROGRESS_POINTS) * len(_sweep_configs())} runs)",
        ["pipeline", "time [s]", "speedup"],
    )
    table.add_row("legacy (rebuild per config)", t_legacy, 1.0)
    table.add_row("optimized (reuse + stacking)", t_opt, speedup)
    show(
        table,
        "Workload reuse + phase stacking: the sweep pays tensor "
        "generation once per (model, progress) instead of once per "
        "configuration.",
    )
    payload = {
        "bench": "pipeline",
        "workload": {
            "model": MODEL,
            "progress_points": list(PROGRESS_POINTS),
            "configs": [c.name for c in _sweep_configs()],
            "sampling": SAMPLING,
        },
        "legacy_seconds": t_legacy,
        "optimized_seconds": t_opt,
        "speedup": speedup,
        "gate": GATE,
        "stage_profile": profile_pipeline(MODEL, repeats=1),
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup >= GATE


BACKEND_GATE = 2.0


def _schedule_stack(seed, groups, lanes, n_terms, kmax):
    """A compacting-loop input shaped like a real multi-phase stack."""
    sentinel = np.int16(1 << 12)
    rng = np.random.default_rng(seed)
    count = rng.integers(0, n_terms + 1, (groups, lanes))
    k = rng.integers(0, kmax, (groups, lanes, n_terms)).astype(np.int16)
    k.sort(axis=-1)
    slot = np.arange(n_terms)
    k = np.where(slot < count[:, :, None], k, sentinel)
    return k, count, int(sentinel)


def test_numba_schedule_loop_speedup():
    """Numba vs numpy on the compacting cycle loop: identical, >= 2x.

    Skips without the ``[backends]`` extra; the numpy-only container
    still gates the reuse speedup above.  The measured comparison rides
    along in ``BENCH_pipeline.json`` as a ``kernel_backends`` section.
    """
    pytest.importorskip("numba")
    from repro.backends import get_backend
    from repro.harness.profiling import _best_of

    numpy_backend = get_backend("numpy")
    numba_backend = get_backend("numba")
    # A stack the size simulate_workload actually batches: thousands of
    # reduction groups across the PE lanes of a phase stack.
    k, kept, sentinel = _schedule_stack(7, 8192, 8, 5, 14)
    window = 3

    def run_numpy():
        return numpy_backend.compact_cycle_loop(k, kept, window, sentinel)

    def run_numba():
        return numba_backend.compact_cycle_loop(k, kept, window, sentinel)

    # First numba call pays JIT compilation; warm both before timing.
    want = run_numpy()
    got = run_numba()
    for ours, theirs in zip(got, want):
        assert ours.dtype == theirs.dtype
        assert (ours == theirs).all()
    t_numpy, _ = _best_of(run_numpy, 5)
    t_numba, _ = _best_of(run_numba, 5)
    if t_numpy / t_numba < BACKEND_GATE:
        t_numpy = min(t_numpy, _best_of(run_numpy, 5)[0])
        t_numba = min(t_numba, _best_of(run_numba, 5)[0])
    speedup = t_numpy / t_numba
    table = Table(
        f"Kernel backends on the compacting schedule loop "
        f"({k.shape[0]} groups x {k.shape[1]} lanes)",
        ["backend", "time [s]", "speedup"],
    )
    table.add_row("numpy (reference)", t_numpy, 1.0)
    table.add_row("numba (@njit)", t_numba, speedup)
    show(
        table,
        "Bit-identical by contract -- the knob buys speed only, so "
        "cached results stay valid across backends.",
    )
    payload = (
        json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else {}
    )
    payload["kernel_backends"] = {
        "kernel": "compact_cycle_loop",
        "shape": list(k.shape),
        "numpy_seconds": t_numpy,
        "numba_seconds": t_numba,
        "speedup": speedup,
        "gate": BACKEND_GATE,
    }
    BENCH_FILE.parent.mkdir(exist_ok=True)
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup >= BACKEND_GATE
