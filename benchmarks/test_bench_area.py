"""Table III: per-tile area/power and the iso-compute-area tile counts."""

from conftest import run_once, show

from repro.harness import run_table3


def test_table3_area_power(benchmark):
    table = run_once(benchmark, run_table3)
    show(
        table,
        "Table III: FPRaker tile 317,068 um^2 (0.22x of baseline's "
        "1,421,579), 109.5 mW vs 475 mW; 36 FPRaker / 20 Pragmatic tiles "
        "fit the 8-baseline-tile compute area.",
    )
    assert table.rows[2][4] == 36  # iso-area FPRaker tiles
    assert table.rows[3][4] == 20  # iso-area Pragmatic tiles
