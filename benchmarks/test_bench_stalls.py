"""Figs 15 and 16: lane-cycle breakdown and the OBS synchronization effect."""

from conftest import run_once, show

from repro.harness import run_fig15_stalls, run_fig16_obs_sync


def test_fig15_lane_efficiency(benchmark):
    table = run_once(benchmark, run_fig15_stalls)
    show(
        table,
        "Fig 15: cross-lane term imbalance ('no term') is the largest "
        "stall class (32.8% average, up to 55% for NCF); shift-range, "
        "inter-PE and exponent stalls are small.",
    )
    for row in table.rows:
        useful, no_term, shift, inter_pe, exponent = row[1:6]
        assert abs(useful + no_term + shift + inter_pe + exponent - 1.0) < 1e-6
        assert no_term == max(no_term, shift, inter_pe, exponent)
        assert shift < 0.12  # the 3-bit window is a good trade
    by_model = {row[0]: row for row in table.rows}
    assert by_model["NCF"][2] > 0.35  # NCF's imbalance is the worst


def test_fig16_obs_reduces_sync(benchmark):
    table = run_once(benchmark, run_fig16_obs_sync)
    show(
        table,
        "Fig 16: skipping out-of-bounds terms reduces the total "
        "synchronization overhead (paper: 30.3% average) by trimming "
        "the slowest lane's tail.",
    )
    mean_reduction = table.rows[-1][-1]
    assert mean_reduction > 0.0
