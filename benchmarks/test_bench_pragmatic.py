"""Section I's negative result: bfloat16 Bit-Pragmatic at iso area."""

from conftest import run_once, show

from repro.harness import run_pragmatic_comparison


def test_pragmatic_fp_comparison(benchmark):
    table = run_once(benchmark, run_pragmatic_comparison)
    show(
        table,
        "Section I: the bfloat16 Bit-Pragmatic configuration is on "
        "average 1.72x slower and 1.96x less energy efficient than the "
        "optimized bit-parallel baseline (worst case 2.86x / 3.2x) -- "
        "the negative result motivating FPRaker's design.",
    )
    geomean = table.rows[-1]
    slowdown, inefficiency = geomean[1], geomean[2]
    assert 1.4 <= slowdown <= 2.1
    assert 1.5 <= inefficiency <= 2.4
    worst = max(row[1] for row in table.rows[:-1])
    assert worst > 1.9  # a clearly bad worst case exists
