"""The batched strip engine vs the serial reference, cold.

A fig11-class simulation (a Table-I model's full training step at the
default sampling of 8 strips x 32 steps per layer-phase) is the shape
of work every figure of the paper pays for on a cold cache.  The
batched engine must produce bit-identical results to the serial
reference -- the cache and the batch change cost, never results -- and
the acceptance bar for the batching refactor is a >= 3x cold speedup.
"""

import time

from conftest import show

from repro.core.accelerator import AcceleratorSimulator
from repro.core.tile import TileSimulator
from repro.harness.report import Table
from repro.traces.workloads import build_workloads

MODEL = "NCF"  # fig11's cheapest Table-I model: fast enough to time 5x


def _best_of(fn, repeats=5):
    """Minimum wall time over several runs (noise-robust on CI)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_strip_engine_speedup(benchmark):
    """Tile-level engine: one batched pass vs the per-strip loop."""
    import numpy as np

    from repro.fp.bfloat16 import bf16_quantize

    rng = np.random.default_rng(2024)
    strips, steps = 8, 32  # the default sampling of one layer-phase
    a = bf16_quantize(
        rng.normal(0, 1, (strips, 8, steps, 8))
        * 2.0 ** rng.integers(-4, 4, (strips, 8, steps, 8))
    )
    b = bf16_quantize(
        rng.normal(0, 1, (strips, 8, steps, 8))
        * 2.0 ** rng.integers(-4, 4, (strips, 8, steps, 8))
    )
    a[rng.random(a.shape) < 0.4] = 0.0
    sim = TileSimulator()

    def serial():
        return [sim.simulate_strip(a[i], b[i]) for i in range(strips)]

    serial()  # warm numpy dispatch caches
    batch = benchmark.pedantic(
        sim.simulate_strips, args=(a, b), rounds=5, iterations=1
    )
    t_serial = _best_of(serial)
    t_batched = _best_of(lambda: sim.simulate_strips(a, b))
    reference = serial()
    for i in range(strips):
        assert batch.strip_result(i).counters == reference[i].counters
    speedup = t_serial / t_batched
    table = Table(
        "Batched strip engine (8 strips x 32 steps, 8x8 tile)",
        ["engine", "time [ms]", "speedup"],
    )
    table.add_row("serial reference", t_serial * 1e3, 1.0)
    table.add_row("batched", t_batched * 1e3, speedup)
    show(
        table,
        "Engine refactor: one simulate_strips pass covers the default "
        "sampling bit-identically, >= 3x faster than the strip loop.",
    )
    assert speedup >= 3.0


def test_fig11_class_cold_simulation_speedup(benchmark):
    """Workload-level: a cold fig11-class model simulation end to end."""
    workloads = build_workloads(MODEL, progress=0.5, seed=0)
    batched_sim = AcceleratorSimulator(strip_engine="batched")
    serial_sim = AcceleratorSimulator(strip_engine="serial")
    batched = benchmark.pedantic(
        batched_sim.simulate_workload, args=(workloads,), rounds=3, iterations=1
    )
    serial = serial_sim.simulate_workload(workloads)
    # The engines must agree bit for bit before their times may be
    # compared.
    assert batched.to_dict() == serial.to_dict()
    t_batched = _best_of(lambda: batched_sim.simulate_workload(workloads), 3)
    t_serial = _best_of(lambda: serial_sim.simulate_workload(workloads), 3)
    speedup = t_serial / t_batched
    table = Table(
        f"Cold {MODEL} training-step simulation (default sampling)",
        ["engine", "time [s]", "speedup"],
    )
    table.add_row("serial reference", t_serial, 1.0)
    table.add_row("batched", t_batched, speedup)
    show(
        table,
        "Fig 11-class cold run: batching the strip dimension pays even "
        "after workload generation and the memory model are included.",
    )
    # The tile-level engine clears 3x with margin; end to end the bar
    # stays above 2x after the engine-independent per-phase work.
    assert speedup >= 2.0
