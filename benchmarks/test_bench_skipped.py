"""Fig 13: the breakdown of skipped terms (zero vs out-of-bounds)."""

from conftest import run_once, show

from repro.harness import run_fig13_skipped


def test_fig13_skipped_terms(benchmark):
    table = run_once(benchmark, run_fig13_skipped)
    show(
        table,
        "Fig 13: zero terms dominate the skipped work everywhere; "
        "out-of-bounds skipping adds ~5-10% for ResNet50-S2/Detectron2 "
        "and least for the models that are already very sparse.",
    )
    by_model = {row[0]: row for row in table.rows}
    for model, row in by_model.items():
        skipped, zero_share, ob_share = row[1], row[2], row[3]
        assert 0.5 < skipped < 1.0
        assert zero_share > ob_share  # zeros dominate (Fig 13's shape)
    # Quantized ResNet18-Q gains mostly from zero terms (paper text).
    assert by_model["ResNet18-Q"][3] < 0.15
