"""Fig 12: the energy-consumption breakdown."""

from conftest import run_once, show

from repro.harness import run_fig12_energy


def test_fig12_energy_breakdown(benchmark):
    table = run_once(benchmark, run_fig12_energy)
    show(
        table,
        "Fig 12: FPRaker plus BDC cut core-logic and off-chip energy; "
        "overall efficiency 1.36x when everything is accounted.",
    )
    geomean_total = table.rows[-1][-1]
    assert 1.1 <= geomean_total <= 1.6
    for row in table.rows[:-1]:
        compute, control, accumulation, on_chip, off_chip = row[1:6]
        shares = [compute, control, accumulation, on_chip, off_chip]
        assert abs(sum(shares) - 1.0) < 1e-6
        assert all(share >= 0.0 for share in shares)
