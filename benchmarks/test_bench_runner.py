"""The simulation session: cold vs warm-cache regeneration of Fig 11.

A cold session simulates every (model, config) pair of the figure; a
warm session answers the same figure entirely from its memo, so the
warm benchmark time is pure table assembly.  The two tables must be
identical -- the cache changes cost, never results.
"""

from conftest import run_once, show

from repro.harness import run_fig11_speedup
from repro.harness.runner import SimulationSession

MODELS = ("NCF", "SNLI")


def test_fig11_cold_session(benchmark):
    session = SimulationSession()
    table = run_once(
        benchmark, run_fig11_speedup, models=MODELS, session=session
    )
    show(
        table,
        "Runner: cold session simulates 4 configs x 2 models exactly once "
        "(the counter below pins it).",
    )
    assert session.stats.simulations == len(MODELS) * 4
    assert session.unique_simulations == len(MODELS) * 4


def test_fig11_warm_session(benchmark):
    session = SimulationSession()
    cold = run_fig11_speedup(models=MODELS, session=session)
    simulations_after_cold = session.stats.simulations
    table = run_once(
        benchmark, run_fig11_speedup, models=MODELS, session=session
    )
    show(
        table,
        "Runner: warm session regenerates Fig 11 with zero new "
        "simulations and bit-identical rows.",
    )
    assert session.stats.simulations == simulations_after_cold
    assert table.rows == cold.rows
    assert table.render() == cold.render()
