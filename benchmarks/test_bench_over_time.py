"""Fig 18: speedup across the training process."""

from conftest import run_once, show

from repro.harness import run_fig18_over_time


def test_fig18_speedup_over_time(benchmark):
    table = run_once(benchmark, run_fig18_over_time)
    show(
        table,
        "Fig 18: VGG16 declines ~15% after the first third and "
        "plateaus; ResNet18-Q rises ~12.5% once PACT's clipping "
        "settles; all other models stay flat -- benefits persist "
        "across all of training.",
    )
    by_model = {row[0]: row[1:] for row in table.rows}
    # VGG16: early > late.
    assert by_model["VGG16"][0] > by_model["VGG16"][-1]
    # ResNet18-Q: late > early.
    assert by_model["ResNet18-Q"][-1] > by_model["ResNet18-Q"][0]
    # Stable models stay within a narrow band.
    for model in ("Bert", "NCF", "Image2Text"):
        series = by_model[model]
        assert max(series) - min(series) < 0.3
    # Speedups remain above break-even throughout for every model.
    for series in by_model.values():
        assert min(series) > 0.9
