"""Benchmark helpers: run each experiment once and print its table."""

import pathlib

import pytest

RESULTS_FILE = pathlib.Path(__file__).parent / "results" / "latest.txt"


def run_once(benchmark, func, *args, **kwargs):
    """Execute an experiment exactly once under the benchmark timer.

    The experiments are deterministic and minutes-scale, so one round is
    both sufficient and necessary.

    Args:
        benchmark: the pytest-benchmark fixture.
        func: experiment entry point.
        *args: forwarded.
        **kwargs: forwarded.

    Returns:
        The experiment's return value.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(result, paper_note: str) -> None:
    """Print an experiment table (or tuple of tables) plus the paper anchor.

    The rendered tables also append to ``benchmarks/results/latest.txt``
    so the regenerated figures survive pytest's output capture.
    """
    tables = result if isinstance(result, tuple) else (result,)
    lines = []
    print()
    for table in tables:
        table.show()
        lines.append(table.render())
    print(f"Paper reference: {paper_note}")
    lines.append(f"Paper reference: {paper_note}\n")
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    with RESULTS_FILE.open("a") as handle:
        handle.write("\n".join(lines) + "\n")
