"""Scale-out sweep cost: symmetric schemes amortize to one node sim.

Data- and model-parallel plans are symmetric by construction, so an
N-node simulation must cost roughly *one* node simulation, not N -- the
aggregator simulates node 0 and replicates the summary.  The gate times
an 8-node data-parallel run against 8 independent shard simulations and
requires the amortized path to win by a wide margin, plus the fig-style
scaleout artifact end to end.
"""

import time

from conftest import run_once, show

from repro.core.accelerator import AcceleratorSimulator
from repro.core.config import fpraker_paper_config
from repro.harness.experiments import run_scaleout
from repro.scale.partition import partition_workloads
from repro.scale.scaleout import ScaleOutSimulator
from repro.traces.workloads import build_workloads

MODEL = "NCF"
FAST = dict(sample_strips=2, sample_steps=8)


def _best_of(fn, repeats=3):
    """Minimum wall time over several runs (noise-robust on CI)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_symmetric_replication_amortizes(benchmark):
    """8-node data-parallel run ~ 1 shard sim, not 8."""
    workloads = build_workloads(MODEL, progress=0.5)
    sim = ScaleOutSimulator(
        fpraker_paper_config(), nodes=8, scheme="data", **FAST
    )
    plan = partition_workloads(workloads, 8, "data")
    node_sim = AcceleratorSimulator(fpraker_paper_config(), **FAST)

    def all_nodes_naive():
        for node_plan in plan.node_plans:
            node_sim.simulate_workload(node_plan.workloads, model=MODEL)

    sim.simulate_workload(workloads, model=MODEL)  # warm caches
    result = benchmark.pedantic(
        sim.simulate_workload,
        args=(workloads,),
        kwargs={"model": MODEL},
        rounds=3,
        iterations=1,
    )
    t_scaleout = _best_of(
        lambda: sim.simulate_workload(workloads, model=MODEL)
    )
    t_naive = _best_of(all_nodes_naive)
    print(
        f"\n8-node data-parallel: {t_scaleout*1e3:.1f} ms amortized vs "
        f"{t_naive*1e3:.1f} ms naive ({t_naive/t_scaleout:.1f}x)"
    )
    assert result.nodes == 8
    # One simulation plus aggregation must beat 8 simulations clearly.
    assert t_scaleout < t_naive / 3


def test_scaleout_artifact(benchmark):
    """The fig-style sweep end to end on the cheapest Table-I model."""
    result = run_once(
        benchmark, run_scaleout, models=(MODEL,), nodes=(1, 2, 4, 8)
    )
    show(
        result,
        "scale-out extension: data-parallel speedup vs node count "
        "(no paper figure; pod-scale projection from ROADMAP)",
    )
    aggregate, _ = result
    speedups = aggregate.column("Speedup vs 1")
    assert speedups[0] == 1.0
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
