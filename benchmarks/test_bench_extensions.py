"""Extensions: the paper's stated future work, implemented and measured."""

from conftest import run_once, show

from repro.harness.extensions import (
    run_inference_extension,
    run_precision_schedule,
)


def test_precision_scheduled_training(benchmark):
    table = run_once(benchmark, run_precision_schedule)
    show(
        table,
        "Paper conclusion: 'training can start with lower precision and "
        "increase the precision per epoch near convergence. FPRaker can "
        "adapt dynamically... boosting performance and energy "
        "efficiency.'",
    )
    geomean = table.rows[-1]
    scheduled, fixed = geomean[2], geomean[3]
    assert scheduled > fixed  # the schedule pays off on average
    # Early narrow stages are the fastest.
    assert table.rows[0][2] > table.rows[-2][2]


def test_inference_use(benchmark):
    table = run_once(benchmark, run_inference_extension)
    show(
        table,
        "Paper conclusion: 'While we evaluated FPRaker for training, it "
        "can naturally also be used for inference.'",
    )
    for row in table.rows:
        assert row[1] > 1.0  # forward-only still beats the baseline
