"""Fig 17: end-to-end training accuracy under emulated FPRaker arithmetic."""

import numpy as np

from conftest import run_once, show

from repro.harness import run_fig17_accuracy


def test_fig17_training_accuracy(benchmark):
    table = run_once(benchmark, run_fig17_accuracy, epochs=12)
    show(
        table,
        "Fig 17: the FPRaker-emulated curve converges with the bf16 "
        "baseline, within 0.1% of native training (it skips only work "
        "that cannot affect the rounded result).",
    )
    results = {row[0]: row for row in table.rows}
    fp32 = results["fp32"]
    bf16 = results["bf16"]
    fpraker = results["fpraker"]
    # All three modes converge on the task (it is deliberately noisy;
    # chance level is 0.25).
    for row in (fp32, bf16, fpraker):
        assert row[1] > 0.7  # best accuracy
    # FPRaker tracks the bf16 baseline closely (last-3-epoch mean).
    assert abs(fpraker[3] - bf16[3]) <= 0.05
    # And both stay near the native-precision run.
    assert abs(bf16[3] - fp32[3]) <= 0.08
    # The per-epoch curves correlate: same trajectory, not just the end.
    curves = table.curves
    late_gap = np.abs(
        np.array(curves["fpraker"][3:]) - np.array(curves["bf16"][3:])
    )
    assert late_gap.mean() <= 0.06
