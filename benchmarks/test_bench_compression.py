"""Fig 10: memory savings from exponent base-delta compression."""

from conftest import run_once, show

from repro.harness import run_fig10_compression


def test_fig10_exponent_compression(benchmark):
    table = run_once(benchmark, run_fig10_compression)
    show(
        table,
        "Fig 10: base-delta compression shrinks the exponent footprint "
        "substantially for all three tensors of every model, both "
        "channel-wise and spatially.",
    )
    for row in table.rows:
        for ratio in row[1:]:
            assert 0.1 < ratio < 0.95
    # Weights (narrowest exponent spread) compress best on average.
    a_mean = sum(row[1] for row in table.rows) / len(table.rows)
    w_mean = sum(row[2] for row in table.rows) / len(table.rows)
    assert w_mean <= a_mean
