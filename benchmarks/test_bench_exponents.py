"""Fig 6: exponent ranges over real training (captured traces)."""

from conftest import run_once, show

from repro.harness import run_fig6_exponents


def test_fig6_exponent_ranges(benchmark):
    table = run_once(benchmark, run_fig6_exponents, epochs=6)
    show(
        table,
        "Fig 6: the exponents of all three tensors occupy a narrow band "
        "of the 8-bit exponent's [-127, 128] range, at the start and "
        "the end of training alike -- the basis for the limited shift "
        "window and the base-delta compression.",
    )
    for row in table.rows:
        tensor, first, last, full = row
        # The 99%-mass band is a small fraction of the format's range.
        assert first < full / 4
        assert last < full / 4
