"""Tables I and II: the studied models and the evaluated configurations."""

from conftest import run_once, show

from repro.harness import run_table1, run_table2


def test_table1_models(benchmark):
    table = run_once(benchmark, run_table1)
    show(table, "Table I lists the same nine models / applications / datasets.")
    assert len(table.rows) == 9


def test_table2_configurations(benchmark):
    table = run_once(benchmark, run_table2)
    show(
        table,
        "Table II: FPRaker 36 tiles / 2304 PEs vs baseline 8 tiles / "
        "512 PEs / 4096 MACs per cycle at 600 MHz.",
    )
    params = dict(zip(table.column("Parameter"), table.column("FPRaker")))
    assert params["Tiles"] == 36
