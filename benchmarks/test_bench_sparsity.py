"""Figs 1 and 2: value/term sparsity and the ideal speedup potential."""

from conftest import run_once, show

from repro.harness import run_fig1_sparsity, run_fig2_potential


def test_fig1_value_and_term_sparsity(benchmark):
    table = run_once(benchmark, run_fig1_sparsity)
    show(
        table,
        "Fig 1: image classifiers' activations exceed 35% value sparsity "
        "(ReLU); weight sparsity is low except ResNet50-S2; NLP models "
        "have near-zero value sparsity; term sparsity is high for every "
        "tensor of every model.",
    )
    for row in table.rows:
        model = row[0]
        value = dict(A=row[1], W=row[2], G=row[3])
        term = dict(A=row[4], W=row[5], G=row[6])
        # Term sparsity is universally higher than value sparsity.
        for tensor in ("A", "W", "G"):
            assert term[tensor] > value[tensor]
        if model in ("SqueezeNet 1.1", "VGG16", "ResNet50-S2", "Detectron2"):
            assert value["A"] > 0.25  # ReLU networks
        if model in ("SNLI", "Bert", "NCF"):
            assert value["W"] < 0.1


def test_fig2_potential_speedup(benchmark):
    table = run_once(benchmark, run_fig2_potential)
    show(
        table,
        "Fig 2: potential up to ~59x for NCF's gradient phases; several "
        "models in the 4-16x range.",
    )
    by_model = {row[0]: row for row in table.rows}
    # NCF's AxG towers over everything (sparse embedding gradients).
    ncf_axg = by_model["NCF"][1]
    assert ncf_axg > 20
    for model, row in by_model.items():
        if model != "NCF":
            assert max(row[1:]) < ncf_axg
