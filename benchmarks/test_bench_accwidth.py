"""Fig 21: per-layer profiled accumulator widths (Sakr et al.)."""

from conftest import run_once, show

from repro.harness import run_fig21_accwidth


def test_fig21_profiled_accumulator_width(benchmark):
    table = run_once(benchmark, run_fig21_accwidth)
    show(
        table,
        "Fig 21: per-layer profiled accumulator widths raise ResNet18's "
        "speedup from 1.13x (fixed) to 1.56x -- FPRaker exploits the "
        "narrower out-of-bounds threshold with no hardware change.",
    )
    rows = {row[0]: row for row in table.rows}
    for model in ("AlexNet", "ResNet18"):
        fixed = rows[model]
        profiled = rows[f"{model}-P"]
        # Profiled widths speed up every phase and the total.
        assert profiled[-1] > fixed[-1]
        for column in (1, 2, 3):
            assert profiled[column] >= fixed[column] * 0.98
        # The profiled gain is substantial (paper: 1.38x relative for
        # ResNet18).
        assert profiled[-1] / fixed[-1] > 1.1
