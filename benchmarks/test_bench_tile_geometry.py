"""Figs 19 and 20: the effect of tile row count on performance and stalls."""

import numpy as np

from conftest import run_once, show

from repro.harness import run_fig19_20_rows
from repro.harness.report import geomean


def test_fig19_20_rows_per_tile(benchmark):
    speed_table, stall_table = run_once(benchmark, run_fig19_20_rows)
    show(
        (speed_table, stall_table),
        "Fig 19/20: growing rows per tile couples more PEs to the same "
        "A terms; 8->16 rows costs ~6% performance on average, with "
        "'no term' waits growing.",
    )
    by_rows = {}
    for i, rows in enumerate((2, 4, 8, 16)):
        by_rows[rows] = geomean([row[1 + i] for row in speed_table.rows])
    # More rows per tile never helps on average, and 16 rows is
    # measurably worse than 8 (the paper's -6%).
    assert by_rows[2] >= by_rows[8]
    assert by_rows[16] < by_rows[8]
    assert 0.85 <= by_rows[16] / by_rows[8] <= 0.99
    # Fig 20: 'no term' waits grow with row count.
    no_term = stall_table.column("no term")
    assert no_term[-1] >= no_term[0]
