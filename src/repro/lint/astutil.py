"""Shared ``ast`` helpers for the rule set.

Nothing here is repo-specific; rules compose these primitives into the
actual contract checks.
"""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """The ``a.b.c`` form of a Name/Attribute chain, or None.

    Args:
        node: candidate expression node.

    Returns:
        The dotted path when the node is a pure attribute chain rooted
        at a plain name, else None (calls, subscripts, literals ...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute (``x.y.knob`` -> ``knob``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportMap:
    """Local-name -> fully-qualified-path table built from imports.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from numpy.random
    import default_rng`` maps ``default_rng`` to
    ``numpy.random.default_rng``.  Relative imports keep their leading
    dots, so they never collide with the absolute stdlib/numpy paths the
    determinism rule matches against.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.table[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.table[local] = f"{prefix}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified path of an attribute chain, or None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        chains rooted at non-imported names (locals, ``self``) resolve
        to None.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if root not in self.table:
            return None
        resolved = self.table[root]
        return f"{resolved}.{rest}" if rest else resolved


def str_const(node: ast.AST) -> str | None:
    """The value of a string-literal node, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def str_sequence(node: ast.AST) -> tuple[str, ...] | None:
    """The values of an all-string tuple/list/set literal, or None."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = [str_const(el) for el in node.elts]
    if any(v is None for v in values):
        return None
    return tuple(v for v in values if v is not None)


def class_string_constants(classdef: ast.ClassDef) -> dict[str, tuple[str, ...]]:
    """Class-body assignments of string tuples (``FIELDS = (...)``)."""
    constants: dict[str, tuple[str, ...]] = {}
    for stmt in classdef.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            values = str_sequence(stmt.value)
            if isinstance(target, ast.Name) and values is not None:
                constants[target.id] = values
    return constants


def is_dataclass(classdef: ast.ClassDef) -> bool:
    """Whether a class carries a ``@dataclass`` decorator."""
    for deco in classdef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if terminal_name(target) == "dataclass":
            return True
    return False


def dataclass_fields(classdef: ast.ClassDef) -> list[str]:
    """Public field names of a dataclass body (annotated assignments).

    ``ClassVar`` annotations and leading-underscore names are excluded:
    neither is part of the serialized surface.
    """
    fields: list[str] = []
    for stmt in classdef.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(name)
    return fields


def methods_of(classdef: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly-defined methods of a class body, by name."""
    return {
        stmt.name: stmt
        for stmt in classdef.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def param_names(func: ast.FunctionDef) -> list[str]:
    """All named parameters of a function (positional and keyword)."""
    args = func.args
    return [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]


def resolved_comp_keys(
    comp: ast.DictComp, classdef: ast.ClassDef, classname_aliases: set[str]
) -> tuple[str, ...] | None:
    """Keys of a ``{name: ... for name in self.FIELDS}`` comprehension.

    Resolves the iterated class constant from the class body so rules
    can treat the pattern as if the keys were written out literally.

    Args:
        comp: the dict comprehension.
        classdef: the enclosing class.
        classname_aliases: names the class is reachable under inside
            its own methods (``self``, ``cls``, the class name).

    Returns:
        The key tuple, or None when the pattern does not match.
    """
    if len(comp.generators) != 1:
        return None
    gen = comp.generators[0]
    if not isinstance(gen.target, ast.Name):
        return None
    if not isinstance(comp.key, ast.Name) or comp.key.id != gen.target.id:
        return None
    it = gen.iter
    if not isinstance(it, ast.Attribute):
        return None
    root = it.value
    if not (isinstance(root, ast.Name) and root.id in classname_aliases):
        return None
    return class_string_constants(classdef).get(it.attr)
