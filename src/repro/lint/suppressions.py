"""``# repro: noqa`` suppression comments.

Two scopes, distinguished by comment placement:

* a **trailing** comment suppresses findings on its own line::

      value = np.random.default_rng()  # repro: noqa RPR001 -- fixture

* a **standalone** comment line (nothing but whitespace before the
  ``#``) suppresses the named codes for the whole file::

      # repro: noqa RPR005 -- report order is pinned by the golden test

Codes are ``RPRxxx`` identifiers separated by commas or spaces; a bare
``# repro: noqa`` (no codes) suppresses every rule in its scope.  Text
after ``--`` is a free-form reason and is encouraged: the linter exists
to make intent auditable, not to be silenced.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)", re.IGNORECASE)
CODE_RE = re.compile(r"RPR\d{3}")

# Sentinel meaning "every code" (a bare noqa with no code list).
ALL_CODES = "*"


def _codes_of(rest: str) -> frozenset[str]:
    """Parse the code list of one noqa comment tail."""
    rest = rest.split("--", 1)[0]
    codes = frozenset(CODE_RE.findall(rest))
    return codes if codes else frozenset((ALL_CODES,))


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments.

    Attributes:
        file_codes: codes suppressed for the whole file.
        line_codes: codes suppressed per source line (1-based).
    """

    file_codes: frozenset[str] = frozenset()
    line_codes: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether a finding of ``code`` at ``line`` is silenced."""
        for scope in (self.file_codes, self.line_codes.get(line, frozenset())):
            if ALL_CODES in scope or code in scope:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# repro: noqa`` directive from a source text.

    Args:
        source: the file's text.

    Returns:
        The parsed :class:`Suppressions` (empty on tokenization errors;
        a file that does not tokenize has bigger problems, which the
        runner reports separately).
    """
    file_codes: set[str] = set()
    line_codes: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return Suppressions()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = NOQA_RE.search(tok.string)
        if match is None:
            continue
        codes = _codes_of(match.group("rest"))
        row, col = tok.start
        standalone = not tok.line[:col].strip()
        if standalone:
            file_codes.update(codes)
        else:
            line_codes[row] = line_codes.get(row, frozenset()) | codes
    return Suppressions(
        file_codes=frozenset(file_codes), line_codes=line_codes
    )
