"""Static enforcement of the repo's reproducibility contracts.

Every perf layer of this codebase rests on invariants that were only
checked dynamically until now: fast paths must stay bit-exact against
their retained serial references, every result-affecting knob must be
part of a :class:`repro.harness.runner.SimulationSession` canonical
cache key, ``to_dict``/``from_dict`` pairs must round-trip byte-stably,
and emitted artifacts must be deterministic.  This package is the
static half of that contract: an ``ast``-based checker (``repro lint``)
that fails in CI before a test ever runs.

Layout:

* :mod:`repro.lint.findings` -- the :class:`Finding` record.
* :mod:`repro.lint.registry` -- the :class:`Rule` base class and the
  plugin registry rules register into at import time.
* :mod:`repro.lint.suppressions` -- ``# repro: noqa`` parsing.
* :mod:`repro.lint.runner` -- file collection and rule execution.
* :mod:`repro.lint.reporters` -- text and JSON renderings.
* :mod:`repro.lint.rules` -- the repo-specific rule set (RPR001..).
* :mod:`repro.lint.cli` -- the ``repro lint`` subcommand.

Adding a rule is one module: subclass :class:`repro.lint.registry.Rule`,
decorate with :func:`repro.lint.registry.register`, and import the
module from :mod:`repro.lint.rules`.
"""

from repro.lint.findings import Finding
from repro.lint.registry import REGISTRY, Rule, register
from repro.lint.runner import FileContext, LintReport, lint_paths

__all__ = [
    "Finding",
    "REGISTRY",
    "Rule",
    "register",
    "FileContext",
    "LintReport",
    "lint_paths",
]
