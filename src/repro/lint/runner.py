"""File collection and rule execution.

The runner is deliberately boring: gather ``.py`` files, parse each
once, hand the shared :class:`FileContext` to every selected rule, and
filter the findings through the file's ``# repro: noqa`` directives.
A file that does not parse (or a rule that crashes on it) yields an
``RPR000`` internal finding instead of aborting the run -- the lint
gate must never be softer than the tree it checks.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.findings import INTERNAL_CODE, Finding
from repro.lint.registry import REGISTRY
from repro.lint.suppressions import Suppressions, parse_suppressions

# Directories never worth descending into.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class FileContext:
    """Everything a rule may want to know about one file.

    Attributes:
        path: the file's path as given on the command line.
        source: file text.
        tree: parsed module.
        suppressions: parsed ``# repro: noqa`` directives.
    """

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def posix_parts(self) -> tuple[str, ...]:
        """Resolved path components (for package-scoped rules)."""
        return self.path.resolve().parts


@dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: surviving (unsuppressed, selected) findings, sorted.
        files_checked: number of files processed.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts_by_code(self) -> dict[str, int]:
        """Finding counts per rule code."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return counts


def iter_python_files(paths: Iterable[str | os.PathLike]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated file list.

    Args:
        paths: files or directories to lint.

    Returns:
        Every ``.py`` file under the given paths, each exactly once.

    Raises:
        FileNotFoundError: when a given path does not exist.
    """
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (SKIP_DIRS & set(p.parts))
            )
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def _check_file(path: Path, codes: frozenset[str]) -> list[Finding]:
    """All findings of one file under the selected rule codes."""
    # Ensure the rule modules have populated the registry.
    import repro.lint.rules  # noqa: F401  (import-for-side-effect)

    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                code=INTERNAL_CODE,
                message=f"cannot read file: {exc}",
                path=path.as_posix(),
            )
        ]
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                code=INTERNAL_CODE,
                message=f"file does not parse: {exc.msg}",
                path=path.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    findings: list[Finding] = []
    for code in sorted(codes):
        rule = REGISTRY[code]()
        try:
            produced = list(rule.check(ctx))
        except Exception as exc:  # pragma: no cover - defensive
            findings.append(
                Finding(
                    code=INTERNAL_CODE,
                    message=f"rule {code} crashed: {exc!r}",
                    path=path.as_posix(),
                )
            )
            continue
        for f in produced:
            if ctx.suppressions.is_suppressed(f.code, f.line):
                continue
            findings.append(
                Finding(
                    code=f.code,
                    message=f.message,
                    path=path.as_posix(),
                    line=f.line,
                    col=f.col,
                )
            )
    return findings


def lint_paths(
    paths: Iterable[str | os.PathLike],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint files/directories and return the sorted report.

    Args:
        paths: files or directories to check.
        select: restrict to these rule codes (None or empty = all).
        ignore: drop these rule codes after selection.

    Returns:
        The :class:`LintReport` with findings in deterministic order.
    """
    import repro.lint.rules  # noqa: F401  (populate the registry)

    select = frozenset(select or ())
    ignore = frozenset(ignore or ())
    codes = frozenset(REGISTRY)
    if select:
        codes &= select
    if ignore:
        codes -= ignore
    report = LintReport()
    for path in iter_python_files(paths):
        produced = _check_file(path, codes)
        if ignore:
            produced = [f for f in produced if f.code not in ignore]
        report.findings.extend(produced)
        report.files_checked += 1
    report.findings.sort(key=Finding.sort_key)
    return report
