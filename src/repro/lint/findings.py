"""The finding record every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass

# Reserved pseudo-code for files the checker itself could not process
# (syntax errors, crashed rules).  Not a registered rule: it cannot be
# suppressed away with ``--select`` games, only ``--ignore RPR000``.
INTERNAL_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        code: rule identifier (``RPR001`` ...).
        message: human-readable description of the violation.
        path: file the finding is in (posix-style string).
        line: 1-based source line.
        col: 0-based column.
    """

    code: str
    message: str
    path: str = ""
    line: int = 1
    col: int = 0

    def sort_key(self) -> tuple:
        """Deterministic report ordering: path, position, code."""
        return (self.path, self.line, self.col, self.code, self.message)

    def to_dict(self) -> dict:
        """JSON-serializable form (the JSON reporter's row schema)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
