"""RPR002: every result-affecting knob must be in the canonical cache key.

The shared result store serves any simulation whose canonical key
matches -- so a knob that changes results but is missing from the key
silently serves *wrong numbers* to every later caller.  That exact bug
class has forced three ``CACHE_VERSION`` bumps already.  This rule
statically ties the key constructors to their input surfaces:

* the parameters of a key-constructor function (``canonical_key``,
  ``workload_key``) must all appear as keys of the spec dict it builds;
* the fields of :class:`SimRequest`, the parameters of
  ``execute_request``, and the parameters of
  ``SimulationSession.__init__`` (minus the documented non-key knobs:
  parallelism and cache plumbing) must appear in ``canonical_key``'s
  spec -- they are the full set of values that reach a simulator;
* the spec must be serialized with ``json.dumps(..., sort_keys=True)``
  so the key is independent of dict construction order.

Deleting any result-affecting entry from the spec dict makes this rule
fail the lint gate before a single test runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name, param_names, str_const
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Functions that build canonical keys (engagement is content-based:
# the rule fires in any module defining one of these).
KEY_BUILDERS = ("canonical_key", "workload_key")

# Parameters that are *not* part of a simulation's result: the request
# object itself (its fields are checked individually), execution
# plumbing, cache plumbing, and the kernel backend (bit-identical by
# contract -- see repro.backends -- so a cached result is valid under
# every backend).  Documented in docs/LINTING.md; anything else
# reaching a simulator must be keyed.
NON_KEY_PARAMS = {
    "self",
    "cls",
    "request",
    "jobs",
    "cache_dir",
    "workload_cache",
    "kernel_backend",
}


def _spec_keys(func: ast.FunctionDef) -> set[str]:
    """String keys of every dict literal / keyed store in a function."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                value = str_const(key) if key is not None else None
                if value is not None:
                    keys.add(value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    value = str_const(target.slice)
                    if value is not None:
                        keys.add(value)
    return keys


def _toplevel_defs(tree: ast.Module) -> dict[str, ast.AST]:
    """Module-level functions and classes by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.ClassDef))
    }


def _required_from_class_fields(classdef: ast.ClassDef) -> list[str]:
    """Dataclass-style annotated field names of a class body."""
    return [
        stmt.target.id
        for stmt in classdef.body
        if isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and not stmt.target.id.startswith("_")
    ]


def _init_of(classdef: ast.ClassDef) -> ast.FunctionDef | None:
    """The class's ``__init__`` method, if directly defined."""
    for stmt in classdef.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            return stmt
    return None


@register
class CacheKeyRule(Rule):
    """Statically enforce canonical-cache-key completeness."""

    code = "RPR002"
    name = "cache-key-completeness"
    rationale = (
        "a result-affecting knob missing from the canonical key makes "
        "the result cache serve wrong numbers; key constructors must "
        "cover every parameter that flows into a simulator"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield findings for incomplete key constructors."""
        defs = _toplevel_defs(ctx.tree)
        builders = [
            defs[name]
            for name in KEY_BUILDERS
            if isinstance(defs.get(name), ast.FunctionDef)
        ]
        for builder in builders:
            assert isinstance(builder, ast.FunctionDef)
            spec = _spec_keys(builder)
            yield from self._check_self_parity(builder, spec)
            yield from self._check_sort_keys(builder)
        canonical = defs.get("canonical_key")
        if not isinstance(canonical, ast.FunctionDef):
            return
        spec = _spec_keys(canonical)
        yield from self._check_surface(
            canonical,
            spec,
            "SimRequest field",
            self._class_fields(defs.get("SimRequest")),
        )
        execute = defs.get("execute_request")
        if isinstance(execute, ast.FunctionDef):
            yield from self._check_surface(
                canonical,
                spec,
                "execute_request parameter",
                param_names(execute),
            )
        session = defs.get("SimulationSession")
        if isinstance(session, ast.ClassDef):
            init = _init_of(session)
            if init is not None:
                yield from self._check_surface(
                    canonical,
                    spec,
                    "SimulationSession knob",
                    param_names(init),
                )

    def _class_fields(self, node: ast.AST | None) -> list[str]:
        """Annotated fields of a class node (empty when absent)."""
        if isinstance(node, ast.ClassDef):
            return _required_from_class_fields(node)
        return []

    def _check_self_parity(
        self, builder: ast.FunctionDef, spec: set[str]
    ) -> Iterator[Finding]:
        """Every parameter of a key builder must appear in its spec."""
        for name in param_names(builder):
            if name in NON_KEY_PARAMS:
                continue
            if name not in spec:
                yield self.finding(
                    f"key builder {builder.name}() takes parameter "
                    f"{name!r} but its spec dict has no {name!r} entry",
                    node=builder,
                )

    def _check_surface(
        self,
        canonical: ast.FunctionDef,
        spec: set[str],
        origin: str,
        names: list[str],
    ) -> Iterator[Finding]:
        """Every result-affecting input name must appear in the spec."""
        for name in names:
            if name in NON_KEY_PARAMS:
                continue
            if name not in spec:
                yield self.finding(
                    f"{origin} {name!r} is result-affecting but missing "
                    "from the canonical_key spec dict",
                    node=canonical,
                )

    def _check_sort_keys(self, builder: ast.FunctionDef) -> Iterator[Finding]:
        """The spec serialization must be order-independent."""
        for node in ast.walk(builder):
            if not isinstance(node, ast.Call):
                continue
            qual = dotted_name(node.func)
            if qual not in ("json.dumps", "dumps"):
                continue
            sort = next(
                (
                    kw.value
                    for kw in node.keywords
                    if kw.arg == "sort_keys"
                ),
                None,
            )
            is_true = (
                isinstance(sort, ast.Constant) and sort.value is True
            )
            if not is_true:
                yield self.finding(
                    f"{builder.name}() serializes its spec without "
                    "sort_keys=True -- the key would depend on dict "
                    "construction order",
                    node=node,
                )
