"""RPR001: no unseeded randomness or wall-clock input in simulation code.

Every simulation in this repo is a pure function of its canonical key
(that is what makes the result cache, the process-pool fan-out, and the
bit-exactness test contracts sound).  A single ``np.random.rand()`` or
``time.time()`` on a simulation path silently breaks all three.  The
blessed pattern is an explicitly seeded generator::

    rng = np.random.default_rng(seed)           # ok
    rng = np.random.default_rng((seed, crc))    # ok (seed sequence)
    values = np.random.normal(...)              # RPR001: legacy global RNG
    rng = np.random.default_rng()               # RPR001: OS-entropy seed
    t0 = time.time()                            # RPR001: wall clock

Intentional exceptions (none exist today) carry a line-level
``# repro: noqa RPR001 -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# numpy.random callables that are fine to *construct* -- they are the
# seeded-generator machinery itself, not draws from a global stream.
SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# Exact call targets that read the wall clock or OS entropy.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "uuid.uuid4",
    "uuid.uuid1",
    "os.urandom",
}


@register
class DeterminismRule(Rule):
    """Flag unseeded RNG and wall-clock calls."""

    code = "RPR001"
    name = "determinism"
    rationale = (
        "simulations must be pure functions of their seed; unseeded "
        "numpy/stdlib randomness or wall-clock reads break cache keys, "
        "worker fan-out, and bit-exactness contracts"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield one finding per offending call."""
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.resolve(node.func)
            if qual is None:
                continue
            yield from self._check_call(node, qual)

    def _check_call(self, node: ast.Call, qual: str) -> Iterator[Finding]:
        """Findings for one resolved call target."""
        if qual in WALL_CLOCK or qual.startswith("secrets."):
            yield self.finding(
                f"nondeterministic call {qual}() -- simulation inputs "
                "must derive from the run's seed",
                node=node,
            )
            return
        if qual.startswith("numpy.random."):
            tail = qual[len("numpy.random."):]
            if tail not in SEEDED_CONSTRUCTORS:
                yield self.finding(
                    f"legacy global-RNG call {qual}() -- draw from an "
                    "explicitly seeded numpy.random.default_rng(seed)",
                    node=node,
                )
            elif tail == "default_rng" and not (node.args or node.keywords):
                yield self.finding(
                    "default_rng() without a seed draws OS entropy -- "
                    "pass the run's seed explicitly",
                    node=node,
                )
            return
        if qual == "random" or qual.startswith("random."):
            tail = qual.partition(".")[2]
            if tail == "Random" and (node.args or node.keywords):
                return  # random.Random(seed): explicitly seeded
            yield self.finding(
                f"stdlib random call {qual}() -- use a seeded "
                "numpy.random.default_rng(seed) (or random.Random(seed))",
                node=node,
            )
