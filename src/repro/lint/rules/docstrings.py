"""RPR006: public simulation APIs stay docstring-covered.

The PR 6 documentation suite introduced an ``ast``-based docstring
gate over the public APIs of ``repro.core``, ``repro.memory`` and
``repro.scale``; this rule is that gate folded into the lint framework
so there is one checker, one CLI, and one CI job.  Coverage is at 100%
and the rule keeps it there: every public module, class, and function
in the covered packages must carry a docstring.

``tests/docs/test_docstring_coverage.py`` still enforces the original
>= 90% per-package threshold through :func:`coverage_report`, so the
historical contract is unchanged -- the rule is simply stricter at the
margin (it names each missing docstring instead of a percentage).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Packages whose public APIs must stay documented.
COVERED_PACKAGES = ("core", "memory", "scale")


def _documentable(name: str) -> bool:
    """Whether a def/class name is part of the public API.

    Leading-underscore names are exempt; that covers dunders too
    (``__init__`` etc. never need their own docstring).
    """
    return not name.startswith("_")


def walk_module(tree: ast.Module, filename: str):
    """Yield ``(qualname, node, has_docstring)`` for a module's API.

    Mirrors the original PR 6 gate exactly: module docstring first,
    then top-level defs/classes and class bodies (nested functions are
    implementation detail and are not walked).

    Args:
        tree: parsed module.
        filename: file name used in qualnames.
    """
    yield filename, tree, ast.get_docstring(tree) is not None

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not _documentable(child.name):
                    continue
                qualname = f"{prefix}{child.name}"
                yield qualname, child, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, f"{qualname}.")

    yield from visit(tree, f"{filename}:")


def in_covered_package(parts: tuple[str, ...]) -> bool:
    """Whether a path (as parts) lies in a covered repro package."""
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and parts[i + 1] in COVERED_PACKAGES:
            return True
    return False


def coverage_report(
    package: str, src_root: Path
) -> tuple[list[str], list[str]]:
    """(documented, missing) qualname lists of one package.

    The legacy entry point of the PR 6 gate, kept for the threshold
    test in ``tests/docs/test_docstring_coverage.py``.

    Args:
        package: package directory name under ``src/repro``.
        src_root: the ``src/repro`` directory.
    """
    documented: list[str] = []
    missing: list[str] = []
    for path in sorted((src_root / package).rglob("*.py")):
        tree = ast.parse(path.read_text())
        for qualname, _node, has_doc in walk_module(tree, path.name):
            (documented if has_doc else missing).append(
                f"{package}/{qualname}"
            )
    return documented, missing


@register
class DocstringCoverageRule(Rule):
    """Require docstrings on the covered packages' public APIs."""

    code = "RPR006"
    name = "docstring-coverage"
    rationale = (
        "the public APIs of repro.core/memory/scale are documentation-"
        "gated (PR 6); every public module, class and function there "
        "must carry a docstring"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield one finding per undocumented public object."""
        if not in_covered_package(ctx.posix_parts):
            return
        for qualname, node, has_doc in walk_module(
            ctx.tree, ctx.path.name
        ):
            if has_doc:
                continue
            if isinstance(node, ast.Module):
                yield self.finding(
                    f"module {qualname} has no docstring", line=1
                )
            else:
                kind = (
                    "class" if isinstance(node, ast.ClassDef) else "function"
                )
                yield self.finding(
                    f"public {kind} {qualname!r} has no docstring",
                    node=node,
                )
