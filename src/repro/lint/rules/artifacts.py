"""RPR005: artifact output must not depend on set or directory order.

The CLI's JSON/text artifacts are byte-compared across runs (the PR 5
bit-exactness contract) and cached results must reproduce cold ones
exactly.  Two classic order leaks break that silently:

* **set iteration** -- string hashing is randomized per process
  (``PYTHONHASHSEED``), so ``for x in {...}`` or ``list(set(...))``
  changes order between runs;
* **directory listings** -- ``os.listdir`` / ``Path.iterdir`` /
  ``glob`` return OS-dependent order.

Both are fine once wrapped in ``sorted(...)``.  Order-independent
consumers (``len``, ``sum``, ``min``, ``max``, ``any``, ``all``,
membership tests) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Call wrappers that preserve (and therefore leak) iteration order.
ORDER_PRESERVING = {"list", "tuple", "enumerate", "iter"}

# Directory-listing callables with OS-dependent order.
LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
LISTING_METHODS = {"iterdir", "glob", "rglob"}


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression produces a set (statically recognizable)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_listing_expr(node: ast.AST) -> bool:
    """Whether an expression lists a directory (OS-dependent order)."""
    if not isinstance(node, ast.Call):
        return False
    qual = dotted_name(node.func)
    if qual in LISTING_CALLS:
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in LISTING_METHODS
    )


@register
class ArtifactStabilityRule(Rule):
    """Flag order-unstable iteration feeding program output."""

    code = "RPR005"
    name = "artifact-stability"
    rationale = (
        "artifacts are byte-compared across runs; iterating sets or "
        "directory listings without sorted() leaks hash/OS order into "
        "output"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield one finding per unstable iteration site."""
        sanctified = self._sorted_args(ctx.tree)
        for node in ast.walk(ctx.tree):
            yield from self._check_node(node, sanctified)

    def _sorted_args(self, tree: ast.Module) -> set[int]:
        """Node ids whose order a surrounding ``sorted()`` neutralizes.

        Covers both ``sorted(set(...))`` and ``sorted(x for x in
        set(...))`` -- a comprehension consumed whole by ``sorted`` may
        iterate anything.
        """
        sanctified: set[int] = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                continue
            arg = node.args[0]
            sanctified.add(id(arg))
            if isinstance(
                arg,
                (ast.ListComp, ast.SetComp, ast.GeneratorExp),
            ):
                for gen in arg.generators:
                    sanctified.add(id(gen.iter))
        return sanctified

    def _describe(self, iter_node: ast.AST) -> str | None:
        """Why an iterated expression is order-unstable (None = stable)."""
        if _is_set_expr(iter_node):
            return "set iteration order depends on PYTHONHASHSEED"
        if _is_listing_expr(iter_node):
            return "directory listing order is OS-dependent"
        return None

    def _check_node(
        self, node: ast.AST, sanctified: set[int]
    ) -> Iterator[Finding]:
        """Findings for one AST node's iteration sites."""
        if isinstance(node, (ast.For, ast.AsyncFor)):
            reason = self._describe(node.iter)
            if reason and id(node.iter) not in sanctified:
                yield self.finding(
                    f"loop over unstable order ({reason}) -- wrap the "
                    "iterable in sorted()",
                    node=node.iter,
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                reason = self._describe(gen.iter)
                if reason and id(gen.iter) not in sanctified:
                    yield self.finding(
                        f"comprehension over unstable order ({reason}) "
                        "-- wrap the iterable in sorted()",
                        node=gen.iter,
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            is_wrapper = (
                isinstance(func, ast.Name)
                and func.id in ORDER_PRESERVING
                and id(node) not in sanctified
            )
            if is_wrapper and node.args:
                reason = self._describe(node.args[0])
                if reason:
                    assert isinstance(func, ast.Name)
                    yield self.finding(
                        f"{func.id}() over unstable order ({reason}) -- "
                        "use sorted() instead",
                        node=node,
                    )
