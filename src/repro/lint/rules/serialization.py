"""RPR003: ``to_dict``/``from_dict`` pairs must cover the same fields.

Results persist to disk through ``to_dict`` and come back through
``from_dict``; warm runs are bit-identical to cold ones only if that
round trip is lossless.  A field added to a dataclass but forgotten in
either method silently truncates cached results.  The rule statically
diffs three key sets per serialized dataclass:

* the dataclass's public annotated fields;
* the string keys ``to_dict`` emits (dict literals, ``d["k"] = ...``
  stores, and ``{name: ... for name in self.FIELDS}`` comprehensions
  resolved against the class constant);
* the string keys ``from_dict`` consumes (``data["k"]`` loads,
  ``data.get("k")``, and the comprehension pattern).

Keys that are deliberately emitted under a different name, or derived
keys emitted for readers other than ``from_dict``, carry a line-level
``# repro: noqa RPR003 -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    dataclass_fields,
    is_dataclass,
    methods_of,
    resolved_comp_keys,
    str_const,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _emitted_keys(
    func: ast.FunctionDef, classdef: ast.ClassDef
) -> tuple[set[str], bool]:
    """(string keys ``to_dict`` emits, fully-resolved?).

    The second element is False when the method uses a pattern the
    rule cannot see through (e.g. ``asdict(self)``), in which case the
    class is skipped rather than misreported.
    """
    aliases = {"self", "cls", classdef.name}
    keys: set[str] = set()
    resolved = True
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                value = str_const(key) if key is not None else None
                if value is not None:
                    keys.add(value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    value = str_const(target.slice)
                    if value is not None:
                        keys.add(value)
        elif isinstance(node, ast.DictComp):
            comp_keys = resolved_comp_keys(node, classdef, aliases)
            if comp_keys is None:
                resolved = False
            else:
                keys.update(comp_keys)
        elif isinstance(node, ast.Call):
            name = node.func
            if isinstance(name, ast.Name) and name.id == "asdict":
                resolved = False
    return keys, resolved


def _consumed_keys(
    func: ast.FunctionDef, classdef: ast.ClassDef
) -> tuple[set[str], bool]:
    """(string keys ``from_dict`` consumes, fully-resolved?)."""
    aliases = {"self", "cls", classdef.name}
    keys: set[str] = set()
    resolved = True
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            value = str_const(node.slice)
            if value is not None:
                keys.add(value)
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and func_node.attr == "get"
                and node.args
            ):
                value = str_const(node.args[0])
                if value is not None:
                    keys.add(value)
        elif isinstance(node, ast.DictComp):
            comp_keys = resolved_comp_keys(node, classdef, aliases)
            if comp_keys is None:
                resolved = False
            else:
                keys.update(comp_keys)
    return keys, resolved


@register
class SerializationParityRule(Rule):
    """Diff serialized key sets against dataclass fields."""

    code = "RPR003"
    name = "serialization-parity"
    rationale = (
        "cached results round-trip through to_dict/from_dict; a field "
        "missing from either side silently truncates warm results"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield findings for each lossy serialization pair."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not is_dataclass(node):
                continue
            methods = methods_of(node)
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            yield from self._check_class(node, to_dict, from_dict)

    def _check_class(
        self,
        classdef: ast.ClassDef,
        to_dict: ast.FunctionDef,
        from_dict: ast.FunctionDef,
    ) -> Iterator[Finding]:
        """Findings for one serialized dataclass."""
        fields = set(dataclass_fields(classdef))
        emitted, emit_ok = _emitted_keys(to_dict, classdef)
        consumed, consume_ok = _consumed_keys(from_dict, classdef)
        if not (emit_ok and consume_ok):
            return  # opaque serialization; nothing provable
        name = classdef.name
        for field in sorted(fields - emitted):
            yield self.finding(
                f"{name}.{field} is never emitted by to_dict() -- the "
                "field would be lost on the way to disk",
                node=to_dict,
            )
        for field in sorted(fields - consumed):
            yield self.finding(
                f"{name}.{field} is never restored by from_dict() -- "
                "warm results would drop it",
                node=from_dict,
            )
        for key in sorted(consumed - emitted):
            yield self.finding(
                f"{name}.from_dict() consumes key {key!r} that "
                "to_dict() never emits",
                node=from_dict,
            )
        for key in sorted(emitted - consumed):
            yield self.finding(
                f"{name}.to_dict() emits key {key!r} that from_dict() "
                "never consumes -- round trip is asymmetric",
                node=to_dict,
            )
