"""RPR007: the public facade's ``__all__`` matches the documented surface.

``repro.api`` is the stable public surface of the reproduction: its
``__all__`` is the contract that ``docs/SERVICE.md`` and the README
document, that the CLI and the ``repro serve`` client are built on, and
that downstream callers may rely on across PRs.  Like RPR004 pins the
dispatch sets, this rule pins the facade: the documented surface lives
here as a literal, and any drift between it and the module's
``__all__`` -- a name added without documentation, a documented name
dropped, an export that is not actually defined -- is a finding.
Changing the public surface is allowed, but it must be done in both
places (and in the docs) at once.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Files the rule engages on (the facade module, wherever it lives --
# fixtures included).
FACADE_BASENAME = "api.py"

# The documented public surface (docs/SERVICE.md "Public API" and the
# README quick-start).  Sorted; ``__all__`` must equal it exactly.
FACADE_SURFACE = (
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeoutError",
    "SessionConfig",
    "SessionStats",
    "SimRequest",
    "SimulationSession",
    "WireFormatError",
    "connect",
    "scaleout",
    "session",
    "simulate",
    "sweep",
)


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at a module's top level (defs, classes, imports,
    assignments)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound


def _find_all(tree: ast.Module):
    """The module's ``__all__`` assignment node, or None."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


@register
class FacadeSurfaceRule(Rule):
    """Pin the facade module's ``__all__`` to the documented surface."""

    code = "RPR007"
    name = "facade-surface-parity"
    rationale = (
        "repro.api is the documented public surface; its __all__ must "
        "stay a sorted literal equal to the pinned surface, with every "
        "exported name actually bound in the module -- so the API, the "
        "docs, and this rule change together or not at all"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield one finding per facade/documentation divergence."""
        if ctx.path.name != FACADE_BASENAME:
            return
        node = _find_all(ctx.tree)
        if node is None:
            yield self.finding(
                "facade module defines no __all__ (the documented "
                "public surface must be pinned explicitly)",
                line=1,
            )
            return
        if not isinstance(node.value, (ast.List, ast.Tuple)) or not all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            for elt in node.value.elts
        ):
            yield self.finding(
                "__all__ must be a literal list/tuple of strings so the "
                "surface is statically checkable",
                node=node,
            )
            return
        names = [elt.value for elt in node.value.elts]
        if names != sorted(names):
            yield self.finding(
                "__all__ is not sorted (keep the surface listing "
                "deterministic)",
                node=node,
            )
        for name in sorted(set(names), key=names.index):
            if names.count(name) > 1:
                yield self.finding(
                    f"name {name!r} appears more than once in __all__",
                    node=node,
                )
        for name in FACADE_SURFACE:
            if name not in names:
                yield self.finding(
                    f"documented public name {name!r} is missing from "
                    "__all__ (update FACADE_SURFACE and the docs if it "
                    "was removed on purpose)",
                    node=node,
                )
        bound = _module_bindings(ctx.tree)
        for name in names:
            if name not in FACADE_SURFACE:
                yield self.finding(
                    f"{name!r} in __all__ is not part of the documented "
                    "public surface (document it and add it to "
                    "FACADE_SURFACE, or drop the export)",
                    node=node,
                )
            if name not in bound:
                yield self.finding(
                    f"exported name {name!r} is not defined in the "
                    "facade module",
                    node=node,
                )
