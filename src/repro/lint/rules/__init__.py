"""The repo-specific rule set.

Importing this package registers every rule: each module calls
:func:`repro.lint.registry.register` at import time.  New rules join
the checker by being imported here -- nothing else to wire.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    artifacts,
    cache_key,
    determinism,
    dispatch,
    docstrings,
    facade,
    serialization,
)
