"""RPR004: engine/scheme dispatch must cover the registered value set.

The simulators dispatch on small string knobs: ``strip_engine``
(``batched``/``serial``), ``memory_engine`` (``roofline``/
``hierarchy``) and the scale-out partition scheme (``data``/``model``/
``pipeline``).  The registered sets below are the single source of
truth; the rule pins every static appearance of a knob to them:

* an equality/inequality comparison against a literal not in the set is
  a typo or a stale engine name;
* a membership test (``knob not in (...)`` validation) or an argparse
  ``choices=(...)`` tuple must equal the registered set *exactly* --
  adding a new engine starts by extending the set here, and the lint
  run then lists every stale validation/choices site;
* an ``if/elif`` chain with two or more branches on one knob must be
  exhaustive: end in ``else: raise``, or cover every registered value
  (a single-value fallthrough is accepted -- the unmatched branch is
  then unambiguous).  Single-branch feature gates are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import str_const, str_sequence, terminal_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

# Knob name -> registered literal set.  THE source of truth: engines
# register here first, and the lint run enumerates the dispatch sites
# that still need extending.
KNOBS: dict[str, tuple[str, ...]] = {
    "strip_engine": ("batched", "serial"),
    "memory_engine": ("roofline", "hierarchy"),
    "partition": ("data", "model", "pipeline"),
    "scheme": ("data", "model", "pipeline"),
    "kernel_backend": ("numpy", "numba"),
}

# Module constants pinned to a knob's registered set (``scheme not in
# SCHEMES`` validations are checked through the constant's definition).
CONSTANT_ALIASES: dict[str, str] = {
    "SCHEMES": "scheme",
    "KERNEL_BACKENDS": "kernel_backend",
}

# argparse flags mapped onto knobs (``--memory-engine`` et al).
_FLAG_KNOBS = {f"--{k.replace('_', '-')}": k for k in KNOBS}


def _knob_of(node: ast.AST) -> str | None:
    """The knob a Name/Attribute refers to, if any."""
    name = terminal_name(node)
    return name if name in KNOBS else None


@register
class DispatchExhaustivenessRule(Rule):
    """Pin dispatch sites to the registered engine/scheme sets."""

    code = "RPR004"
    name = "engine-dispatch-exhaustiveness"
    rationale = (
        "string-knob dispatch (strip_engine/memory_engine/partition) "
        "must cover the registered value set and reject unknown values, "
        "or a new engine silently falls into the wrong branch"
    )

    def check(self, ctx) -> Iterator[Finding]:
        """Yield findings for stale or non-exhaustive dispatch sites."""
        chain_members: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(node)
            elif isinstance(node, ast.Assign):
                yield from self._check_constant(node)
            elif isinstance(node, ast.Call):
                yield from self._check_add_argument(node)
            elif isinstance(node, ast.If) and id(node) not in chain_members:
                yield from self._check_chain(node, chain_members)

    # -- comparisons -------------------------------------------------------

    def _check_compare(self, node: ast.Compare) -> Iterator[Finding]:
        """Literal validity of knob comparisons and membership tests."""
        if len(node.ops) != 1:
            return
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if isinstance(op, (ast.Eq, ast.NotEq)):
            for knob_side, lit_side in ((left, right), (right, left)):
                knob = _knob_of(knob_side)
                value = str_const(lit_side)
                if knob and value is not None and value not in KNOBS[knob]:
                    yield self.finding(
                        f"comparison against {value!r} which is not a "
                        f"registered {knob} value {KNOBS[knob]}",
                        node=node,
                    )
        elif isinstance(op, (ast.In, ast.NotIn)):
            knob = _knob_of(left)
            values = str_sequence(right)
            if knob and values is not None:
                if set(values) != set(KNOBS[knob]):
                    yield self.finding(
                        f"membership test covers {sorted(values)} but "
                        f"the registered {knob} set is "
                        f"{sorted(KNOBS[knob])}",
                        node=node,
                    )

    # -- pinned constants --------------------------------------------------

    def _check_constant(self, node: ast.Assign) -> Iterator[Finding]:
        """Module constants aliased to a knob must equal its set."""
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        knob = CONSTANT_ALIASES.get(target.id)
        if knob is None:
            return
        values = str_sequence(node.value)
        if values is not None and set(values) != set(KNOBS[knob]):
            yield self.finding(
                f"constant {target.id} holds {sorted(values)} but the "
                f"registered {knob} set is {sorted(KNOBS[knob])}",
                node=node,
            )

    # -- argparse choices --------------------------------------------------

    def _check_add_argument(self, node: ast.Call) -> Iterator[Finding]:
        """``add_argument('--knob', choices=...)`` must match the set."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr == "add_argument"
        ):
            return
        flag = str_const(node.args[0]) if node.args else None
        knob = _FLAG_KNOBS.get(flag or "")
        if knob is None:
            return
        choices = next(
            (kw.value for kw in node.keywords if kw.arg == "choices"), None
        )
        if choices is None:
            yield self.finding(
                f"CLI flag {flag} has no choices= -- unknown {knob} "
                "values would pass argument parsing",
                node=node,
            )
            return
        values = str_sequence(choices)
        if values is not None and set(values) != set(KNOBS[knob]):
            yield self.finding(
                f"CLI flag {flag} offers choices {sorted(values)} but "
                f"the registered {knob} set is {sorted(KNOBS[knob])}",
                node=node,
            )

    # -- if/elif chains ----------------------------------------------------

    def _chain_test(self, test: ast.AST) -> tuple[str, str] | None:
        """(knob, literal) of an ``knob == 'lit'`` chain test."""
        if not isinstance(test, ast.Compare):
            return None
        if len(test.ops) != 1 or not isinstance(test.ops[0], ast.Eq):
            return None
        left, right = test.left, test.comparators[0]
        for knob_side, lit_side in ((left, right), (right, left)):
            knob = _knob_of(knob_side)
            value = str_const(lit_side)
            if knob and value is not None:
                return knob, value
        return None

    def _check_chain(
        self, node: ast.If, chain_members: set[int]
    ) -> Iterator[Finding]:
        """Exhaustiveness of a multi-branch knob dispatch chain."""
        head = self._chain_test(node.test)
        if head is None:
            return
        knob, first = head
        covered = [first]
        current = node
        has_else = False
        else_raises = False
        while current.orelse:
            if len(current.orelse) == 1 and isinstance(
                current.orelse[0], ast.If
            ):
                nxt = current.orelse[0]
                step = self._chain_test(nxt.test)
                if step is not None and step[0] == knob:
                    chain_members.add(id(nxt))
                    covered.append(step[1])
                    current = nxt
                    continue
            has_else = True
            else_raises = any(
                isinstance(stmt, ast.Raise) for stmt in current.orelse
            )
            break
        if len(covered) < 2:
            return  # single-branch feature gate, not a dispatch chain
        registered = set(KNOBS[knob])
        missing = registered - set(covered)
        if has_else and else_raises:
            return
        if not missing:
            return
        if not has_else and len(missing) == 1:
            return  # unambiguous fallthrough branch
        yield self.finding(
            f"dispatch chain on {knob} covers {sorted(set(covered))} "
            f"but not {sorted(missing)} and has no raising else branch",
            node=node,
        )
