"""Text and JSON renderings of a lint report.

Both renderings are deterministic functions of the report: findings are
already sorted by the runner, and the JSON document is dumped with
sorted keys -- the lint gate's own artifact honors the artifact-
stability contract it enforces (RPR005).
"""

from __future__ import annotations

import json

from repro.lint.runner import LintReport

REPORT_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable findings, one line each, plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.code} {f.message}"
        for f in report.findings
    ]
    if report.findings:
        counts = ", ".join(
            f"{code}: {n}" for code, n in sorted(report.counts_by_code.items())
        )
        lines.append(
            f"Found {len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''} "
            f"in {report.files_checked} files ({counts})."
        )
    else:
        lines.append(f"Checked {report.files_checked} files: clean.")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI findings artifact)."""
    document = {
        "version": REPORT_VERSION,
        "files_checked": report.files_checked,
        "counts_by_code": report.counts_by_code,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
