"""The ``repro lint`` subcommand.

Exit codes follow the convention of the rest of the CLI (and of most
linters): 0 for a clean tree, 1 when findings survive, 2 for usage
errors (unknown rule codes, nonexistent paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.registry import REGISTRY, resolve_codes
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import lint_paths


def configure_lint_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``lint`` subcommand to the main parser's subparsers.

    Args:
        sub: the ``repro`` parser's subparsers action.
    """
    lint = sub.add_parser(
        "lint",
        help="statically check the reproducibility contracts (RPR rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    lint.add_argument(
        "--select",
        nargs="+",
        default=None,
        metavar="CODE",
        help="run only these rule codes (e.g. RPR001 RPR003)",
    )
    lint.add_argument(
        "--ignore",
        nargs="+",
        default=None,
        metavar="CODE",
        help="skip these rule codes",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format printed to stdout",
    )
    lint.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _list_rules() -> str:
    """The rule catalog, one line per registered rule."""
    import repro.lint.rules  # noqa: F401  (populate the registry)

    lines = []
    for code in sorted(REGISTRY):
        rule = REGISTRY[code]
        lines.append(f"{code}  {rule.name}: {rule.rationale}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` for parsed arguments.

    Args:
        args: the parsed ``lint`` subcommand namespace.

    Returns:
        Process exit code (0 clean / 1 findings / 2 usage error).
    """
    import repro.lint.rules  # noqa: F401  (populate the registry)

    if args.list_rules:
        print(_list_rules())
        return 0
    select, unknown_s = resolve_codes(args.select, REGISTRY)
    ignore, unknown_i = resolve_codes(args.ignore, REGISTRY)
    unknown = unknown_s + unknown_i
    if unknown:
        print(
            "unknown rule code(s): "
            + ", ".join(repr(c) for c in unknown)
            + "\nknown codes: "
            + ", ".join(sorted(REGISTRY)),
            file=sys.stderr,
        )
        return 2
    try:
        report = lint_paths(args.paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out is not None:
        out = Path(args.out)
        if out.exists() and out.is_dir():
            print(f"--out {args.out!r} is a directory", file=sys.stderr)
            return 2
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_json(report) + "\n")
    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    print(rendered)
    return 1 if report.findings else 0
