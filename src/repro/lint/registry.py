"""The rule plugin registry.

Rules are classes: one instance per lint run, ``check`` called once per
file.  Registration happens at import time via the :func:`register`
decorator, so making a rule available is just importing its module from
:mod:`repro.lint.rules` -- the same pattern pytest plugins or flake8
extensions use, scaled down to a single repository.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Type

from repro.lint.findings import Finding

CODE_RE = re.compile(r"^RPR\d{3}$")

# code -> rule class, populated by @register at import time.
REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        code: unique ``RPRxxx`` identifier.
        name: short kebab-case rule name (shown in ``--list-rules``).
        rationale: one-paragraph justification (the rule catalog in
            ``docs/LINTING.md`` is generated from the docstrings, so
            keep this the source of truth).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx) -> Iterator[Finding]:
        """Yield findings for one file.

        Args:
            ctx: the :class:`repro.lint.runner.FileContext` under check.
        """
        raise NotImplementedError

    def finding(self, message: str, node=None, line=1, col=0) -> Finding:
        """Build a finding of this rule, anchored at a node if given."""
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", col)
        return Finding(code=self.code, message=message, line=line, col=col)


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry.

    Raises:
        ValueError: on a malformed or duplicate rule code.
    """
    if not CODE_RE.match(cls.code or ""):
        raise ValueError(f"rule code {cls.code!r} does not match RPRxxx")
    if cls.code in REGISTRY and REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def resolve_codes(
    tokens: Iterable[str] | None, known: Iterable[str]
) -> tuple[frozenset[str], list[str]]:
    """Normalize a ``--select``/``--ignore`` code list.

    Args:
        tokens: raw argument values (each may hold comma-separated
            codes); None means "no restriction".
        known: registered rule codes.

    Returns:
        ``(codes, unknown)`` -- the resolved code set (empty when
        ``tokens`` is None) and any tokens that match no known rule.
    """
    if tokens is None:
        return frozenset(), []
    known_set = set(known)
    codes: set[str] = set()
    unknown: list[str] = []
    for token in tokens:
        for piece in filter(None, re.split(r"[,\s]+", token)):
            code = piece.upper()
            if code in known_set:
                codes.add(code)
            else:
                unknown.append(piece)
    return frozenset(codes), unknown
