"""The FPRaker processing element: bit-faithful functional model.

This is the reference implementation of one PE (paper Figs 3--5): eight
MAC lanes whose serial-side ("A") operands are expanded into canonical
signed-power-of-two terms, multiplied against the parallel-side ("B")
significands by shifting, and accumulated into the extended-precision
register.

The model is *exact*: all arithmetic uses Python integers, and the
result matches :class:`repro.fp.accumulator.ExtendedAccumulator` bit for
bit when out-of-bounds skipping is disabled (skipping only drops terms
that lie beyond the accumulator's reach, so enabling it perturbs the
result by at most a few grid ulps -- the tests bound this).

Timing follows the modified PE of Fig 4: per cycle the control unit
picks the round's ``base`` as the smallest pending alignment offset and
fires every lane whose offset is within the shift window (3 positions);
lanes farther away stall ("shift range"), lanes out of terms idle ("no
term").  A worked replay of the paper's Fig 5 example lives in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PEConfig
from repro.encoding.booth import csd_encode
from repro.encoding.terms import TERM_SLOTS
from repro.fp.accumulator import ExtendedAccumulator, ZERO_EXP
from repro.fp.bfloat16 import bf16_fields

_BF16_FRAC = 7  # stored significand bits of bfloat16

# Unbiased exponent the hardware reads from a zero bfloat16 operand
# (exponent field of all zeros, bias 127).
_ZERO_OPERAND_EXP = -127


def _operand_exponent(x: float) -> int:
    """Unbiased exponent of a bfloat16 operand as the exponent adders see it."""
    _, exp, _, is_zero = bf16_fields(x)
    return _ZERO_OPERAND_EXP if bool(is_zero) else int(exp)


@dataclass
class GroupTrace:
    """Everything one group (8 MAC lanes, one A set) produced.

    Attributes:
        cycles: schedule length in cycles (>= 1; the exponent-sharing
            minimum of 2 is applied at the tile level).
        emax: the round's maximum exponent (``ZERO_EXP`` for an all-zero
            round with a zero accumulator).
        lane_useful: per-lane cycles that fired a term.
        lane_shift: per-lane cycles stalled on the shift window.
        lane_no_term: per-lane cycles idle with no terms left.
        terms_processed: terms fired across all lanes.
        terms_zero_skipped: bit-parallel slots never encoded (zero bits /
            zero values), out of 8 per lane.
        terms_ob_skipped: encoded terms skipped as out of bounds.
        result: accumulator value after the group (extended precision).
    """

    cycles: int
    emax: int
    lane_useful: list[int]
    lane_shift: list[int]
    lane_no_term: list[int]
    terms_processed: int
    terms_zero_skipped: int
    terms_ob_skipped: int
    result: float


@dataclass
class _LaneWork:
    """Per-lane decoded work for one group."""

    k_offsets: list[int] = field(default_factory=list)
    contribution: tuple[int, int] = (0, 0)  # (mantissa, exp2), exact
    zero_slots: int = TERM_SLOTS
    ob_terms: int = 0


class FPRakerPE:
    """One FPRaker processing element (functional + per-group timing).

    Args:
        config: PE parameters; defaults to the paper's (8 lanes, shift
            window 3, OB skipping on, 4+12-bit accumulator).
    """

    def __init__(self, config: PEConfig | None = None) -> None:
        self.config = config if config is not None else PEConfig()
        self.accumulator = ExtendedAccumulator(self.config.accumulator)

    def reset(self) -> None:
        """Clear the accumulator."""
        self.accumulator.reset()

    def value(self) -> float:
        """Current accumulator value at extended precision."""
        return self.accumulator.value()

    def read_bf16(self) -> float:
        """Accumulator value rounded to bfloat16 (the memory write-back)."""
        return self.accumulator.read_bf16()

    def process_group(
        self,
        a_values: np.ndarray | list[float],
        b_values: np.ndarray | list[float],
    ) -> GroupTrace:
        """Process one group of (A, B) pairs: MACs accumulated in place.

        Args:
            a_values: serial-side operands, bfloat16-representable, up to
                ``lanes`` of them.
            b_values: parallel-side operands, same length.

        Returns:
            A :class:`GroupTrace` with the timing/work ledger and result.
        """
        a = np.atleast_1d(np.asarray(a_values, dtype=np.float64))
        b = np.atleast_1d(np.asarray(b_values, dtype=np.float64))
        if a.shape != b.shape:
            raise ValueError(f"lane count mismatch: {a.shape} vs {b.shape}")
        if a.size > self.config.lanes:
            raise ValueError(
                f"group of {a.size} exceeds {self.config.lanes} lanes"
            )
        emax = self._exponent_block(a, b)
        lanes = [self._decode_lane(a[i], b[i], emax) for i in range(a.size)]
        cycles, useful, shift_stall, no_term = _schedule_scalar(
            [lane.k_offsets for lane in lanes],
            window=self.config.shift_window,
        )
        contributions = [lane.contribution for lane in lanes]
        if emax != ZERO_EXP:
            self.accumulator.accumulate_exact(contributions, emax)
        return GroupTrace(
            cycles=cycles,
            emax=emax,
            lane_useful=useful,
            lane_shift=shift_stall,
            lane_no_term=no_term,
            terms_processed=sum(len(lane.k_offsets) for lane in lanes),
            terms_zero_skipped=sum(lane.zero_slots for lane in lanes),
            terms_ob_skipped=sum(lane.ob_terms for lane in lanes),
            result=self.accumulator.value(),
        )

    def _exponent_block(self, a: np.ndarray, b: np.ndarray) -> int:
        """Block 1: product exponents and the round maximum (Fig 3).

        Lanes whose product is zero are masked out of the MAX (the zero
        flag of either operand gates the comparator), so zero pairs never
        win the round exponent.  Without the mask a zero operand's -127
        exponent field paired with a large operand can still beat a
        genuinely tiny product (e.g. 0 x 2^14 reads -113, beating 2^-126)
        and push that product off the accumulator grid -- which is what
        broke bit-exactness against the reference accumulator.
        """
        exps = [
            _operand_exponent(a[i]) + _operand_exponent(b[i])
            for i in range(a.size)
            if a[i] != 0.0 and b[i] != 0.0
        ]
        if not self.accumulator.is_zero:
            exps.append(self.accumulator.eacc)
        return max(exps) if exps else ZERO_EXP

    def _decode_lane(self, a: float, b: float, emax: int) -> _LaneWork:
        """Expand one lane's A into terms, filter OB, form its exact sum."""
        sa, ea, ma, za = bf16_fields(a)
        sb, eb, mb, zb = bf16_fields(b)
        if bool(za):
            # No terms are ever encoded for a zero serial operand.
            return _LaneWork()
        terms = csd_encode(int(ma))
        zero_slots = TERM_SLOTS - len(terms)
        abe = _operand_exponent(a) + _operand_exponent(b)
        threshold = self.config.accumulator.ob_threshold
        product_sign = -1 if int(sa) ^ int(sb) else 1
        k_offsets: list[int] = []
        kept = []
        ob_terms = 0
        for term in terms:
            # Alignment offset of this term's shifted B significand
            # relative to the round's emax (Fig 5: k = emax - (ABe - t)).
            # Shift distances are unsigned in hardware: a lane whose
            # product is zero (zero B) is excluded from the round MAX,
            # so its emax - abe can go negative; its terms clamp at the
            # round base (they carry no bits either way).
            k = max(0, (emax - abe) + (_BF16_FRAC - term.power))
            if self.config.ob_skip and k > threshold:
                # This and every later (smaller) term is out of bounds.
                ob_terms = len(terms) - len(kept)
                break
            if not self.config.ob_skip:
                # The shifters saturate at the accumulator's reach; a
                # farther term sheds all its bits into the sticky
                # position and never serializes the base walk.  A
                # wide-datapath design (saturate_shifts=False) realizes
                # the full alignment up to the format's range.
                cap = (
                    threshold + self.config.shift_window
                    if self.config.saturate_shifts
                    else 48
                )
                k = min(k, cap)
            k_offsets.append(k)
            kept.append(term)
        if bool(zb):
            # A zero parallel operand contributes nothing numerically,
            # but the serial side's terms still occupy the lane.
            contribution = (0, 0)
        else:
            mantissa = sum(
                product_sign * t.sign * int(mb) * (1 << t.power) for t in kept
            )
            # Each kept piece is sign * Bm * 2^(ABe + p - 14).
            contribution = (mantissa, abe - 2 * _BF16_FRAC)
        return _LaneWork(
            k_offsets=k_offsets,
            contribution=contribution,
            zero_slots=zero_slots,
            ob_terms=ob_terms,
        )


def _schedule_scalar(
    k_lists: list[list[int]],
    window: int,
) -> tuple[int, list[int], list[int], list[int]]:
    """Cycle-by-cycle schedule of one group (reference implementation).

    Per cycle: ``base`` is the smallest pending offset; every lane whose
    pending offset is within ``window`` of base fires; other pending
    lanes record a shift-range stall; exhausted lanes record no-term
    idling while the group is still in flight.  A group always costs at
    least one cycle (the exponent block is invoked regardless).

    Args:
        k_lists: per-lane ascending alignment offsets (already OB
            filtered).
        window: shift window (paper: 3).

    Returns:
        ``(cycles, useful, shift_stall, no_term)`` with per-lane lists.
    """
    lanes = len(k_lists)
    index = [0] * lanes
    useful = [0] * lanes
    shift_stall = [0] * lanes
    no_term = [0] * lanes
    cycles = 0
    while True:
        pending = [
            lane for lane in range(lanes) if index[lane] < len(k_lists[lane])
        ]
        if not pending:
            break
        base = min(k_lists[lane][index[lane]] for lane in pending)
        cycles += 1
        for lane in range(lanes):
            if index[lane] >= len(k_lists[lane]):
                no_term[lane] += 1
            elif k_lists[lane][index[lane]] - base <= window:
                useful[lane] += 1
                index[lane] += 1
            else:
                shift_stall[lane] += 1
    if cycles == 0:
        # The exponent block still consumes the group's one mandatory
        # cycle; every lane idles through it.
        cycles = 1
        no_term = [1] * lanes
    return cycles, useful, shift_stall, no_term
