"""Statistic ledgers shared by all simulator levels.

The units:

* **lane-cycles** -- one lane of one PE for one cycle.  A fully busy
  8-lane PE burns 8 lane-cycles per cycle.  Fig 15/16/20 of the paper are
  breakdowns of lane-cycles into the categories of :class:`LaneLedger`.
* **terms** -- one signed power of two of a serial-side operand.
  Fig 13 is the breakdown of *skipped* terms into zero terms (never
  encoded) and out-of-bounds terms (encoded position falls below the
  accumulator's reach).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.traffic import MemoryTrafficResult


@dataclass
class LaneLedger:
    """Lane-cycle breakdown (the categories of paper Fig 15).

    Attributes:
        useful: lane fired a term (or, for the bit-parallel baseline,
            retired a MAC).
        no_term: lane idle because it exhausted its terms while siblings
            in the same PE kept working.
        shift_range: lane had a term but its offset was farther than the
            shift window from the round's base.
        inter_pe: lane idle due to synchronization with other PEs (shared
            A terms down a column, shared B across columns / buffer
            limits).
        exponent: lane idle waiting for the shared exponent block.
    """

    useful: float = 0.0
    no_term: float = 0.0
    shift_range: float = 0.0
    inter_pe: float = 0.0
    exponent: float = 0.0

    CATEGORIES = ("useful", "no_term", "shift_range", "inter_pe", "exponent")

    def total(self) -> float:
        """Total lane-cycles recorded."""
        return (
            self.useful
            + self.no_term
            + self.shift_range
            + self.inter_pe
            + self.exponent
        )

    def add(self, other: "LaneLedger", weight: float = 1.0) -> None:
        """Accumulate another ledger, optionally scaled.

        Args:
            other: ledger to merge in.
            weight: scale factor (used when extrapolating samples).
        """
        self.useful += other.useful * weight
        self.no_term += other.no_term * weight
        self.shift_range += other.shift_range * weight
        self.inter_pe += other.inter_pe * weight
        self.exponent += other.exponent * weight

    def fractions(self) -> dict[str, float]:
        """Category fractions (sum to 1.0 when any cycles are recorded)."""
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in self.CATEGORIES}
        return {name: getattr(self, name) / total for name in self.CATEGORIES}

    def utilization(self) -> float:
        """Fraction of lane-cycles doing useful work."""
        total = self.total()
        return self.useful / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {name: getattr(self, name) for name in self.CATEGORIES}

    @classmethod
    def from_dict(cls, data: dict) -> "LaneLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        return cls(**{name: float(data[name]) for name in cls.CATEGORIES})


@dataclass
class TermLedger:
    """Term-level work accounting (paper Figs 2 and 13).

    Attributes:
        processed: terms actually fired through the shift-and-add lanes.
        zero_skipped: bit positions that never became terms (zero bits of
            the significand, or whole zero values) relative to the 8
            positions a bit-parallel unit processes.
        ob_skipped: encoded terms discarded because they fell out of the
            accumulator's bounds (and trailing terms skipped with them).
    """

    processed: float = 0.0
    zero_skipped: float = 0.0
    ob_skipped: float = 0.0

    def total_slots(self) -> float:
        """Bit-parallel-equivalent slots covered by this ledger."""
        return self.processed + self.zero_skipped + self.ob_skipped

    def add(self, other: "TermLedger", weight: float = 1.0) -> None:
        """Accumulate another ledger, optionally scaled."""
        self.processed += other.processed * weight
        self.zero_skipped += other.zero_skipped * weight
        self.ob_skipped += other.ob_skipped * weight

    def skipped_fraction(self) -> float:
        """Fraction of slots skipped (zero + out-of-bounds)."""
        total = self.total_slots()
        if total == 0:
            return 0.0
        return (self.zero_skipped + self.ob_skipped) / total

    def ob_share_of_skipped(self) -> float:
        """Out-of-bounds share among skipped terms (Fig 13's split)."""
        skipped = self.zero_skipped + self.ob_skipped
        return self.ob_skipped / skipped if skipped else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "processed": self.processed,
            "zero_skipped": self.zero_skipped,
            "ob_skipped": self.ob_skipped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TermLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        return cls(
            processed=float(data["processed"]),
            zero_skipped=float(data["zero_skipped"]),
            ob_skipped=float(data["ob_skipped"]),
        )


@dataclass
class SimCounters:
    """Aggregate counters produced by a simulation run.

    Attributes:
        cycles: simulated (or extrapolated) clock cycles.
        groups: reduction groups (sets of 8 MACs per PE) retired.
        macs: MAC operations retired.
        lanes: lane-cycle breakdown.
        terms: term-level breakdown.
        exponent_invocations: exponent-block activations (one per group).
        accumulator_updates: accumulator register writes.
        memory: event-level memory-hierarchy activity; None when the
            simulation ran under the roofline memory engine (keeps the
            serialized form -- and therefore cached results -- of
            roofline runs unchanged).
    """

    cycles: float = 0.0
    groups: float = 0.0
    macs: float = 0.0
    lanes: LaneLedger = field(default_factory=LaneLedger)
    terms: TermLedger = field(default_factory=TermLedger)
    exponent_invocations: float = 0.0
    accumulator_updates: float = 0.0
    memory: MemoryTrafficResult | None = None

    def add(self, other: "SimCounters", weight: float = 1.0) -> None:
        """Accumulate another counter set, optionally scaled."""
        self.cycles += other.cycles * weight
        self.groups += other.groups * weight
        self.macs += other.macs * weight
        self.lanes.add(other.lanes, weight)
        self.terms.add(other.terms, weight)
        self.exponent_invocations += other.exponent_invocations * weight
        self.accumulator_updates += other.accumulator_updates * weight
        if other.memory is not None:
            if self.memory is None:
                self.memory = MemoryTrafficResult()
            self.memory.add(other.memory, weight)

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip).

        The ``memory`` key is present only for hierarchy-engine runs, so
        roofline results serialize exactly as they did before the
        memory counters existed.
        """
        data = {
            "cycles": self.cycles,
            "groups": self.groups,
            "macs": self.macs,
            "lanes": self.lanes.to_dict(),
            "terms": self.terms.to_dict(),
            "exponent_invocations": self.exponent_invocations,
            "accumulator_updates": self.accumulator_updates,
        }
        if self.memory is not None:
            data["memory"] = self.memory.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimCounters":
        """Rebuild counters from :meth:`to_dict` output."""
        memory = data.get("memory")
        return cls(
            cycles=float(data["cycles"]),
            groups=float(data["groups"]),
            macs=float(data["macs"]),
            lanes=LaneLedger.from_dict(data["lanes"]),
            terms=TermLedger.from_dict(data["terms"]),
            exponent_invocations=float(data["exponent_invocations"]),
            accumulator_updates=float(data["accumulator_updates"]),
            memory=(
                MemoryTrafficResult.from_dict(memory)
                if memory is not None
                else None
            ),
        )
