"""FPRaker core: the processing element, tile, and accelerator models.

Two complementary models live here:

* a **functional model** (:mod:`repro.core.pe`) that performs the
  term-serial arithmetic exactly, bit for bit, against the golden
  extended-precision accumulator -- used for correctness tests and the
  accuracy study;
* a **performance model** (:mod:`repro.core.schedule`,
  :mod:`repro.core.tile`, :mod:`repro.core.accelerator`) that simulates
  the PE's cycle-by-cycle term schedule (shift window, out-of-bounds
  skipping, lane synchronization), the shared exponent block, and the
  tile's column/row synchronization, vectorized across many reduction
  groups at once.

The bit-parallel baseline and the Bit-Pragmatic-FP comparator the paper
measures against are in :mod:`repro.core.baseline` and
:mod:`repro.core.pragmatic`.
"""

from repro.core.config import (
    PEConfig,
    TileConfig,
    AcceleratorConfig,
    fpraker_paper_config,
    baseline_paper_config,
    pragmatic_paper_config,
)
from repro.core.stats import LaneLedger, TermLedger, SimCounters
from repro.core.pe import FPRakerPE, GroupTrace
from repro.core.schedule import schedule_groups, group_term_weights
from repro.core.tile import TileSimulator, TileResult
from repro.core.accelerator import (
    AcceleratorSimulator,
    LayerPhaseResult,
    WorkloadResult,
)
from repro.core.baseline import BaselineAccelerator
from repro.core.pragmatic import PragmaticFPAccelerator

__all__ = [
    "PEConfig",
    "TileConfig",
    "AcceleratorConfig",
    "fpraker_paper_config",
    "baseline_paper_config",
    "pragmatic_paper_config",
    "LaneLedger",
    "TermLedger",
    "SimCounters",
    "FPRakerPE",
    "GroupTrace",
    "schedule_groups",
    "group_term_weights",
    "TileSimulator",
    "TileResult",
    "AcceleratorSimulator",
    "LayerPhaseResult",
    "WorkloadResult",
    "BaselineAccelerator",
    "PragmaticFPAccelerator",
]
