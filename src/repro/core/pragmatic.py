"""Bit-Pragmatic converted to bfloat16: the paper's negative result.

Section I reports that porting the Bit-Pragmatic inference PE to
floating point yields an area-expensive unit: 2.5x smaller than the
bit-parallel PE (so only 20 tiles fit the baseline's 8-tile compute
area), full-range shifters (no shift-window economy -- that is *why* it
is big), no out-of-bounds skipping, and a per-PE exponent path.  Under
iso compute area it ends up on average 1.72x slower and 1.96x less
energy efficient than the optimized bit-parallel baseline -- the
observation that motivated FPRaker's area-focused design choices.

The timing model reuses the FPRaker simulator with the Pragmatic
configuration (unlimited shift window, OB skipping off, no exponent
sharing); the energy model scales FPRaker's per-event costs by the
factors its wide datapath implies.
"""

from __future__ import annotations

from repro.core.accelerator import AcceleratorSimulator
from repro.core.config import AcceleratorConfig, pragmatic_paper_config
from repro.core.stats import SimCounters
from repro.core.workload import PhaseWorkload
from repro.energy.model import CoreEnergy, EnergyBreakdown, EnergyModel
from repro.memory.dram import DRAMModel

# Energy scale factors of the Pragmatic-FP datapath relative to
# FPRaker's: full 12-position shifters and a wide adder tree on the
# compute path, a full exponent block per PE, no shared encoders.
_COMPUTE_SCALE = 2.9
_CONTROL_SCALE = 2.0
_ACCUM_SCALE = 1.5


class PragmaticFPAccelerator(AcceleratorSimulator):
    """Bfloat16 Bit-Pragmatic accelerator at iso compute area.

    Args:
        config: defaults to 20 tiles of Pragmatic-FP PEs.
        energy: per-event energy model (FPRaker's, rescaled here).
        dram: off-chip memory model.
        sample_strips: operand strips sampled per layer-phase.
        sample_steps: reduction groups per strip.
        seed: RNG seed.
        strip_engine: ``"batched"`` (default) or the ``"serial"``
            reference loop.
        phase_stacking: stack same-geometry phases into one batched
            tile pass (default; bit-identical to per-phase calls).
        memory_engine: ``"roofline"`` (default) or the event-level
            ``"hierarchy"`` traffic engine.
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            the hot loops run through (bit-identical by contract).
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        energy: EnergyModel | None = None,
        dram: DRAMModel | None = None,
        sample_strips: int = 8,
        sample_steps: int = 32,
        seed: int = 1234,
        strip_engine: str = "batched",
        phase_stacking: bool = True,
        memory_engine: str = "roofline",
        kernel_backend: str = "numpy",
    ) -> None:
        super().__init__(
            config=config if config is not None else pragmatic_paper_config(),
            energy=energy,
            dram=dram,
            sample_strips=sample_strips,
            sample_steps=sample_steps,
            seed=seed,
            strip_engine=strip_engine,
            phase_stacking=phase_stacking,
            memory_engine=memory_engine,
            kernel_backend=kernel_backend,
        )

    def _phase_energy(
        self,
        workload: PhaseWorkload,
        counters: SimCounters,
        dram_bytes: float,
        tile_cfg,
    ) -> EnergyBreakdown:
        """FPRaker's activity energies scaled to the wide datapath."""
        base = self.energy.fpraker_core_energy(counters, lanes=tile_cfg.pe.lanes)
        core = CoreEnergy(
            compute=base.compute * _COMPUTE_SCALE,
            control=base.control * _CONTROL_SCALE,
            accumulation=base.accumulation * _ACCUM_SCALE,
        )
        on_chip_bytes = self._on_chip_bytes(workload, tile_cfg)
        on_chip = self.energy.on_chip_energy(on_chip_bytes)
        if counters.memory is not None:
            on_chip += self.energy.scratchpad_energy(
                counters.memory.scratchpad_bytes
            )
        return EnergyBreakdown(
            core=core,
            on_chip=on_chip,
            off_chip=self.energy.off_chip_energy(dram_bytes),
        )
