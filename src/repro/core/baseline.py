"""The optimized bit-parallel bfloat16 baseline accelerator.

The paper's baseline (Table II) is 8 tiles of 8x8 PEs, each PE a fused
bit-parallel MAC unit processing 8 bfloat16 pairs per cycle with the
same chunk-based reduced-precision accumulation as FPRaker -- 4096
MACs/cycle in total.  It retires one reduction group per PE per cycle
regardless of operand values, so its compute time is exactly
``macs / peak`` and its lanes are always "useful".

Numerically the baseline is the reference:
:func:`repro.fp.accumulator.dot_reference` implements its arithmetic,
which FPRaker must reproduce.
"""

from __future__ import annotations

from repro.core.accelerator import LayerPhaseResult, WorkloadResult
from repro.core.config import AcceleratorConfig, baseline_paper_config
from repro.core.stats import LaneLedger, SimCounters, TermLedger
from repro.core.workload import PhaseWorkload
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.memory.dram import DRAMModel


class BaselineAccelerator:
    """Bit-parallel baseline simulator (same interface as FPRaker's).

    Args:
        config: accelerator configuration (defaults to the paper's
            8-tile baseline).
        energy: per-event energy model.
        dram: off-chip memory model.
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        energy: EnergyModel | None = None,
        dram: DRAMModel | None = None,
    ) -> None:
        self.config = config if config is not None else baseline_paper_config()
        self.energy = energy if energy is not None else EnergyModel()
        self.dram = dram if dram is not None else DRAMModel()

    def simulate_phase(self, workload: PhaseWorkload) -> LayerPhaseResult:
        """Simulate one layer-phase analytically.

        Args:
            workload: the layer-phase description.

        Returns:
            The :class:`LayerPhaseResult`.
        """
        cfg = self.config
        peak = cfg.peak_macs_per_cycle
        compute_cycles = workload.macs / peak
        dram_bytes = workload.total_bytes  # no compression in the baseline
        dram_cycles = self.dram.transfer_cycles(dram_bytes, cfg.clock_mhz)
        cycles = max(compute_cycles, dram_cycles)
        lanes = cfg.tile.pe.lanes
        groups = workload.macs / lanes
        counters = SimCounters(
            cycles=compute_cycles,
            groups=groups,
            macs=float(workload.macs),
            lanes=LaneLedger(useful=float(workload.macs)),
            terms=TermLedger(processed=0.0, zero_skipped=0.0, ob_skipped=0.0),
            exponent_invocations=groups,
            accumulator_updates=groups,
        )
        core = self.energy.baseline_core_energy(workload.macs)
        operand_bytes = workload.macs * 2.0 * (
            1.0 / cfg.tile.rows + 1.0 / cfg.tile.cols
        )
        output_bytes = 2.0 * workload.macs / max(1, workload.reduction)
        energy = EnergyBreakdown(
            core=core,
            on_chip=self.energy.on_chip_energy(operand_bytes + output_bytes),
            off_chip=self.energy.off_chip_energy(dram_bytes),
        )
        return LayerPhaseResult(
            model=workload.model,
            layer=workload.layer,
            phase=workload.phase,
            macs=workload.macs,
            serial_tensor="(bit-parallel)",
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            cycles=cycles,
            counters=counters,
            dram_bytes=dram_bytes,
            dram_bytes_raw=dram_bytes,
            energy=energy,
        )

    def simulate_workload(
        self, workloads: list[PhaseWorkload], model: str = ""
    ) -> WorkloadResult:
        """Simulate a full list of layer-phases.

        Args:
            workloads: layer-phases of one model's training step.
            model: model name for the report.

        Returns:
            The aggregated :class:`WorkloadResult`.
        """
        if not workloads:
            raise ValueError("empty workload list")
        result = WorkloadResult(
            name=self.config.name,
            model=model or workloads[0].model,
        )
        for workload in workloads:
            result.phases.append(self.simulate_phase(workload))
        return result
