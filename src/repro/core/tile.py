"""FPRaker tile simulation: PEs under shared-operand synchronization.

A tile (paper Fig 8) is a grid of ``rows x cols`` PEs:

* each **column** streams one serial-side (A) operand set, expanded once
  by term encoders shared down the column -- every PE of the column must
  finish the current A group before the column advances;
* each **row** broadcasts one parallel-side (B) operand set to all
  columns -- per-PE B buffers of depth ``N`` allow a column to run ahead
  of the slowest column by at most ``N`` groups;
* each **pair of PEs in a column** shares one exponent block, making two
  cycles the minimum cost of a group;
* OB signals of a lane are synchronized down the column.

The simulator consumes one "strip" of work: ``steps`` consecutive
reduction groups for every PE, with the accumulator exponent evolving as
the reduction proceeds (which is what the out-of-bounds mechanism keys
off).  Results are expressed per column-step so the accelerator level
can scale them to full layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TileConfig
from repro.core.schedule import (
    _K_SENTINEL,
    ScheduleResult,
    group_term_weights,
    schedule_from_weights,
)
from repro.core.stats import LaneLedger, SimCounters, TermLedger

# Accumulator-exponent sentinel for an empty accumulator; far below any
# real bfloat16 product exponent but safe in int64 arithmetic.
_EACC_ZERO = -(1 << 40)


@dataclass
class TileResult:
    """Outcome of simulating one strip on one tile.

    Attributes:
        makespan: cycles from first group issue to last group retire.
        steps: reduction groups simulated per PE.
        counters: aggregated work/stall ledger (lane-cycles sum to
            ``makespan * rows * cols * lanes``).
        cycles_per_step: makespan / steps -- the scaling quantity.
    """

    makespan: int
    steps: int
    counters: SimCounters

    @property
    def cycles_per_step(self) -> float:
        """Average cycles the tile needs per reduction group step."""
        return self.makespan / self.steps if self.steps else 0.0


def accumulator_exponents(
    a_chunks: np.ndarray,
    b_chunks: np.ndarray,
    initial_sum: np.ndarray | None = None,
) -> np.ndarray:
    """Evolve the per-PE accumulator exponent along the reduction.

    The OB mechanism compares term offsets against the *current*
    accumulator exponent.  The PE accumulates every product of an output
    into one higher-precision register (paper Section IV-A), so the
    register's exponent tracks the running partial sum of the *whole*
    reduction -- the chunk-based scheme of Sakr et al. governs which
    significand bits are retained, not the register's magnitude.  We
    emulate the running sum in float64 (exact at the exponent level) and
    read its exponent before every step.

    Args:
        a_chunks: serial operands ``[cols, steps, lanes]``.
        b_chunks: parallel operands ``[rows, steps, lanes]``.
        initial_sum: optional warm-start partial sums ``[rows, cols]``
            for strips that sit in the middle of a long reduction.

    Returns:
        int64 ``[rows, cols, steps]`` accumulator exponents *entering*
        each step (``_EACC_ZERO`` where the running sum is still zero).
    """
    # partial[r, c, s] = sum_l a[c, s, l] * b[r, s, l]
    partial = np.einsum("csl,rsl->rcs", a_chunks, b_chunks)
    running = np.cumsum(partial, axis=2)
    if initial_sum is not None:
        running = running + initial_sum[:, :, None]
        first = np.broadcast_to(
            initial_sum[:, :, None], running[:, :, :1].shape
        ).copy()
    else:
        first = np.zeros_like(running[:, :, :1])
    # Exponent entering step s is that of the sum over steps < s.
    entering = np.concatenate([first, running[:, :, :-1]], axis=2)
    nonzero = entering != 0.0
    _, exp = np.frexp(np.abs(entering))
    eacc = np.where(nonzero, exp.astype(np.int64) - 1, _EACC_ZERO)
    return eacc


class TileSimulator:
    """Cycle-level simulator of one FPRaker tile over a work strip."""

    def __init__(self, config: TileConfig | None = None) -> None:
        self.config = config if config is not None else TileConfig()

    def simulate_strip(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        initial_sum: np.ndarray | None = None,
    ) -> TileResult:
        """Simulate ``steps`` reduction groups across the whole tile.

        Args:
            a_chunks: serial operands ``[cols, steps, lanes]``
                (bfloat16-representable; column ``c`` streams
                ``a_chunks[c]``).
            b_chunks: parallel operands ``[rows, steps, lanes]`` (row
                ``r`` broadcasts ``b_chunks[r]`` to every column).
            initial_sum: optional warm-start accumulator values
                ``[rows, cols]`` for strips sampled mid-reduction.

        Returns:
            The :class:`TileResult` for the strip.
        """
        cfg = self.config
        cols, steps, lanes = a_chunks.shape
        rows = b_chunks.shape[0]
        if cols != cfg.cols or rows != cfg.rows or lanes != cfg.pe.lanes:
            raise ValueError(
                f"strip shape ({rows}x{cols}, {lanes} lanes) does not match "
                f"tile config ({cfg.rows}x{cfg.cols}, {cfg.pe.lanes} lanes)"
            )
        eacc = accumulator_exponents(a_chunks, b_chunks, initial_sum)
        schedule = self._schedule_columns(a_chunks, b_chunks, eacc)
        column_sched = schedule.cycles.reshape(cols, steps)
        floor = cfg.pe.min_group_cycles
        col_cycles = np.maximum(column_sched, floor)
        exp_stall = np.maximum(floor - column_sched, 0)
        finish, cross_idle = self._column_timeline(col_cycles)
        makespan = int(finish[:, -1].max())
        counters = self._build_counters(
            schedule,
            col_cycles,
            exp_stall,
            cross_idle,
            finish,
            makespan,
            rows,
        )
        return TileResult(makespan=makespan, steps=steps, counters=counters)

    def _schedule_columns(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        eacc: np.ndarray,
    ) -> ScheduleResult:
        """One schedule per (column, step): the column is the unit.

        The term encoders are shared down a column, so all of a column's
        PEs consume the same A-term stream in lockstep; per-row exponent
        differences shift each PE's alignment offsets, and the binding
        row (largest offset) gates when a term can fire within the shift
        window.  OB signals are synchronized down the column: a term is
        skipped only once *every* row agrees it is out of bounds, i.e.
        based on the smallest per-row offset.
        """
        rows = b_chunks.shape[0]
        cols, steps, lanes = a_chunks.shape
        a_groups = np.broadcast_to(
            a_chunks[None, :, :, :], (rows, cols, steps, lanes)
        ).reshape(-1, lanes)
        b_groups = np.broadcast_to(
            b_chunks[:, None, :, :], (rows, cols, steps, lanes)
        ).reshape(-1, lanes)
        cfg = self.config.pe
        k, kept, zero_slots, ob_skipped, _ = group_term_weights(
            a_groups, b_groups, eacc.reshape(-1), cfg
        )
        n_terms = k.shape[2]
        k = k.reshape(rows, cols * steps, lanes, n_terms)
        kept = kept.reshape(rows, cols * steps, lanes)
        zero_slots = zero_slots.reshape(rows, cols * steps, lanes)
        ob_skipped = ob_skipped.reshape(rows, cols * steps, lanes)
        # Firing is gated by the row needing the largest shift; skipping
        # by the row that still reaches the term (column-synchronized
        # OB).  A term already dropped in some row (sentinel offset) must
        # not block the others, so the firing offset ignores dropped rows
        # by construction: kept counts come from the per-column minimum
        # of dropped terms, and the offset stream keeps a term when any
        # row keeps it.
        col_ob = ob_skipped.min(axis=0)
        col_kept = kept.max(axis=0)
        k_live = np.where(k >= _K_SENTINEL, np.int64(-1), k)
        k_fire = k_live.max(axis=0)
        k_fire = np.where(k_fire < 0, _K_SENTINEL, k_fire)
        return schedule_from_weights(
            k_fire, col_kept, zero_slots[0], col_ob, cfg
        )

    def _column_timeline(
        self, col_cycles: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequence column steps under the B-broadcast buffer constraint.

        Args:
            col_cycles: ``[cols, steps]`` per-column group durations.

        Returns:
            ``(finish, cross_idle)``: completion time of every column
            step, and the idle cycles each column spent waiting for B
            sets held back by slower columns.
        """
        cols, steps = col_cycles.shape
        depth = self.config.buffer_depth
        finish = np.zeros((cols, steps), dtype=np.int64)
        cross_idle = np.zeros((cols, steps), dtype=np.int64)
        prev_finish = np.zeros(cols, dtype=np.int64)
        for s in range(steps):
            # B set s is released once every column consumed set s-depth.
            gate = int(finish[:, s - depth].max()) if s >= depth else 0
            start = np.maximum(prev_finish, gate)
            cross_idle[:, s] = start - prev_finish
            prev_finish = start + col_cycles[:, s]
            finish[:, s] = prev_finish
        return finish, cross_idle

    def _build_counters(
        self,
        schedule: ScheduleResult,
        col_cycles: np.ndarray,
        exp_stall: np.ndarray,
        cross_idle: np.ndarray,
        finish: np.ndarray,
        makespan: int,
        rows: int,
    ) -> SimCounters:
        """Aggregate lane-cycle and term ledgers for the strip.

        The schedule is per column-step; every one of the column's
        ``rows`` PEs mirrors it (shared term encoders), so its ledgers
        scale by ``rows``.  Lane-cycles conserve exactly:
        ``makespan * rows * cols * lanes``.
        """
        cfg = self.config
        cols, steps = col_cycles.shape
        lanes = cfg.pe.lanes
        ledger = LaneLedger(
            useful=float(schedule.useful.sum()) * rows,
            no_term=float(schedule.no_term.sum()) * rows,
            shift_range=float(schedule.shift_stall.sum()) * rows,
        )
        # Waiting on the shared exponent block (the 2-cycle group floor).
        ledger.exponent = float(exp_stall.sum()) * rows * lanes
        # Cross-column waits on broadcast B sets, plus columns idling
        # while the slowest column drains the strip.
        cross_wait = float(cross_idle.sum())
        drain = float((makespan - finish[:, -1]).sum())
        ledger.inter_pe = (cross_wait + drain) * rows * lanes
        terms = TermLedger(
            processed=float(schedule.terms_processed.sum()) * rows,
            zero_skipped=float(schedule.terms_zero_skipped.sum()) * rows,
            ob_skipped=float(schedule.terms_ob_skipped.sum()) * rows,
        )
        counters = SimCounters(
            cycles=float(makespan),
            groups=float(rows * cols * steps),
            macs=float(rows * cols * steps * lanes),
            lanes=ledger,
            terms=terms,
            exponent_invocations=float(rows * cols * steps),
            accumulator_updates=float(rows * cols * steps),
        )
        return counters
