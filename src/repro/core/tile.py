"""FPRaker tile simulation: PEs under shared-operand synchronization.

A tile (paper Fig 8) is a grid of ``rows x cols`` PEs:

* each **column** streams one serial-side (A) operand set, expanded once
  by term encoders shared down the column -- every PE of the column must
  finish the current A group before the column advances;
* each **row** broadcasts one parallel-side (B) operand set to all
  columns -- per-PE B buffers of depth ``N`` allow a column to run ahead
  of the slowest column by at most ``N`` groups;
* each **pair of PEs in a column** shares one exponent block, making two
  cycles the minimum cost of a group;
* OB signals of a lane are synchronized down the column.

The simulator consumes one "strip" of work: ``steps`` consecutive
reduction groups for every PE, with the accumulator exponent evolving as
the reduction proceeds (which is what the out-of-bounds mechanism keys
off).  Results are expressed per column-step so the accelerator level
can scale them to full layers.

Two engines produce those results:

* :meth:`TileSimulator.simulate_strip` -- the original single-strip
  reference, operating on ``[col, step]`` arrays;
* :meth:`TileSimulator.simulate_strips` -- the batched engine, operating
  on ``[strip, col, step]`` stacks so one numpy pass covers every
  sampled strip of a layer-phase.  It is required to be bit-identical to
  running the reference per strip (cross-checked in the test suite the
  same way the vectorized schedule is cross-checked against the scalar
  PE), which is why the reference is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import resolve_backend
from repro.core.config import TileConfig
from repro.core.schedule import (
    _K_SENTINEL,
    _K_SENTINEL16,
    _MAX_ALIGNMENT,
    ScheduleResult,
    group_term_weights,
    schedule_from_weights,
    schedule_from_weights_compact,
)
from repro.core.stats import LaneLedger, SimCounters, TermLedger
from repro.encoding.booth import bf16_exponents16, bf16_strip_fields
from repro.encoding.terms import MAX_TERMS, TERM_SLOTS

# Accumulator-exponent sentinel for an empty accumulator; far below any
# real bfloat16 product exponent but safe in int64 arithmetic.
_EACC_ZERO = -(1 << 40)

# The batched engine computes its offset arrays in int16 (4x less
# memory traffic than int64 over the [strip, row, col, step] stacks).
# Real alignment arithmetic fits easily: product exponents are in
# [-254, 256], accumulator exponents in [-1074, 1024], so offsets never
# exceed ~1400.  The huge sentinels of the reference path (+-1e9-scale)
# only ever act as "beyond every comparison"; the int16 stand-ins below
# sit beyond every *reachable* value, so each downstream clamp, compare
# and min/max resolves identically -- the property suite cross-checks
# this bit-for-bit against the serial reference.
_SENT16 = _K_SENTINEL16
# Stand-in for schedule._ZERO_ROUND_EXP: below the smallest live
# product exponent (-252), so it loses every max() a real product wins.
_EMAX_DEAD16 = np.int16(-300)
# Accumulator exponents clip here before the int16 cast.  Below -320 an
# exponent only produces offsets that clamp to zero (or lose the round
# max) exactly like the reference's -2^40 sentinel; above 1100 is
# unreachable for a float64 exponent.
_EACC_CLIP_LO = -320
_EACC_CLIP_HI = 1100
# "No surviving row" marker for the firing-offset scan: below every
# reachable alignment base (d >= _EMAX_DEAD16 - 256 > -600).
_DSTAR_NONE = np.int16(-1000)


@dataclass
class TileResult:
    """Outcome of simulating one strip on one tile.

    Attributes:
        makespan: cycles from first group issue to last group retire.
        steps: reduction groups simulated per PE.
        counters: aggregated work/stall ledger (lane-cycles sum to
            ``makespan * rows * cols * lanes``).
        cycles_per_step: makespan / steps -- the scaling quantity.
    """

    makespan: int
    steps: int
    counters: SimCounters

    @property
    def cycles_per_step(self) -> float:
        """Average cycles the tile needs per reduction group step."""
        return self.makespan / self.steps if self.steps else 0.0


@dataclass
class TileBatchResult:
    """Outcome of simulating a stack of strips in one batched pass.

    Attributes:
        makespans: int64 ``[strip]`` per-strip makespans.
        steps: reduction groups simulated per PE (same for all strips).
        counters: one :class:`SimCounters` per strip, bit-identical to
            what :meth:`TileSimulator.simulate_strip` produces for that
            strip alone.
    """

    makespans: np.ndarray
    steps: int
    counters: list[SimCounters]

    @property
    def strips(self) -> int:
        """Number of strips in the batch."""
        return int(self.makespans.size)

    @property
    def makespan(self) -> int:
        """Summed makespan over the batch (strips execute back to back)."""
        return int(self.makespans.sum())

    def strip_result(self, index: int) -> TileResult:
        """The single-strip view of one batch entry."""
        return TileResult(
            makespan=int(self.makespans[index]),
            steps=self.steps,
            counters=self.counters[index],
        )

    def counters_total(self) -> SimCounters:
        """Counters summed over the batch (strip order, like the serial
        accumulation loop)."""
        total = SimCounters()
        for item in self.counters:
            total.add(item)
        return total


def accumulator_exponents(
    a_chunks: np.ndarray,
    b_chunks: np.ndarray,
    initial_sum: np.ndarray | None = None,
) -> np.ndarray:
    """Evolve the per-PE accumulator exponent along the reduction.

    The OB mechanism compares term offsets against the *current*
    accumulator exponent.  The PE accumulates every product of an output
    into one higher-precision register (paper Section IV-A), so the
    register's exponent tracks the running partial sum of the *whole*
    reduction -- the chunk-based scheme of Sakr et al. governs which
    significand bits are retained, not the register's magnitude.  We
    emulate the running sum in float64 (exact at the exponent level) and
    read its exponent before every step.

    Args:
        a_chunks: serial operands ``[cols, steps, lanes]``, or a batched
            stack ``[strip, cols, steps, lanes]``.
        b_chunks: parallel operands ``[rows, steps, lanes]`` (or
            ``[strip, rows, steps, lanes]`` to match).
        initial_sum: optional warm-start partial sums ``[rows, cols]``
            (``[strip, rows, cols]`` when batched) for strips that sit
            in the middle of a long reduction.

    Returns:
        int64 ``[rows, cols, steps]`` accumulator exponents *entering*
        each step (``_EACC_ZERO`` where the running sum is still zero),
        with a leading strip axis when the inputs carried one.
    """
    batched = a_chunks.ndim == 4
    a = a_chunks if batched else a_chunks[None]
    b = b_chunks if batched else b_chunks[None]
    # partial[x, r, c, s] = sum_l a[x, c, s, l] * b[x, r, s, l]
    partial = np.einsum("xcsl,xrsl->xrcs", a, b)
    running = np.cumsum(partial, axis=3)
    if initial_sum is not None:
        init = initial_sum if batched else initial_sum[None]
        running = running + init[:, :, :, None]
        first = np.broadcast_to(
            init[:, :, :, None], running[:, :, :, :1].shape
        ).copy()
    else:
        first = np.zeros_like(running[:, :, :, :1])
    # Exponent entering step s is that of the sum over steps < s.  The
    # unbiased exponent is the float64 bit field minus its bias, which
    # matches frexp's (exp - 1) for every normal value; partial sums of
    # bfloat16 products (and normal-scale warm starts) are multiples of
    # ulps far above the denormal range, so the field is never zero for
    # a nonzero sum.
    entering = np.ascontiguousarray(
        np.concatenate([first, running[:, :, :, :-1]], axis=3)
    )
    field = (entering.view(np.uint64) >> np.uint64(52)) & np.uint64(0x7FF)
    eacc = np.where(
        entering != 0.0, field.astype(np.int64) - 1023, _EACC_ZERO
    )
    return eacc if batched else eacc[0]


class TileSimulator:
    """Cycle-level simulator of one FPRaker tile over a work strip.

    Args:
        config: tile geometry and PE parameters.
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry the
            batched engine's hot loops (compact schedule, column
            timeline) run through; bit-identical by contract, so the
            knob never changes results.  The serial reference engine
            stays pure numpy regardless.
    """

    def __init__(
        self,
        config: TileConfig | None = None,
        kernel_backend: str = "numpy",
    ) -> None:
        self.config = config if config is not None else TileConfig()
        self.kernel_backend = kernel_backend

    def simulate_strip(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        initial_sum: np.ndarray | None = None,
    ) -> TileResult:
        """Simulate ``steps`` reduction groups across the whole tile.

        Args:
            a_chunks: serial operands ``[cols, steps, lanes]``
                (bfloat16-representable; column ``c`` streams
                ``a_chunks[c]``).
            b_chunks: parallel operands ``[rows, steps, lanes]`` (row
                ``r`` broadcasts ``b_chunks[r]`` to every column).
            initial_sum: optional warm-start accumulator values
                ``[rows, cols]`` for strips sampled mid-reduction.

        Returns:
            The :class:`TileResult` for the strip.
        """
        cfg = self.config
        cols, steps, lanes = a_chunks.shape
        rows = b_chunks.shape[0]
        if cols != cfg.cols or rows != cfg.rows or lanes != cfg.pe.lanes:
            raise ValueError(
                f"strip shape ({rows}x{cols}, {lanes} lanes) does not match "
                f"tile config ({cfg.rows}x{cfg.cols}, {cfg.pe.lanes} lanes)"
            )
        eacc = accumulator_exponents(a_chunks, b_chunks, initial_sum)
        schedule = self._schedule_columns(a_chunks, b_chunks, eacc)
        column_sched = schedule.cycles.reshape(cols, steps)
        floor = cfg.pe.min_group_cycles
        col_cycles = np.maximum(column_sched, floor)
        exp_stall = np.maximum(floor - column_sched, 0)
        finish, cross_idle = self._column_timeline(col_cycles)
        makespan = int(finish[:, -1].max())
        counters = self._build_counters(
            schedule,
            col_cycles,
            exp_stall,
            cross_idle,
            finish,
            makespan,
            rows,
        )
        return TileResult(makespan=makespan, steps=steps, counters=counters)

    def simulate_strips(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        initial_sums: np.ndarray | None = None,
    ) -> TileBatchResult:
        """Simulate a stack of independent strips in one batched pass.

        Bit-identical to calling :meth:`simulate_strip` per strip (the
        serial reference), but every stage -- exponent evolution, term
        expansion, the schedule cycle loop, the column timeline -- runs
        once over ``[strip, col, step]`` arrays, so the numpy dispatch
        and the schedule loop's iteration count are paid once per batch
        instead of once per strip.

        Args:
            a_chunks: serial operands ``[strip, cols, steps, lanes]``.
            b_chunks: parallel operands ``[strip, rows, steps, lanes]``.
            initial_sums: optional warm-start accumulator values
                ``[strip, rows, cols]``.

        Returns:
            The :class:`TileBatchResult` with per-strip outcomes.
        """
        cfg = self.config
        if a_chunks.ndim != 4 or b_chunks.ndim != 4:
            raise ValueError("simulate_strips expects [strip, ...] stacks")
        strips, cols, steps, lanes = a_chunks.shape
        rows = b_chunks.shape[1]
        if strips == 0:
            raise ValueError("empty strip batch")
        if b_chunks.shape[0] != strips:
            raise ValueError(
                f"operand stacks disagree on strips "
                f"({strips} vs {b_chunks.shape[0]})"
            )
        if cols != cfg.cols or rows != cfg.rows or lanes != cfg.pe.lanes:
            raise ValueError(
                f"strip shape ({rows}x{cols}, {lanes} lanes) does not match "
                f"tile config ({cfg.rows}x{cfg.cols}, {cfg.pe.lanes} lanes)"
            )
        eacc = accumulator_exponents(a_chunks, b_chunks, initial_sums)
        schedule = self._schedule_strip_columns(a_chunks, b_chunks, eacc)
        column_sched = schedule.cycles  # [strip, cols, steps]
        floor = cfg.pe.min_group_cycles
        col_cycles = np.maximum(column_sched, floor)
        exp_stall = np.maximum(floor - column_sched, 0)
        finish, cross_idle = self._column_timeline_batch(col_cycles)
        makespans = finish[:, :, -1].max(axis=1)
        counters = self._build_counters_batch(
            schedule,
            col_cycles,
            exp_stall,
            cross_idle,
            finish,
            makespans,
            rows,
        )
        return TileBatchResult(
            makespans=makespans, steps=steps, counters=counters
        )

    def _schedule_columns(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        eacc: np.ndarray,
    ) -> ScheduleResult:
        """One schedule per (column, step): the column is the unit.

        The term encoders are shared down a column, so all of a column's
        PEs consume the same A-term stream in lockstep; per-row exponent
        differences shift each PE's alignment offsets, and the binding
        row (largest offset) gates when a term can fire within the shift
        window.  OB signals are synchronized down the column: a term is
        skipped only once *every* row agrees it is out of bounds, i.e.
        based on the smallest per-row offset.
        """
        rows = b_chunks.shape[0]
        cols, steps, lanes = a_chunks.shape
        a_groups = np.broadcast_to(
            a_chunks[None, :, :, :], (rows, cols, steps, lanes)
        ).reshape(-1, lanes)
        b_groups = np.broadcast_to(
            b_chunks[:, None, :, :], (rows, cols, steps, lanes)
        ).reshape(-1, lanes)
        cfg = self.config.pe
        k, kept, zero_slots, ob_skipped, _ = group_term_weights(
            a_groups, b_groups, eacc.reshape(-1), cfg
        )
        n_terms = k.shape[2]
        k = k.reshape(rows, cols * steps, lanes, n_terms)
        kept = kept.reshape(rows, cols * steps, lanes)
        zero_slots = zero_slots.reshape(rows, cols * steps, lanes)
        ob_skipped = ob_skipped.reshape(rows, cols * steps, lanes)
        # Firing is gated by the row needing the largest shift; skipping
        # by the row that still reaches the term (column-synchronized
        # OB).  A term already dropped in some row (sentinel offset) must
        # not block the others, so the firing offset ignores dropped rows
        # by construction: kept counts come from the per-column minimum
        # of dropped terms, and the offset stream keeps a term when any
        # row keeps it.
        col_ob = ob_skipped.min(axis=0)
        col_kept = kept.max(axis=0)
        k_live = np.where(k >= _K_SENTINEL, np.int64(-1), k)
        k_fire = k_live.max(axis=0)
        k_fire = np.where(k_fire < 0, _K_SENTINEL, k_fire)
        return schedule_from_weights(
            k_fire, col_kept, zero_slots[0], col_ob, cfg
        )

    def _schedule_strip_columns(
        self,
        a_chunks: np.ndarray,
        b_chunks: np.ndarray,
        eacc: np.ndarray,
    ) -> ScheduleResult:
        """Batched :meth:`_schedule_columns`: leading ``[strip]`` axis.

        Identical synchronization semantics -- firing gated by the row
        needing the largest shift, OB skipping by the row that still
        reaches the term (column-synchronized OB) -- computed without
        ever materializing the reference path's per-row term arrays.
        Every per-term quantity is a *monotone* function of the per-PE
        alignment base ``d = emax - ABe``: a term's clamped offset
        ``max(d + q, 0)`` grows with ``d``, so

        * the row keeping the most terms (the column's OB count) is
          exactly the row with the smallest ``d``;
        * the firing offset (largest offset among rows that still reach
          the term) is the clamp of the largest *surviving* ``d``.

        That turns the reference's per-row int64 term expansion into a
        ``[strip, row, col, step, lane]`` int16 base array plus term-axis
        work on the un-broadcast ``[strip, col, step, lane, term]``
        shape; the only row-by-term intermediate is the int16 masked
        operand of the ``dstar`` max-reduction, whose size callers bound
        by chunking oversized strip stacks
        (:data:`AcceleratorSimulator._MAX_STACK_ROWS`).  Everything is
        loop-free over rows.  The property suite cross-checks the result
        bit-for-bit against :meth:`_schedule_columns`.
        """
        strips, cols, steps, lanes = a_chunks.shape
        rows = b_chunks.shape[1]
        cfg = self.config.pe
        # One bit-pattern pass per operand side covers the exponent
        # adders' view and (for the serial side) the term expansion.
        a_exp, a_zero, count, q = bf16_strip_fields(a_chunks)
        b_exp, b_zero = bf16_exponents16(b_chunks)
        # [strip, row, col, step, lane]: product exponents per PE; dead
        # (zero x anything) pairs drop out of the round MAX.
        abe = a_exp[:, None, :, :, :] + b_exp[:, :, None, :, :]
        dead = a_zero[:, None, :, :, :] | b_zero[:, :, None, :, :]
        emax = np.where(dead, _EMAX_DEAD16, abe).max(axis=-1)
        eacc16 = np.clip(eacc, _EACC_CLIP_LO, _EACC_CLIP_HI).astype(np.int16)
        emax = np.maximum(emax, eacc16)
        # Alignment base of every PE lane; per-term offsets are
        # max(d + q, 0) with q the term's significand position.
        d = emax[..., None] - abe
        slot = np.arange(MAX_TERMS, dtype=np.int64)
        valid = slot < count[..., None]
        zero_slots = TERM_SLOTS - count
        threshold = cfg.accumulator.ob_threshold
        if cfg.ob_skip:
            # A term survives in row r iff max(d_r + q, 0) <= threshold,
            # i.e. (threshold >= 0) iff d_r <= threshold - q: the
            # smallest-d row keeps the most terms, and column-
            # synchronized OB skips exactly its out-of-bounds count.
            dmin = d.min(axis=1)
            col_ob = (valid & (dmin[..., None] > threshold - q)).sum(axis=-1)
            col_kept = count - col_ob
            # The firing offset is gated by the largest surviving base:
            # a masked max-reduction over the row axis (rows that exceed
            # the threshold drop to the "no survivor" sentinel, which
            # loses every max against a surviving base).
            limit = threshold - q
            surviving = np.where(
                d[:, :, :, :, :, None] <= limit[:, None], d[..., None], _DSTAR_NONE
            )
            dstar = surviving.max(axis=1)
            k_fire = np.where(
                valid & (dstar > _DSTAR_NONE),
                np.maximum(dstar + q, 0),
                _SENT16,
            )
        else:
            # No skipping: every row realizes every term, the binding
            # row is simply the largest base, saturated at the datapath
            # reach (max(d + q, 0) then min(.., cap) is monotone in d).
            col_ob = np.zeros((strips, cols, steps, lanes), dtype=np.int64)
            col_kept = count
            cap = (
                threshold + cfg.shift_window
                if cfg.saturate_shifts
                # int() keeps the minimum in int16 (the module constant
                # is an int64 scalar, which would promote the array).
                else int(_MAX_ALIGNMENT)
            )
            dmax = d.max(axis=1)
            k_fire = np.where(
                valid,
                np.minimum(np.maximum(dmax[..., None] + q, 0), cap),
                _SENT16,
            )
        # k_fire stays int16 end to end: the compact cycle loop treats
        # any >= _SENT16 entry as "no term", so no int64 widening pass
        # is needed between the schedule build and the loop.
        return schedule_from_weights_compact(
            k_fire, col_kept, zero_slots, col_ob, cfg,
            kernel_backend=self.kernel_backend,
        )

    def _column_timeline(
        self, col_cycles: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequence column steps under the B-broadcast buffer constraint.

        Args:
            col_cycles: ``[cols, steps]`` per-column group durations.

        Returns:
            ``(finish, cross_idle)``: completion time of every column
            step, and the idle cycles each column spent waiting for B
            sets held back by slower columns.
        """
        cols, steps = col_cycles.shape
        depth = self.config.buffer_depth
        finish = np.zeros((cols, steps), dtype=np.int64)
        cross_idle = np.zeros((cols, steps), dtype=np.int64)
        prev_finish = np.zeros(cols, dtype=np.int64)
        for s in range(steps):
            # B set s is released once every column consumed set s-depth.
            gate = int(finish[:, s - depth].max()) if s >= depth else 0
            start = np.maximum(prev_finish, gate)
            cross_idle[:, s] = start - prev_finish
            prev_finish = start + col_cycles[:, s]
            finish[:, s] = prev_finish
        return finish, cross_idle

    def _column_timeline_batch(
        self, col_cycles: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_column_timeline` over ``[strip, col, step]``.

        The step loop (each step's release gate depends on earlier
        finishes) runs through the kernel-backend layer: once over the
        whole batch, with every strip advancing in lockstep.
        """
        backend = resolve_backend(self.kernel_backend)
        return backend.column_timeline(col_cycles, self.config.buffer_depth)

    def _build_counters(
        self,
        schedule: ScheduleResult,
        col_cycles: np.ndarray,
        exp_stall: np.ndarray,
        cross_idle: np.ndarray,
        finish: np.ndarray,
        makespan: int,
        rows: int,
    ) -> SimCounters:
        """Aggregate lane-cycle and term ledgers for the strip.

        The schedule is per column-step; every one of the column's
        ``rows`` PEs mirrors it (shared term encoders), so its ledgers
        scale by ``rows``.  Lane-cycles conserve exactly:
        ``makespan * rows * cols * lanes``.
        """
        cfg = self.config
        cols, steps = col_cycles.shape
        lanes = cfg.pe.lanes
        ledger = LaneLedger(
            useful=float(schedule.useful.sum()) * rows,
            no_term=float(schedule.no_term.sum()) * rows,
            shift_range=float(schedule.shift_stall.sum()) * rows,
        )
        # Waiting on the shared exponent block (the 2-cycle group floor).
        ledger.exponent = float(exp_stall.sum()) * rows * lanes
        # Cross-column waits on broadcast B sets, plus columns idling
        # while the slowest column drains the strip.
        cross_wait = float(cross_idle.sum())
        drain = float((makespan - finish[:, -1]).sum())
        ledger.inter_pe = (cross_wait + drain) * rows * lanes
        terms = TermLedger(
            processed=float(schedule.terms_processed.sum()) * rows,
            zero_skipped=float(schedule.terms_zero_skipped.sum()) * rows,
            ob_skipped=float(schedule.terms_ob_skipped.sum()) * rows,
        )
        counters = SimCounters(
            cycles=float(makespan),
            groups=float(rows * cols * steps),
            macs=float(rows * cols * steps * lanes),
            lanes=ledger,
            terms=terms,
            exponent_invocations=float(rows * cols * steps),
            accumulator_updates=float(rows * cols * steps),
        )
        return counters

    def _build_counters_batch(
        self,
        schedule: ScheduleResult,
        col_cycles: np.ndarray,
        exp_stall: np.ndarray,
        cross_idle: np.ndarray,
        finish: np.ndarray,
        makespans: np.ndarray,
        rows: int,
    ) -> list[SimCounters]:
        """Batched :meth:`_build_counters`: one ledger set per strip.

        Every sum keeps the strip axis; the per-strip scalar arithmetic
        matches the serial builder operation for operation (int64 sums
        converted to float, then scaled), so the ledgers are
        bit-identical to the reference path.
        """
        cfg = self.config
        strips, cols, steps = col_cycles.shape
        lanes = cfg.pe.lanes
        group_axes = (1, 2, 3)
        useful = schedule.useful.sum(axis=group_axes)
        no_term = schedule.no_term.sum(axis=group_axes)
        shift = schedule.shift_stall.sum(axis=group_axes)
        processed = schedule.terms_processed.sum(axis=group_axes)
        zero_skipped = schedule.terms_zero_skipped.sum(axis=group_axes)
        ob_skipped = schedule.terms_ob_skipped.sum(axis=group_axes)
        exp_stalls = exp_stall.sum(axis=(1, 2))
        cross_waits = cross_idle.sum(axis=(1, 2))
        drains = (makespans[:, None] - finish[:, :, -1]).sum(axis=1)
        counters = []
        for i in range(strips):
            ledger = LaneLedger(
                useful=float(useful[i]) * rows,
                no_term=float(no_term[i]) * rows,
                shift_range=float(shift[i]) * rows,
            )
            # Waiting on the shared exponent block (the 2-cycle group
            # floor).
            ledger.exponent = float(exp_stalls[i]) * rows * lanes
            # Cross-column waits on broadcast B sets, plus columns idling
            # while the slowest column drains the strip.
            ledger.inter_pe = (
                float(cross_waits[i]) + float(drains[i])
            ) * rows * lanes
            terms = TermLedger(
                processed=float(processed[i]) * rows,
                zero_skipped=float(zero_skipped[i]) * rows,
                ob_skipped=float(ob_skipped[i]) * rows,
            )
            counters.append(
                SimCounters(
                    cycles=float(makespans[i]),
                    groups=float(rows * cols * steps),
                    macs=float(rows * cols * steps * lanes),
                    lanes=ledger,
                    terms=terms,
                    exponent_invocations=float(rows * cols * steps),
                    accumulator_updates=float(rows * cols * steps),
                )
            )
        return counters
