"""Workload descriptions consumed by the accelerator simulators.

A training step of a layer performs three matrix-style operations
(paper eqs. 1-3):

* ``A x W`` -- forward convolution / GEMM: ``Z = I . W``;
* ``G x W`` -- input-gradient backprop: ``dE/dI = W^T . dE/dZ``;
* ``A x G`` -- weight-gradient: ``dE/dW = I . dE/dZ``.

Each :class:`PhaseWorkload` carries the exact MAC/geometry bookkeeping of
one layer-phase plus *value samples* of the two participating tensors,
from which the simulator draws operand strips.  FPRaker may serialize
either tensor; the choice is made per layer and phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PHASES = ("AxW", "GxW", "AxG")


@dataclass(frozen=True)
class StreamSpec:
    """One operand or result stream of a layer-phase.

    The memory-traffic engine (:mod:`repro.memory.traffic`) turns these
    per-stream descriptions into container/burst schedules: container
    counts follow ``shape`` (padding included), global-buffer bank
    behavior follows ``stride_values``, and transposed streams occupy
    the 8x8 transposer units.

    Attributes:
        tensor: tensor letter ("A", "W" or "G") the stream carries.
        direction: ``"read"`` (DRAM/GB -> PEs) or ``"write"``
            (PEs -> GB/DRAM).
        volume_bytes: total stream volume moved on-chip (always paid,
            whether or not the tensor spills off-chip).
        dram_bytes: off-chip portion of the stream (0 when the tensor
            fits its global-buffer partition).
        shape: (channels, rows, columns) of one stored copy of the
            tensor, or None when no container geometry is known.
        copies: stored copies streamed (batch x folded layer count).
        stride_values: stride, in bfloat16 values, between consecutive
            global-buffer fetch addresses of the stream.
        transposed: stream passes through the 8x8 transposers (the
            backward pass's weight / activation-gradient reordering).
    """

    tensor: str
    direction: str
    volume_bytes: float
    dram_bytes: float = 0.0
    shape: tuple[int, int, int] | None = None
    copies: float = 1.0
    stride_values: int = 8
    transposed: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("read", "write"):
            raise ValueError(f"unknown direction {self.direction!r}")


@dataclass
class PhaseWorkload:
    """One layer-phase of training work.

    Attributes:
        model: model name (reporting only).
        layer: layer name (reporting only).
        phase: one of :data:`PHASES`.
        macs: total multiply-accumulate operations of this phase.
        reduction: reduction (dot-product) length per output element.
        tensor_a: name of the first tensor ("A", "W" or "G").
        tensor_b: name of the second tensor.
        values_a: value sample of the first tensor
            (bfloat16-representable float64 array).
        values_b: value sample of the second tensor.
        input_bytes: off-chip bytes read for this phase (uncompressed).
        output_bytes: off-chip bytes written (uncompressed).
        acc_frac_bits: optional per-layer accumulator fractional width
            (Sakr et al. profiling, Fig 21); None keeps the config's.
        weight: relative frequency weight when aggregating (e.g. when a
            sampled layer stands for several identical ones).
        streams: per-stream memory descriptions consumed by the
            hierarchy traffic engine; empty means "unknown geometry"
            and the engine falls back to byte totals.
    """

    model: str
    layer: str
    phase: str
    macs: int
    reduction: int
    tensor_a: str
    tensor_b: str
    values_a: np.ndarray
    values_b: np.ndarray
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    acc_frac_bits: int | None = None
    weight: float = 1.0
    streams: tuple[StreamSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; expected {PHASES}")
        if self.macs <= 0:
            raise ValueError(f"macs must be positive, got {self.macs}")
        if self.reduction <= 0:
            raise ValueError(f"reduction must be positive, got {self.reduction}")

    @property
    def total_bytes(self) -> float:
        """Total off-chip traffic of the phase (uncompressed)."""
        return self.input_bytes + self.output_bytes
