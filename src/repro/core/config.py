"""Configuration objects for the PE, tile, and accelerator (paper Table II).

The paper's evaluated configurations:

=====================  ===========  =========
parameter              FPRaker      Baseline
=====================  ===========  =========
tile geometry          8 x 8 PEs    8 x 8 PEs
tiles                  36           8
total PEs              2304         512
MAC lanes per PE       8            8 (bit-parallel bfloat16)
peak MACs/cycle        --           4096
scratchpads            2 KB each    2 KB each
global buffer          4 MB x 9 banks
off-chip DRAM          16 GB 4-channel LPDDR4-3200
clock                  600 MHz      600 MHz
=====================  ===========  =========

The 36-vs-8 tile counts implement the iso-compute-area comparison: one
FPRaker tile occupies 22 % of the baseline tile's post-layout compute
area, so 36 FPRaker tiles fit in the area of 8 baseline tiles
(36 x 0.22 ~= 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Mapping

from repro.fp.accumulator import AccumulatorSpec


@dataclass(frozen=True)
class PEConfig:
    """FPRaker processing-element parameters.

    Attributes:
        lanes: concurrent MAC lanes per PE (paper: 8).
        shift_window: maximum difference among per-lane alignment offsets
            handled in one cycle (paper: 3); lanes farther than this from
            the round's base stall.
        ob_skip: skip out-of-bounds terms (and everything after them in
            the same value) -- the "OBS" mechanism of Fig 16.
        accumulator: extended accumulator geometry; its ``frac_bits`` is
            the OB threshold.
        exponent_sharing: PEs sharing one exponent block (paper: 2),
            which makes 2 cycles the minimum cost of a group.
        saturate_shifts: when OB skipping is off, terms beyond the
            accumulator's reach shed all their bits into the sticky
            position and stop serializing the base walk (FPRaker's
            narrow datapath).  Bit-Pragmatic-FP sets this False: its
            full-width shifters and wide accumulator force it to walk
            the whole alignment range -- which is also what makes its
            PE 2.5x the size.
    """

    lanes: int = 8
    shift_window: int = 3
    ob_skip: bool = True
    accumulator: AccumulatorSpec = field(default_factory=AccumulatorSpec)
    exponent_sharing: int = 2
    saturate_shifts: bool = True

    @property
    def min_group_cycles(self) -> int:
        """Minimum cycles per group of 8 A values (exponent-block bound)."""
        return max(1, self.exponent_sharing)


@dataclass(frozen=True)
class TileConfig:
    """FPRaker tile geometry.

    Attributes:
        rows: PE rows; each row receives a distinct B (parallel-side)
            vector, e.g. one filter (paper: 8; Fig 19 sweeps 2..16).
        cols: PE columns; each column receives a distinct A (serial-side)
            vector, e.g. one window, with its term encoders shared down
            the column (paper: 8).
        buffer_depth: per-PE B-side buffers beyond the working set,
            letting a column run ahead of the slowest column by at most
            this many groups (the paper adds such buffers and reports
            one set of run-ahead suffices; with the working register
            that bounds the skew at two sets).
        pe: per-PE parameters.
    """

    rows: int = 8
    cols: int = 8
    buffer_depth: int = 2
    pe: PEConfig = field(default_factory=PEConfig)

    @property
    def pes(self) -> int:
        """PEs per tile."""
        return self.rows * self.cols

    @property
    def macs_per_group_step(self) -> int:
        """MACs retired by the tile per group step (all PEs, all lanes)."""
        return self.pes * self.pe.lanes


@dataclass(frozen=True)
class AcceleratorConfig:
    """Whole-accelerator configuration (paper Table II).

    Attributes:
        name: label used in reports.
        tiles: tile count (36 FPRaker / 8 baseline at iso compute area).
        tile: tile geometry.
        clock_mhz: clock frequency (both designs: 600 MHz).
        serial_side_selection: ``"auto"`` picks the tensor with fewer
            average terms per layer and phase as the serial side (the
            paper's per-layer choice); ``"a"``/``"b"`` force a side.
        base_delta_compression: compress exponents off-chip (Fig 10/11).
    """

    name: str = "fpraker"
    tiles: int = 36
    tile: TileConfig = field(default_factory=TileConfig)
    clock_mhz: float = 600.0
    serial_side_selection: str = "auto"
    base_delta_compression: bool = True

    @property
    def total_pes(self) -> int:
        """PEs across all tiles."""
        return self.tiles * self.tile.pes

    @property
    def peak_macs_per_cycle(self) -> int:
        """MAC issue slots per cycle across the accelerator."""
        return self.total_pes * self.tile.pe.lanes


def _config_from_mapping(
    cls: type,
    data: Any,
    path: str,
    nested: Mapping[str, Callable[[Any, str], Any]],
) -> Any:
    """Rebuild one (frozen) config dataclass from its ``asdict`` form.

    Args:
        cls: the dataclass to construct.
        data: the mapping to read fields from.
        path: dotted location for error messages (``"config.tile.pe"``).
        nested: per-field builders for sub-dataclass values.

    Returns:
        The constructed instance; omitted fields keep their defaults.

    Raises:
        ValueError: on a non-mapping value, an unknown field name, or a
            field value the dataclass rejects -- every message names the
            dotted path so wire-level callers can act on it.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{path} must be an object of {cls.__name__} fields, "
            f"got {type(data).__name__}"
        )
    names = [f.name for f in fields(cls)]
    unknown = sorted(set(data) - set(names))
    if unknown:
        raise ValueError(
            f"{path} has unknown field(s) {', '.join(map(repr, unknown))}; "
            f"known fields: {', '.join(names)}"
        )
    kwargs = {}
    for name in names:
        if name not in data:
            continue
        value = data[name]
        builder = nested.get(name)
        kwargs[name] = (
            builder(value, f"{path}.{name}") if builder is not None else value
        )
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path} is not a valid {cls.__name__}: {exc}")


def _accumulator_from_dict(data: Any, path: str) -> AccumulatorSpec:
    """AccumulatorSpec from its ``asdict`` form (see ``_config_from_mapping``)."""
    return _config_from_mapping(AccumulatorSpec, data, path, {})


def _pe_from_dict(data: Any, path: str) -> PEConfig:
    """PEConfig from its ``asdict`` form (see ``_config_from_mapping``)."""
    return _config_from_mapping(
        PEConfig, data, path, {"accumulator": _accumulator_from_dict}
    )


def _tile_from_dict(data: Any, path: str) -> TileConfig:
    """TileConfig from its ``asdict`` form (see ``_config_from_mapping``)."""
    return _config_from_mapping(TileConfig, data, path, {"pe": _pe_from_dict})


def accelerator_config_from_dict(data: Any) -> AcceleratorConfig:
    """Reconstruct an :class:`AcceleratorConfig` from its ``asdict`` form.

    The inverse of ``dataclasses.asdict`` over the nested config tree
    (accelerator -> tile -> PE -> accumulator), used by the wire format
    to accept explicit configurations over HTTP.  Round trip is exact:
    ``accelerator_config_from_dict(asdict(config)) == config`` for every
    constructible config, so canonical cache keys (which serialize the
    ``asdict`` tree) are preserved across the wire.

    Args:
        data: mapping as produced by ``dataclasses.asdict(config)``;
            omitted fields keep their dataclass defaults.

    Returns:
        The reconstructed configuration.

    Raises:
        ValueError: naming the dotted field path on any malformed input.
    """
    return _config_from_mapping(
        AcceleratorConfig, data, "config", {"tile": _tile_from_dict}
    )


def fpraker_paper_config(**overrides) -> AcceleratorConfig:
    """The paper's FPRaker configuration (Table II): 36 tiles of 8x8 PEs.

    Args:
        **overrides: replacements applied to the top-level config (e.g.
            ``tiles=...``) after construction.

    Returns:
        The configured :class:`AcceleratorConfig`.
    """
    config = AcceleratorConfig(
        name="fpraker",
        tiles=36,
        tile=TileConfig(rows=8, cols=8, buffer_depth=2, pe=PEConfig()),
    )
    return replace(config, **overrides) if overrides else config


def baseline_paper_config(**overrides) -> AcceleratorConfig:
    """The paper's bit-parallel baseline (Table II): 8 tiles, 4096 MACs/cycle.

    Args:
        **overrides: replacements applied after construction.

    Returns:
        The configured :class:`AcceleratorConfig`.
    """
    config = AcceleratorConfig(
        name="baseline",
        tiles=8,
        tile=TileConfig(rows=8, cols=8, buffer_depth=2, pe=PEConfig()),
        base_delta_compression=False,
    )
    return replace(config, **overrides) if overrides else config


def pragmatic_paper_config(**overrides) -> AcceleratorConfig:
    """Bit-Pragmatic converted to bfloat16 under iso compute area.

    The paper reports the bfloat16 Bit-Pragmatic PE is 2.5x smaller than
    the bit-parallel PE, so 20 tiles fit in the baseline's 8-tile compute
    area.  Pragmatic has no shift-window limit (full-width shifters, which
    is what makes it big) and no out-of-bounds skipping.

    Args:
        **overrides: replacements applied after construction.

    Returns:
        The configured :class:`AcceleratorConfig`.
    """
    # Bit-Pragmatic introduced the 2-stage shifting FPRaker adapts, so
    # it keeps the same per-cycle window; but it has no out-of-bounds
    # skipping and accumulates into a wide (fp32-like) register, so its
    # term walk only saturates at 24 fractional bits -- the wide
    # datapath that makes its PE 2.5x FPRaker's area.
    pe = PEConfig(
        shift_window=3,
        ob_skip=False,
        exponent_sharing=1,
        saturate_shifts=True,
        accumulator=AccumulatorSpec(frac_bits=23, int_bits=9),
    )
    config = AcceleratorConfig(
        name="pragmatic-fp",
        tiles=20,
        tile=TileConfig(rows=8, cols=8, buffer_depth=2, pe=pe),
        base_delta_compression=False,
    )
    return replace(config, **overrides) if overrides else config
