"""Whole-accelerator simulation: tiles x scheduler x memory roofline.

The simulator consumes :class:`repro.core.workload.PhaseWorkload` items
(one per layer and training phase), picks the serial side, simulates the
tile schedule over sampled operand strips -- drawn in one vectorized
call and simulated in one batched :meth:`TileSimulator.simulate_strips`
pass -- and scales the measured cycles-per-group to the phase's exact
MAC count.  Off-chip traffic is
checked against the LPDDR4 roofline (with exponent base-delta
compression when enabled), and activity counters feed the energy model.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.backends import KERNEL_BACKENDS
from repro.compression.base_delta import mean_compression_ratio
from repro.core.config import AcceleratorConfig, TileConfig, fpraker_paper_config
from repro.core.stats import SimCounters
from repro.core.tile import TileSimulator
from repro.core.workload import PhaseWorkload
from repro.encoding.booth import term_count
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.fp.accumulator import AccumulatorSpec
from repro.memory.dram import DRAMModel
from repro.memory.traffic import TRANSPOSERS_PER_TILE, phase_traffic


@dataclass
class LayerPhaseResult:
    """Simulation outcome of one layer-phase.

    Attributes:
        model: model name.
        layer: layer name.
        phase: training phase ("AxW", "GxW", "AxG").
        macs: MACs retired.
        serial_tensor: which tensor was streamed term-serially.
        compute_cycles: cycles if compute bound.
        dram_cycles: cycles if memory bound (after compression).
        cycles: the phase's cycles -- max of the two.
        counters: activity counters scaled to the full phase.
        dram_bytes: effective off-chip bytes (post-BDC when enabled).
        dram_bytes_raw: uncompressed off-chip bytes.
        energy: energy breakdown of the phase.
    """

    model: str
    layer: str
    phase: str
    macs: int
    serial_tensor: str
    compute_cycles: float
    dram_cycles: float
    cycles: float
    counters: SimCounters
    dram_bytes: float
    dram_bytes_raw: float
    energy: EnergyBreakdown

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "model": self.model,
            "layer": self.layer,
            "phase": self.phase,
            "macs": self.macs,
            "serial_tensor": self.serial_tensor,
            "compute_cycles": self.compute_cycles,
            "dram_cycles": self.dram_cycles,
            "cycles": self.cycles,
            "counters": self.counters.to_dict(),
            "dram_bytes": self.dram_bytes,
            "dram_bytes_raw": self.dram_bytes_raw,
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LayerPhaseResult":
        """Rebuild a phase result from :meth:`to_dict` output."""
        return cls(
            model=data["model"],
            layer=data["layer"],
            phase=data["phase"],
            macs=int(data["macs"]),
            serial_tensor=data["serial_tensor"],
            compute_cycles=float(data["compute_cycles"]),
            dram_cycles=float(data["dram_cycles"]),
            cycles=float(data["cycles"]),
            counters=SimCounters.from_dict(data["counters"]),
            dram_bytes=float(data["dram_bytes"]),
            dram_bytes_raw=float(data["dram_bytes_raw"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
        )


@dataclass
class WorkloadResult:
    """Aggregated simulation outcome over many layer-phases.

    Attributes:
        name: configuration name (e.g. "fpraker", "baseline").
        model: model name.
        phases: per-phase results.
    """

    name: str
    model: str
    phases: list[LayerPhaseResult] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        """Total cycles (phases execute back to back)."""
        return sum(p.cycles for p in self.phases)

    @property
    def macs(self) -> int:
        """Total MACs."""
        return sum(p.macs for p in self.phases)

    def cycles_of_phase(self, phase: str) -> float:
        """Total cycles of one training phase across layers."""
        return sum(p.cycles for p in self.phases if p.phase == phase)

    def macs_of_phase(self, phase: str) -> int:
        """Total MACs of one training phase across layers."""
        return sum(p.macs for p in self.phases if p.phase == phase)

    def counters_total(self) -> SimCounters:
        """Merged activity counters."""
        total = SimCounters()
        for p in self.phases:
            total.add(p.counters)
        return total

    def energy_total(self) -> EnergyBreakdown:
        """Merged energy breakdown."""
        from repro.energy.model import CoreEnergy

        total = EnergyBreakdown(core=CoreEnergy())
        for p in self.phases:
            total.add(p.energy)
        return total

    def speedup_vs(self, other: "WorkloadResult") -> float:
        """Cycle-count speedup of this run relative to ``other``."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def phase_speedup_vs(self, other: "WorkloadResult", phase: str) -> float:
        """Per-phase speedup relative to ``other``."""
        own = self.cycles_of_phase(phase)
        if own == 0:
            return float("inf")
        return other.cycles_of_phase(phase) / own

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "name": self.name,
            "model": self.model,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadResult":
        """Rebuild a workload result from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            model=data["model"],
            phases=[LayerPhaseResult.from_dict(p) for p in data["phases"]],
        )


def _sample_runs(
    values: np.ndarray,
    shape: tuple[int, int],
    lanes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample groups as *contiguous* runs of the value stream.

    The dataflow feeds a PE group 8 consecutive reduction elements
    (adjacent channels), which are spatially correlated -- their
    exponents cluster (paper Fig 6).  Sampling i.i.d. values would
    destroy that correlation and grossly overstate the intra-group
    exponent spread, so groups are drawn as contiguous slices of the
    generated (group-correlated) sample stream.

    Args:
        values: flat value stream (in streaming order).
        shape: leading dimensions of the result (e.g. (cols, steps)).
        lanes: run length (group size).
        rng: random generator.

    Returns:
        float64 array of shape ``shape + (lanes,)``.
    """
    if values.size == 0:
        # A fully-empty stream (e.g. a degenerate layer slice) yields
        # all-zero groups; tiling cannot grow an empty array.
        return np.zeros(tuple(shape) + (lanes,))
    if values.size < lanes:
        values = np.tile(values, -(-lanes // values.size) + 1)
    starts = rng.integers(0, values.size - lanes + 1, size=shape)
    return values[starts[..., None] + np.arange(lanes)]


def _sample_column_runs(
    values: np.ndarray,
    cols: int,
    steps: int,
    lanes: int,
    rng: np.random.Generator,
    strips: int | None = None,
) -> np.ndarray:
    """Sample the serial-side streams of a tile's columns.

    Columns process *neighboring* outputs (adjacent convolution windows
    or adjacent batch rows), so at any reduction step their serial
    operands come from overlapping or nearby regions of the same tensor
    -- their term counts are strongly correlated, which is why the
    paper's depth-1 B buffers suffice to hide cross-column skew.  Each
    step draws one random stream position shared by all columns, with a
    small per-column offset (the window stride).

    Args:
        values: flat value stream (streaming order).
        cols: tile columns.
        steps: reduction steps.
        lanes: group size.
        rng: random generator.
        strips: optional batch size; when given, every strip draws its
            own step positions in one vectorized call.

    Returns:
        float64 array ``[cols, steps, lanes]``, or
        ``[strips, cols, steps, lanes]`` when ``strips`` is given.
    """
    stride = 2
    span = lanes + stride * (cols - 1)
    shape = (steps,) if strips is None else (strips, steps)
    if values.size == 0:
        return np.zeros(shape[:-1] + (cols, steps, lanes))
    if values.size < span:
        values = np.tile(values, -(-span // values.size) + 1)
    starts = rng.integers(0, values.size - span + 1, size=shape)
    offsets = starts[..., None, :] + stride * np.arange(cols)[:, None]
    return values[offsets[..., None] + np.arange(lanes)]


def choose_serial_side(
    workload: PhaseWorkload, mode: str
) -> tuple[np.ndarray, np.ndarray, str]:
    """Pick which tensor streams term-serially.

    ``"auto"`` serializes the tensor with fewer average terms (more term
    sparsity means fewer cycles), which is the paper's per-layer,
    per-phase choice.

    Args:
        workload: the layer-phase.
        mode: ``"auto"``, ``"a"`` or ``"b"``.

    Returns:
        ``(serial_values, parallel_values, serial_tensor_name)``.
    """
    if mode == "a":
        return workload.values_a, workload.values_b, workload.tensor_a
    if mode == "b":
        return workload.values_b, workload.values_a, workload.tensor_b
    if mode != "auto":
        raise ValueError(f"unknown serial-side mode {mode!r}")
    # The auto choice depends only on the value streams, so it is
    # memoized on the workload object (array-identity guarded), letting
    # every configuration of a sweep share one term-count measurement.
    memo = getattr(workload, "_serial_side_memo", None)
    if (
        memo is not None
        and memo[0] is workload.values_a
        and memo[1] is workload.values_b
    ):
        serialize_a = memo[2]
    else:
        # An empty stream carries no terms at all: serializing it is
        # free.
        terms_a = (
            float(term_count(workload.values_a).mean())
            if workload.values_a.size
            else 0.0
        )
        terms_b = (
            float(term_count(workload.values_b).mean())
            if workload.values_b.size
            else 0.0
        )
        serialize_a = terms_a <= terms_b
        workload._serial_side_memo = (
            workload.values_a,
            workload.values_b,
            serialize_a,
        )
    if serialize_a:
        return workload.values_a, workload.values_b, workload.tensor_a
    return workload.values_b, workload.values_a, workload.tensor_b


@dataclass
class _PhasePrep:
    """Per-phase state between the operand draw and the tile engine.

    Splitting the phase simulation into prepare -> engine -> finish is
    what lets :meth:`AcceleratorSimulator.simulate_workload` stack many
    phases into one batched tile pass: every phase's operand draw stays
    exactly the per-phase RNG sequence of the unstacked path, only the
    engine invocation is shared.
    """

    workload: PhaseWorkload
    tile_cfg: TileConfig
    serial: np.ndarray
    parallel: np.ndarray
    serial_name: str
    steps: int
    a_stack: np.ndarray
    b_stack: np.ndarray
    initial_sums: np.ndarray | None

    @property
    def strips(self) -> int:
        """Sampled strips of this phase."""
        return int(self.a_stack.shape[0])


class AcceleratorSimulator:
    """FPRaker accelerator simulator (compute + memory roofline + energy).

    Args:
        config: accelerator configuration (defaults to the paper's
            36-tile FPRaker).
        energy: per-event energy model.
        dram: off-chip memory model.
        sample_strips: operand strips sampled per layer-phase.  The
            batched engine makes extra strips nearly free, so the
            default is 8 (twice the pre-batching default) for tighter
            sampling at lower cost than the old serial 4.
        sample_steps: reduction groups per strip (capped by the layer's
            actual reduction length).
        seed: RNG seed for operand sampling (results are deterministic).
        strip_engine: ``"batched"`` simulates all sampled strips in one
            :meth:`TileSimulator.simulate_strips` pass; ``"serial"``
            runs the per-strip reference loop.  Both consume the same
            operand draw and produce bit-identical results (cross-checked
            in the test suite).
        phase_stacking: when the batched engine is active,
            :meth:`simulate_workload` concatenates the strip stacks of
            every phase sharing a tile geometry and step count into one
            multi-phase :meth:`TileSimulator.simulate_strips` call
            (memory-bounded via :data:`_MAX_STACK_ROWS`), paying the
            numpy dispatch and schedule-loop overhead once per stack
            instead of once per phase.  Strips are independent, so the
            per-phase results are bit-identical to the unstacked path
            (cross-checked in the test suite); ``False`` keeps the
            one-call-per-phase behaviour.
        memory_engine: ``"roofline"`` (the reference) prices off-chip
            traffic as flat bytes-over-bandwidth; ``"hierarchy"`` runs
            the event-level traffic engine
            (:mod:`repro.memory.traffic`): container-granular DRAM
            bursts, global-buffer bank stalls, transposer occupancy,
            and scratchpad fills.  Compute cycles and activity counters
            are bit-identical between the two; only the memory-bound
            cycles (never below the roofline's), off-chip bytes, and
            on-chip energy can differ.
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            the batched tile engine's hot loops run through
            (``"numpy"`` default; ``"numba"`` falls back to numpy with
            a warning when the optional dependency is absent).  Every
            backend is bit-identical by contract, so the knob changes
            speed, never results.
    """

    # Stacked simulate_strips calls are capped at this many
    # (strip x row) units so the schedule's masked row-reduction
    # intermediates stay around ten megabytes; oversized phase groups
    # split into several calls.
    _MAX_STACK_ROWS = 256

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        energy: EnergyModel | None = None,
        dram: DRAMModel | None = None,
        sample_strips: int = 8,
        sample_steps: int = 32,
        seed: int = 1234,
        strip_engine: str = "batched",
        phase_stacking: bool = True,
        memory_engine: str = "roofline",
        kernel_backend: str = "numpy",
    ) -> None:
        if strip_engine not in ("batched", "serial"):
            raise ValueError(f"unknown strip engine {strip_engine!r}")
        if memory_engine not in ("roofline", "hierarchy"):
            raise ValueError(f"unknown memory engine {memory_engine!r}")
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {kernel_backend!r}")
        self.config = config if config is not None else fpraker_paper_config()
        self.energy = energy if energy is not None else EnergyModel()
        self.dram = dram if dram is not None else DRAMModel()
        self.sample_strips = sample_strips
        self.sample_steps = sample_steps
        self.seed = seed
        self.strip_engine = strip_engine
        self.phase_stacking = phase_stacking
        self.memory_engine = memory_engine
        self.kernel_backend = kernel_backend

    def _prepare_phase(self, workload: PhaseWorkload) -> _PhasePrep:
        """Draw one phase's operand strips (the per-phase RNG sequence)."""
        cfg = self.config
        tile_cfg = self._tile_config_for(workload)
        serial, parallel, serial_name = choose_serial_side(
            workload, cfg.serial_side_selection
        )
        tag = f"{workload.model}/{workload.layer}/{workload.phase}".encode()
        rng = np.random.default_rng((self.seed, zlib.crc32(tag)))
        steps = max(1, min(self.sample_steps, workload.reduction // tile_cfg.pe.lanes))
        # PhaseWorkload's contract makes both value streams
        # bfloat16-exact already, and bf16 quantization is idempotent,
        # so the former re-quantization pass here was a no-op by
        # construction.
        serial_flat = np.asarray(serial, dtype=np.float64).ravel()
        parallel_flat = np.asarray(parallel, dtype=np.float64).ravel()
        # A strip usually sits in the middle of a long reduction: the
        # accumulator already holds the earlier products' sum, whose
        # random-walk growth (~ sqrt(n) times the product deviation)
        # raises the register exponent the OB mechanism keys off.
        product_std = (
            float(serial_flat.std() * parallel_flat.std())
            if serial_flat.size and parallel_flat.size
            else 0.0
        )
        strips = self.sample_strips
        # One vectorized draw covers every strip: the batched engine
        # then simulates the whole stack in a single pass.
        a_stack = _sample_column_runs(
            serial_flat,
            tile_cfg.cols,
            steps,
            tile_cfg.pe.lanes,
            rng,
            strips=strips,
        )
        b_stack = _sample_runs(
            parallel_flat,
            (strips, tile_cfg.rows, steps),
            tile_cfg.pe.lanes,
            rng,
        )
        prior_macs = rng.integers(
            0,
            max(1, workload.reduction - steps * tile_cfg.pe.lanes),
            size=strips,
        )
        if product_std > 0.0:
            # One draw per (strip, row) pair (filter): adjacent columns
            # accumulate overlapping windows, so their partial sums
            # track each other closely.  A strip at the reduction's very
            # start (prior_macs == 0) gets scale 0, i.e. a cold
            # accumulator.
            scale = product_std * np.sqrt(prior_macs.astype(np.float64))
            per_row = rng.normal(
                0.0, scale[:, None, None], (strips, tile_cfg.rows, 1)
            )
            initial_sums = np.broadcast_to(
                per_row, (strips, tile_cfg.rows, tile_cfg.cols)
            ).copy()
        else:
            initial_sums = None
        return _PhasePrep(
            workload=workload,
            tile_cfg=tile_cfg,
            serial=serial,
            parallel=parallel,
            serial_name=serial_name,
            steps=steps,
            a_stack=a_stack,
            b_stack=b_stack,
            initial_sums=initial_sums,
        )

    def simulate_phase(self, workload: PhaseWorkload) -> LayerPhaseResult:
        """Simulate one layer-phase and scale to its full MAC count.

        Args:
            workload: the layer-phase description.

        Returns:
            The scaled :class:`LayerPhaseResult`.
        """
        prep = self._prepare_phase(workload)
        simulator = TileSimulator(
            prep.tile_cfg, kernel_backend=self.kernel_backend
        )
        if self.strip_engine == "serial":
            # Reference path: one strip at a time, identical operands.
            sampled = SimCounters()
            total_steps = 0
            total_makespan = 0
            for i in range(prep.strips):
                result = simulator.simulate_strip(
                    prep.a_stack[i],
                    prep.b_stack[i],
                    None if prep.initial_sums is None else prep.initial_sums[i],
                )
                sampled.add(result.counters)
                total_steps += result.steps
                total_makespan += result.makespan
        else:
            batch = simulator.simulate_strips(
                prep.a_stack, prep.b_stack, prep.initial_sums
            )
            sampled = batch.counters_total()
            total_steps = batch.steps * batch.strips
            total_makespan = batch.makespan
        return self._finish_phase(prep, sampled, total_steps, total_makespan)

    def _finish_phase(
        self,
        prep: _PhasePrep,
        sampled: SimCounters,
        total_steps: int,
        total_makespan: int,
    ) -> LayerPhaseResult:
        """Scale sampled tile counters to the phase and price memory."""
        cfg = self.config
        workload = prep.workload
        tile_cfg = prep.tile_cfg
        cycles_per_step = total_makespan / total_steps
        total_groups = workload.macs / tile_cfg.pe.lanes
        scale = total_groups / sampled.groups
        counters = SimCounters()
        counters.add(sampled, weight=scale)
        compute_cycles = (
            workload.macs
            * cycles_per_step
            / (cfg.tiles * tile_cfg.rows * tile_cfg.cols * tile_cfg.pe.lanes)
        )
        counters.cycles = compute_cycles
        dram_bytes_raw = workload.total_bytes
        dram_bytes = self._effective_dram_bytes(workload, prep.serial, prep.parallel)
        dram_cycles = self.dram.transfer_cycles(dram_bytes, cfg.clock_mhz)
        if self.memory_engine == "hierarchy":
            # Event-level path: same compute counters, but the
            # memory-bound cycles come from container bursts, bank
            # stalls, and transposer occupancy.  Container padding only
            # adds bytes, so hierarchy cycles are >= the roofline's.
            ratio = dram_bytes / dram_bytes_raw if dram_bytes_raw else 1.0
            traffic = phase_traffic(
                workload,
                dram=self.dram,
                clock_mhz=cfg.clock_mhz,
                transposer_units=cfg.tiles * TRANSPOSERS_PER_TILE,
                compression_ratio=ratio,
            )
            counters.memory = traffic
            dram_bytes = traffic.dram_bytes
            dram_cycles = traffic.memory_cycles
        cycles = max(compute_cycles, dram_cycles)
        energy = self._phase_energy(workload, counters, dram_bytes, tile_cfg)
        return LayerPhaseResult(
            model=workload.model,
            layer=workload.layer,
            phase=workload.phase,
            macs=workload.macs,
            serial_tensor=prep.serial_name,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            cycles=cycles,
            counters=counters,
            dram_bytes=dram_bytes,
            dram_bytes_raw=dram_bytes_raw,
            energy=energy,
        )

    def simulate_workload(
        self, workloads: list[PhaseWorkload], model: str = ""
    ) -> WorkloadResult:
        """Simulate a full list of layer-phases.

        Under the batched engine with ``phase_stacking`` (the default),
        phases sharing a tile geometry and step count run as one
        multi-phase strip stack -- bit-identical to simulating each
        phase alone, since strips are independent.

        Args:
            workloads: layer-phases of one model's training step.
            model: model name for the report (defaults to the first
                workload's).

        Returns:
            The aggregated :class:`WorkloadResult`.
        """
        if not workloads:
            raise ValueError("empty workload list")
        result = WorkloadResult(
            name=self.config.name,
            model=model or workloads[0].model,
        )
        if self.strip_engine != "batched" or not self.phase_stacking:
            for workload in workloads:
                result.phases.append(self.simulate_phase(workload))
            return result
        preps = [self._prepare_phase(workload) for workload in workloads]
        # Group phase indices by (tile geometry, steps): stacks must
        # agree on every strip dimension.  TileConfig is frozen, hence
        # hashable.
        groups: dict[tuple, list[int]] = {}
        for index, prep in enumerate(preps):
            groups.setdefault((prep.tile_cfg, prep.steps), []).append(index)
        phases: list[LayerPhaseResult | None] = [None] * len(preps)
        for (tile_cfg, _), indices in groups.items():
            simulator = TileSimulator(
                tile_cfg, kernel_backend=self.kernel_backend
            )
            per_call = max(
                1, self._MAX_STACK_ROWS // max(1, self.sample_strips * tile_cfg.rows)
            )
            for start in range(0, len(indices), per_call):
                chunk = indices[start : start + per_call]
                for index, prep, sampled, steps, makespan in self._run_stack(
                    simulator, [(i, preps[i]) for i in chunk]
                ):
                    phases[index] = self._finish_phase(
                        prep, sampled, steps, makespan
                    )
        result.phases = phases
        return result

    def _run_stack(
        self,
        simulator: TileSimulator,
        chunk: list[tuple[int, _PhasePrep]],
    ):
        """Run one stacked simulate_strips call and split it per phase.

        Yields ``(index, prep, sampled, total_steps, total_makespan)``
        per phase, with ``sampled`` accumulated in the phase's strip
        order -- the exact accumulation of the unstacked batched path.
        """
        a = np.concatenate([prep.a_stack for _, prep in chunk])
        b = np.concatenate([prep.b_stack for _, prep in chunk])
        if all(prep.initial_sums is None for _, prep in chunk):
            initial_sums = None
        else:
            # A zero warm start is bit-equivalent to no warm start:
            # adding 0.0 preserves every partial sum exactly and the
            # zero/nonzero exponent masking is sign-insensitive.
            initial_sums = np.concatenate(
                [
                    prep.initial_sums
                    if prep.initial_sums is not None
                    else np.zeros(
                        (prep.strips,) + prep.b_stack.shape[1:2] + (
                            prep.a_stack.shape[1],
                        )
                    )
                    for _, prep in chunk
                ]
            )
        batch = simulator.simulate_strips(a, b, initial_sums)
        offset = 0
        for index, prep in chunk:
            strips = prep.strips
            sampled = SimCounters()
            for counters in batch.counters[offset : offset + strips]:
                sampled.add(counters)
            makespan = int(batch.makespans[offset : offset + strips].sum())
            offset += strips
            yield index, prep, sampled, batch.steps * strips, makespan

    def _tile_config_for(self, workload: PhaseWorkload):
        """Tile config, honoring a per-layer accumulator width override."""
        tile_cfg = self.config.tile
        if workload.acc_frac_bits is None:
            return tile_cfg
        spec = AccumulatorSpec(
            frac_bits=workload.acc_frac_bits,
            int_bits=tile_cfg.pe.accumulator.int_bits,
            chunk_size=tile_cfg.pe.accumulator.chunk_size,
        )
        return replace(tile_cfg, pe=replace(tile_cfg.pe, accumulator=spec))

    def _effective_dram_bytes(
        self,
        workload: PhaseWorkload,
        serial: np.ndarray,
        parallel: np.ndarray,
    ) -> float:
        """Off-chip bytes after base-delta compression (when enabled).

        The compression ratio is a pure function of the two value
        streams, so it is memoized on the workload object (keyed by
        array identity: a replaced stream invalidates the memo).  The
        workload-reuse layer hands the same workload objects to every
        configuration of a sweep, which turns the per-config ratio
        measurements into one measurement per unique workload.
        """
        raw = workload.total_bytes
        if not self.config.base_delta_compression or raw == 0:
            return raw
        memo = getattr(workload, "_bdc_ratio_memo", None)
        if (
            memo is not None
            and memo[0] is workload.values_a
            and memo[1] is workload.values_b
        ):
            return raw * memo[2]
        # The mean over both streams is order-insensitive, so serial
        # and parallel sides of different configs share the value.
        ratio = mean_compression_ratio(serial, parallel)
        workload._bdc_ratio_memo = (workload.values_a, workload.values_b, ratio)
        return raw * ratio

    def _phase_energy(
        self,
        workload: PhaseWorkload,
        counters: SimCounters,
        dram_bytes: float,
        tile_cfg,
    ) -> EnergyBreakdown:
        """Energy breakdown of the phase from its activity counters."""
        core = self.energy.fpraker_core_energy(counters, lanes=tile_cfg.pe.lanes)
        on_chip_bytes = self._on_chip_bytes(workload, tile_cfg)
        on_chip = self.energy.on_chip_energy(on_chip_bytes)
        if counters.memory is not None:
            # The hierarchy engine tracks operand staging through the
            # per-tile scratchpads; those fills accrue on-chip energy
            # the roofline path cannot see.
            on_chip += self.energy.scratchpad_energy(
                counters.memory.scratchpad_bytes
            )
        return EnergyBreakdown(
            core=core,
            on_chip=on_chip,
            off_chip=self.energy.off_chip_energy(dram_bytes),
        )

    def _on_chip_bytes(self, workload: PhaseWorkload, tile_cfg) -> float:
        """Global-buffer traffic: operand broadcasts plus output writes."""
        operand_bytes = (
            workload.macs * 2.0 * (1.0 / tile_cfg.rows + 1.0 / tile_cfg.cols)
        )
        output_bytes = 2.0 * workload.macs / max(1, workload.reduction)
        return operand_bytes + output_bytes
