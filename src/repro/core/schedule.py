"""Vectorized cycle-schedule model of the FPRaker PE.

The functional model in :mod:`repro.core.pe` schedules one group at a
time with Python loops; this module simulates the *same* schedule for
many groups simultaneously using numpy, which is what makes
layer-scale performance simulation tractable.  The two implementations
are cross-checked against each other in the test suite.

A "group" is one set of up to 8 (A, B) operand pairs entering one PE:
the A significands expand into canonical signed-power-of-two terms, each
term's alignment offset ``k`` is its shift distance below the round's
maximum exponent, and the schedule fires terms MSB-first under the
shift-window constraint (paper Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import resolve_backend
from repro.core.config import PEConfig
from repro.encoding.booth import term_positions
from repro.encoding.terms import MAX_TERMS, TERM_SLOTS
from repro.fp.accumulator import ZERO_EXP

_BF16_FRAC = 7
_ZERO_OPERAND_EXP = -127

# Round exponent of a group with no live (nonzero x nonzero) lane; the
# scalar PE returns the same sentinel, keeping the two models bit-equal.
_ZERO_ROUND_EXP = np.int64(ZERO_EXP)

# Sentinel offset for padded / skipped term slots: far beyond any real
# alignment offset, so it never wins a min().
_K_SENTINEL = np.int64(1 << 30)

# int16 stand-in used by the batched tile schedule: real offsets never
# exceed the saturation caps (tens), so anything at or beyond this acts
# as "no term" in every comparison, exactly like _K_SENTINEL does for
# the int64 reference path.
_K_SENTINEL16 = np.int16(1 << 12)

# Largest alignment walk any datapath realizes: beyond the widest
# accumulator every contribution is zero, and a real design clamps its
# shift-distance arithmetic there.
_MAX_ALIGNMENT = np.int64(48)


@dataclass
class ScheduleResult:
    """Vectorized schedule outcome for a batch of groups.

    All arrays are indexed ``[..., ]`` or ``[..., lane]``, where ``...``
    is whatever leading batch shape the operands carried -- a flat
    ``[group]`` axis for PE-level batches, ``[col, step]`` for one tile
    strip, ``[strip, col, step]`` for a batched strip stack.

    Attributes:
        cycles: schedule length per group (>= 1).
        useful: lane-cycles that fired a term.
        shift_stall: lane-cycles stalled on the shift window.
        no_term: lane-cycles idle with no terms left.
        terms_processed: terms fired per lane.
        terms_zero_skipped: bit-parallel slots never encoded per lane.
        terms_ob_skipped: terms skipped as out-of-bounds per lane.
    """

    cycles: np.ndarray
    useful: np.ndarray
    shift_stall: np.ndarray
    no_term: np.ndarray
    terms_processed: np.ndarray
    terms_zero_skipped: np.ndarray
    terms_ob_skipped: np.ndarray

    @property
    def groups(self) -> int:
        """Number of groups in the batch."""
        return int(self.cycles.size)

    def total_cycles(self) -> int:
        """Sum of schedule lengths (serial execution of the batch)."""
        return int(self.cycles.sum())


def operand_exponents_and_zero(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Exponents as the adders read them (zeros -> -127), plus zero mask.

    Reads the biased exponent field straight out of the float32 bit
    pattern (bfloat16 is its upper half): for bfloat16-exact inputs --
    no denormals by construction -- the field minus the bias is exactly
    the unbiased exponent :func:`repro.fp.softfloat.decompose` computes,
    and a zero value's all-zero field lands on the adders' -127 without
    a select.  This is several times cheaper than the frexp-based
    decomposition, which matters because every simulated strip pays it.

    Args:
        values: bfloat16-representable array.

    Returns:
        ``(exponents, is_zero)``: int64 and bool arrays of the same
        shape as ``values``.
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    field = (bits >> np.uint32(23)) & np.uint32(0xFF)
    exponents = field.astype(np.int64) + np.int64(_ZERO_OPERAND_EXP)
    return exponents, field == 0


def operand_exponents(values: np.ndarray) -> np.ndarray:
    """Unbiased exponents as the exponent adders read them (zeros -> -127).

    Args:
        values: bfloat16-representable array.

    Returns:
        int64 array of the same shape.
    """
    return operand_exponents_and_zero(values)[0]


def group_term_weights(
    a_values: np.ndarray,
    b_values: np.ndarray,
    eacc: np.ndarray | None,
    config: PEConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand a batch of groups into per-term alignment offsets.

    Args:
        a_values: serial-side operands, shape ``[..., lanes]`` with any
            leading batch shape, bfloat16-representable.
        b_values: parallel-side operands, same shape (only their
            exponents matter for timing).
        eacc: accumulator exponent per group (int64 of the leading
            batch shape), or None for zero accumulators.
        config: PE parameters (shift window, OB skipping, threshold).

    Returns:
        Tuple ``(k, kept, zero_slots, ob_skipped, emax)``:

        * ``k``: int64 ``[..., lanes, MAX_TERMS]`` ascending alignment
          offsets, ``_K_SENTINEL``-padded beyond ``kept``;
        * ``kept``: int64 ``[..., lanes]`` terms surviving OB skipping;
        * ``zero_slots``: int64 ``[..., lanes]`` never-encoded slots;
        * ``ob_skipped``: int64 ``[..., lanes]`` OB-discarded terms;
        * ``emax``: int64 ``[...]`` round maximum exponents.
    """
    a_exp, a_zero = operand_exponents_and_zero(a_values)
    b_exp, b_zero = operand_exponents_and_zero(b_values)
    abe = a_exp + b_exp
    # Zero pairs are masked out of the round MAX (the zero flag gates
    # the comparator), mirroring FPRakerPE._exponent_block: a zero
    # operand's -127 exponent field could otherwise outvote a genuinely
    # tiny product.  _ZERO_ROUND_EXP marks an all-zero round.
    live = ~(a_zero | b_zero)
    emax = np.where(live, abe, _ZERO_ROUND_EXP).max(axis=-1)
    if eacc is not None:
        emax = np.maximum(emax, np.asarray(eacc, dtype=np.int64))
    count, power, _ = term_positions(a_values)
    # k = (emax - ABe) + (7 - p); power is MSB-first so k ascends along
    # the term axis.  Clamped at 0: shift distances are unsigned, and a
    # zero-product lane (masked out of emax above) can sit above the
    # round base -- its terms clamp there, as in the scalar PE.
    k = (emax[..., None, None] - abe[..., None]) + (_BF16_FRAC - power)
    slot = np.arange(MAX_TERMS, dtype=np.int64)
    valid = slot < count[..., None]
    k = np.where(valid, np.maximum(k, 0), _K_SENTINEL)
    zero_slots = TERM_SLOTS - count
    threshold = config.accumulator.ob_threshold
    if config.ob_skip:
        out_of_bounds = valid & (k > threshold)
        ob_skipped = out_of_bounds.sum(axis=-1)
        kept = count - ob_skipped
        k = np.where(out_of_bounds, _K_SENTINEL, k)
    else:
        ob_skipped = np.zeros_like(count)
        kept = count
        if config.saturate_shifts:
            # Terms are still issued, but the offset arithmetic
            # saturates just past the accumulator's reach (the shift
            # distance is computed in narrow hardware): every farther
            # term's bits fall into the sticky position and the base
            # walk never exceeds threshold + window.
            k = np.where(
                valid, np.minimum(k, threshold + config.shift_window), k
            )
        else:
            # Wide-datapath designs (Pragmatic-FP) must realize the full
            # alignment; only the format's own range bounds the walk.
            k = np.where(valid, np.minimum(k, _MAX_ALIGNMENT), k)
    return k, kept, zero_slots, ob_skipped, emax


def schedule_groups(
    a_values: np.ndarray,
    b_values: np.ndarray,
    config: PEConfig | None = None,
    eacc: np.ndarray | None = None,
) -> ScheduleResult:
    """Simulate the PE schedule for a batch of independent groups.

    Args:
        a_values: serial-side operands ``[..., lanes]`` (any leading
            batch shape, e.g. ``[groups]`` or ``[strip, col, step]``).
        b_values: parallel-side operands, same shape.
        config: PE parameters (defaults to the paper's).
        eacc: optional accumulator exponent per group (leading batch
            shape).

    Returns:
        The per-group :class:`ScheduleResult`.
    """
    config = config if config is not None else PEConfig()
    k, kept, zero_slots, ob_skipped, _ = group_term_weights(
        a_values, b_values, eacc, config
    )
    return schedule_from_weights(k, kept, zero_slots, ob_skipped, config)


def schedule_from_weights(
    k: np.ndarray,
    kept: np.ndarray,
    zero_slots: np.ndarray,
    ob_skipped: np.ndarray,
    config: PEConfig,
) -> ScheduleResult:
    """Run the cycle loop over pre-expanded term offsets.

    Groups are scheduled independently, so any leading batch shape
    (``[groups]``, ``[col, step]``, ``[strip, col, step]``...) is
    accepted; the loop runs over the flattened batch and the result
    arrays come back in the leading shape.  Batching strips this way is
    what makes the tile-level engine fast: the cycle loop's iteration
    count is the *maximum* schedule length over the batch, not the sum.

    Args:
        k: ``[..., lanes, MAX_TERMS]`` ascending offsets, sentinel
            padded.
        kept: ``[..., lanes]`` surviving term counts.
        zero_slots: ``[..., lanes]`` never-encoded slots.
        ob_skipped: ``[..., lanes]`` OB-discarded terms.
        config: PE parameters (shift window).

    Returns:
        The per-group :class:`ScheduleResult` in the leading shape.
    """
    batch_shape = k.shape[:-2]
    lanes, n_terms = k.shape[-2], k.shape[-1]
    k = k.reshape(-1, lanes, n_terms)
    kept = kept.reshape(-1, lanes)
    groups = k.shape[0]
    index = np.zeros((groups, lanes), dtype=np.int64)
    useful = np.zeros((groups, lanes), dtype=np.int64)
    shift_stall = np.zeros((groups, lanes), dtype=np.int64)
    no_term = np.zeros((groups, lanes), dtype=np.int64)
    cycles = np.zeros(groups, dtype=np.int64)
    window = config.shift_window
    # Each iteration fires at least one term in every active group, so
    # the loop runs at most max total kept terms per group times.
    while True:
        pending = index < kept
        group_active = pending.any(axis=1)
        if not group_active.any():
            break
        current = np.take_along_axis(
            k, np.minimum(index, k.shape[2] - 1)[:, :, None], axis=2
        )[:, :, 0]
        current = np.where(pending, current, _K_SENTINEL)
        base = current.min(axis=1)
        fire = pending & (current - base[:, None] <= window)
        useful += fire
        index += fire
        active_col = group_active[:, None]
        shift_stall += (pending & ~fire) & active_col
        no_term += (~pending) & active_col
        cycles += group_active
    # A group with no terms at all still costs its one exponent cycle,
    # with every lane idle.
    empty = cycles == 0
    if empty.any():
        cycles = np.where(empty, 1, cycles)
        no_term += empty[:, None].astype(np.int64)
    lane_shape = batch_shape + (lanes,)
    return ScheduleResult(
        cycles=cycles.reshape(batch_shape),
        useful=useful.reshape(lane_shape),
        shift_stall=shift_stall.reshape(lane_shape),
        no_term=no_term.reshape(lane_shape),
        terms_processed=kept.reshape(lane_shape),
        terms_zero_skipped=zero_slots.reshape(lane_shape),
        terms_ob_skipped=ob_skipped.reshape(lane_shape),
    )


def schedule_from_weights_compact(
    k: np.ndarray,
    kept: np.ndarray,
    zero_slots: np.ndarray,
    ob_skipped: np.ndarray,
    config: PEConfig,
    kernel_backend: str = "numpy",
) -> ScheduleResult:
    """Compacting variant of :func:`schedule_from_weights`.

    Bit-identical per-group results (the cross-check suite enforces it),
    but groups are *evicted* from the working set the cycle after they
    retire their last term, so each iteration's numpy work shrinks with
    the surviving population: total work is the sum of per-group
    schedule lengths rather than (iterations x batch size).  This is the
    loop behind the batched strip engine, where a whole
    ``[strip, col, step]`` stack shares one working set.

    ``k`` may be int16 (sentinel :data:`_K_SENTINEL16`) or int64
    (sentinel :data:`_K_SENTINEL`): the loop's gathers and compares run
    in the given dtype, which halves the hot loop's memory traffic for
    the batched engine's int16 offsets.

    The residual cycle loop (the groups the closed-form fast path below
    cannot answer) runs through the :mod:`repro.backends` kernel layer;
    every backend is bit-identical by contract, so the knob never
    changes results.

    Args:
        k: ``[..., lanes, MAX_TERMS]`` ascending offsets, sentinel
            padded.
        kept: ``[..., lanes]`` surviving term counts.
        zero_slots: ``[..., lanes]`` never-encoded slots.
        ob_skipped: ``[..., lanes]`` OB-discarded terms.
        config: PE parameters (shift window).
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            running the residual cycle loop.

    Returns:
        The per-group :class:`ScheduleResult` in the leading shape.
    """
    batch_shape = k.shape[:-2]
    lanes, n_terms = k.shape[-2], k.shape[-1]
    sentinel = _K_SENTINEL16 if k.dtype == np.int16 else _K_SENTINEL
    k_all = np.ascontiguousarray(k.reshape(-1, lanes, n_terms))
    kept_all = np.ascontiguousarray(kept.reshape(-1, lanes))
    groups = k_all.shape[0]
    cycles = np.zeros(groups, dtype=np.int64)
    useful = np.zeros((groups, lanes), dtype=np.int64)
    shift_stall = np.zeros((groups, lanes), dtype=np.int64)
    no_term = np.zeros((groups, lanes), dtype=np.int64)
    window = config.shift_window
    # Closed-form fast path: when every surviving offset of a group
    # lies within one shift window (its live span), each cycle's base
    # is within ``window`` of every pending head, so every pending lane
    # fires every cycle -- the schedule is simply "each lane fires its
    # kept terms back to back", in whatever order the slots hold (the
    # column-merged offsets need not ascend).  Live slots are the
    # prefix below ``kept``; the span is a masked min/max over them.
    # Empty groups (no terms anywhere) fall into this bucket with zero
    # cycles and are patched by the common no-term fix below, exactly
    # like the loop leaves them.  Typically over half the groups of a
    # real strip stack take this path, and the cycle loop below runs
    # on the remainder only.
    slot_live = np.arange(n_terms) < kept_all[:, :, None]
    kmin = np.where(slot_live, k_all, sentinel).min(axis=(1, 2))
    kmax = np.where(slot_live, k_all, k_all.dtype.type(-1)).max(axis=(1, 2))
    fast = kmax - kmin <= window
    fast_cycles = np.where(fast, kept_all.max(axis=1), 0)
    cycles = np.where(fast, fast_cycles, cycles)
    useful = np.where(fast[:, None], kept_all, useful)
    no_term = np.where(fast[:, None], fast_cycles[:, None] - kept_all, no_term)
    slow = np.flatnonzero(~fast)
    if slow.size:
        backend = resolve_backend(kernel_backend)
        s_cycles, s_useful, s_shift, s_no_term = backend.compact_cycle_loop(
            k_all[slow], kept_all[slow], window, sentinel
        )
        cycles[slow] = s_cycles
        useful[slow] = s_useful
        shift_stall[slow] = s_shift
        no_term[slow] = s_no_term
    # A group with no terms at all still costs its one exponent cycle,
    # with every lane idle.
    empty = cycles == 0
    if empty.any():
        cycles = np.where(empty, 1, cycles)
        no_term += empty[:, None].astype(np.int64)
    lane_shape = batch_shape + (lanes,)
    return ScheduleResult(
        cycles=cycles.reshape(batch_shape),
        useful=useful.reshape(lane_shape),
        shift_stall=shift_stall.reshape(lane_shape),
        no_term=no_term.reshape(lane_shape),
        terms_processed=kept.reshape(lane_shape),
        terms_zero_skipped=zero_slots.reshape(lane_shape),
        terms_ob_skipped=ob_skipped.reshape(lane_shape),
    )
