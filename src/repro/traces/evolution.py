"""Tensor statistics as a function of training progress (paper Fig 18).

The paper measures FPRaker's speedup across the whole training process
and sees three regimes:

* **VGG16**: speedup is higher for the first ~30 epochs, then declines
  about 15 % and plateaus -- activations/gradients densify (more terms)
  as features sharpen;
* **ResNet18-Q**: speedup *rises* about 12.5 % after epoch ~30 and
  stabilizes -- PACT's clipping hyperparameter settles and values really
  fit in 4 bits from then on;
* **everything else**: essentially flat.

``calibration_at(model, progress)`` reshapes the base calibration
accordingly; ``progress`` is the fraction of training completed.
Activation sparsity also ramps in over the first ~15 % of training for
the ReLU convnets (random initialization starts near half-dense).
"""

from __future__ import annotations

from dataclasses import replace

from repro.traces.calibration import (
    ModelCalibration,
    TensorStats,
    get_calibration,
)


def _ramp(progress: float, start: float, end: float, knee: float) -> float:
    """Linear ramp from ``start`` to ``end`` over ``[0, knee]`` progress."""
    if progress >= knee:
        return end
    return start + (end - start) * (progress / knee)


def _scale_terms(stats: TensorStats, factor: float) -> TensorStats:
    """Scale the mean term count, clipped to the feasible range."""
    return replace(
        stats,
        mean_terms_nonzero=min(max(stats.mean_terms_nonzero * factor, 1.05), 4.4),
    )


def _scale_sparsity(stats: TensorStats, factor: float) -> TensorStats:
    """Scale the zero fraction, clipped to [0, 0.98]."""
    return replace(
        stats, value_sparsity=min(max(stats.value_sparsity * factor, 0.0), 0.98)
    )


def calibration_at(model: str, progress: float) -> ModelCalibration:
    """Calibration of a model at a point in training.

    Args:
        model: Table I model name.
        progress: fraction of training completed, in [0, 1].

    Returns:
        The progress-adjusted :class:`ModelCalibration`.
    """
    if not 0.0 <= progress <= 1.0:
        raise ValueError(f"progress must be in [0, 1], got {progress}")
    base = get_calibration(model)
    activations, weights, gradients = (
        base.activations,
        base.weights,
        base.gradients,
    )
    convnets = (
        "SqueezeNet 1.1",
        "VGG16",
        "ResNet50-S2",
        "ResNet18-Q",
        "Detectron2",
        "AlexNet",
        "ResNet18",
    )
    if model in convnets:
        # ReLU sparsity develops early: random init is nearly half-dense.
        sparsity_factor = _ramp(progress, 0.6, 1.0, 0.15)
        activations = _scale_sparsity(activations, sparsity_factor)
        gradients = _scale_sparsity(gradients, sparsity_factor)
    if model == "VGG16":
        # Values densify as training converges: ~15 % more terms after
        # 30 % of training.
        term_factor = 1.0 if progress < 0.3 else _ramp(progress - 0.3, 1.0, 1.18, 0.1)
        activations = _scale_terms(activations, term_factor)
        gradients = _scale_terms(gradients, term_factor)
    if model == "ResNet18-Q":
        # PACT's clipping bound settles around epoch 30: before that the
        # values do not yet fit 4 bits.
        if progress < 0.3:
            loose = _ramp(progress, 1.55, 1.0, 0.3)
            activations = _scale_terms(activations, loose)
            weights = _scale_terms(weights, loose)
    return ModelCalibration(
        activations=activations, weights=weights, gradients=gradients
    )
