"""Assemble simulator workloads from the zoo and the calibrations."""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.workload import PHASES, PhaseWorkload, StreamSpec
from repro.memory.container import CONTAINER_SIDE
from repro.models.zoo import LayerShape, ModelSpec, get_model
from repro.traces.calibration import ModelCalibration
from repro.traces.evolution import calibration_at
from repro.traces.synthetic import generate_tensor
from repro.traces.workload_cache import (
    DEFAULT_WORKLOAD_CACHE,
    WorkloadCache,
    cache_for,
    tensor_key,
    workload_key,
)

# Tensor letters participating in each phase, (first, second).
PHASE_TENSORS = {
    "AxW": ("A", "W"),
    "GxW": ("G", "W"),
    "AxG": ("A", "G"),
}

# Global-buffer partition budgets (the paper's 4 MB x 9 banks, split over
# activation / gradient / weight partitions).  Tensors that fit stay
# on-chip and cause no DRAM traffic; tensors that spill stream off-chip
# (and get base-delta compressed on the way).
ACTIVATION_BUFFER_BYTES = 12 * 1024 * 1024
GRADIENT_BUFFER_BYTES = 12 * 1024 * 1024


def _tensor_geometry(layer: LayerShape, model: ModelSpec, tensor: str):
    """(shape, copies, fetch stride) of one stored tensor copy.

    Shapes follow the container layout's (channels, rows, columns)
    convention.  Conv activations/gradients are fetched walking the
    spatial dimension of a channel-major layout, so consecutive
    global-buffer accesses stride by the channel count; weights and
    fully-connected operands stream sequentially (stride = one
    8-value access line).
    """
    if tensor == "A":
        shape = (layer.in_channels, layer.in_h, layer.in_w)
        copies = float(model.batch * layer.count)
        stride = layer.in_channels if layer.kind == "conv" else 8
    elif tensor == "G":
        shape = (layer.out_channels, layer.out_h, layer.out_w)
        copies = float(model.batch * layer.count)
        stride = layer.out_channels if layer.kind == "conv" else 8
    elif tensor == "W":
        shape = (
            layer.in_channels,
            layer.kernel,
            layer.kernel * layer.out_channels,
        )
        copies = float(layer.count)
        stride = 8
    else:
        raise ValueError(f"unknown tensor {tensor!r}")
    return shape, copies, stride


def _stream(
    model: ModelSpec,
    layer: LayerShape,
    tensor: str,
    direction: str,
    volume: float,
    spills: bool,
    transposed: bool = False,
) -> StreamSpec:
    """One operand/result stream with its container geometry attached."""
    shape, copies, stride = _tensor_geometry(layer, model, tensor)
    return StreamSpec(
        tensor=tensor,
        direction=direction,
        volume_bytes=volume,
        dram_bytes=volume if spills else 0.0,
        shape=shape,
        copies=copies,
        # Transposed streams walk the stored layout across container
        # rows, one 32-value container row per step.
        stride_values=CONTAINER_SIDE if transposed else stride,
        transposed=transposed,
    )


def _phase_streams(
    model: ModelSpec, layer: LayerShape, phase: str
) -> tuple[StreamSpec, ...]:
    """Memory streams of one layer-phase, spill decisions applied.

    Traffic rules:

    * weights always stream from DRAM (the model store), and weight
      gradients stream back to it (the optimizer consumes them); the
      backward input-gradient pass reads the weights *transposed*
      through the 8x8 transposer units, as does the weight-gradient
      pass for the activation gradients (paper Section IV-E);
    * forward activations must persist until the backward pass, so they
      spill whenever the model's total activation footprint exceeds the
      activation partition -- the usual case for ImageNet-scale convnets
      at batch size 32, and the reason the paper compresses layer
      outputs before writing them off-chip;
    * activation gradients are transient (consumed by the next backward
      layer), so they spill only when a single layer's gradient exceeds
      the gradient partition.
    """
    spill_acts = model.total_activation_bytes > ACTIVATION_BUFFER_BYTES
    per_copy_out = layer.output_bytes(model.batch) / layer.count
    per_copy_in = layer.input_bytes(model.batch) / layer.count
    spill_grad_out = per_copy_out > GRADIENT_BUFFER_BYTES
    spill_grad_in = per_copy_in > GRADIENT_BUFFER_BYTES
    in_act = layer.input_bytes(model.batch)
    out_act = layer.output_bytes(model.batch)
    w_bytes = layer.weight_bytes()
    if phase == "AxW":
        return (
            _stream(model, layer, "A", "read", in_act, spill_acts),
            _stream(model, layer, "W", "read", w_bytes, True),
            _stream(model, layer, "G", "write", out_act, spill_acts),
        )
    if phase == "GxW":
        return (
            _stream(model, layer, "G", "read", out_act, spill_grad_out),
            _stream(model, layer, "W", "read", w_bytes, True, transposed=True),
            _stream(model, layer, "A", "write", in_act, spill_grad_in),
        )
    if phase == "AxG":
        return (
            _stream(model, layer, "A", "read", in_act, spill_acts),
            _stream(
                model, layer, "G", "read", out_act, spill_grad_out,
                transposed=True,
            ),
            _stream(model, layer, "W", "write", w_bytes, True),
        )
    raise ValueError(f"unknown phase {phase!r}")


def _stream_traffic(streams: tuple[StreamSpec, ...]) -> tuple[float, float]:
    """Off-chip (input_bytes, output_bytes) summed from a stream set."""
    input_bytes = sum(
        s.dram_bytes for s in streams if s.direction == "read"
    )
    output_bytes = sum(
        s.dram_bytes for s in streams if s.direction == "write"
    )
    return input_bytes, output_bytes


def build_phase_workload(
    model: ModelSpec,
    layer: LayerShape,
    phase: str,
    calibration: ModelCalibration,
    sample_size: int = 8192,
    seed: int = 0,
    acc_frac_bits: int | None = None,
    values: tuple[np.ndarray, np.ndarray] | None = None,
) -> PhaseWorkload:
    """Build one simulator workload for (layer, phase).

    Args:
        model: the model spec.
        layer: the layer shape.
        phase: training phase.
        calibration: tensor statistics to draw from.
        sample_size: values sampled per tensor.
        seed: RNG seed.
        acc_frac_bits: optional per-layer accumulator width.
        values: optional pre-generated ``(values_a, values_b)`` pair
            (a workload-cache hit); skips the tensor generation.

    Returns:
        The :class:`PhaseWorkload`.
    """
    if phase not in PHASES:
        raise ValueError(f"unknown phase {phase!r}")
    tensor_a, tensor_b = PHASE_TENSORS[phase]
    macs = layer.phase_macs(phase, model.batch)
    reduction = layer.phase_reduction(phase, model.batch)
    streams = _phase_streams(model, layer, phase)
    input_bytes, output_bytes = _stream_traffic(streams)
    if values is None:
        tag = f"{model.name}/{layer.name}/{phase}".encode()
        rng = np.random.default_rng((seed, zlib.crc32(tag)))
        values_a = generate_tensor(
            calibration.for_tensor(tensor_a), sample_size, rng
        )
        values_b = generate_tensor(
            calibration.for_tensor(tensor_b), sample_size, rng
        )
    else:
        values_a, values_b = values
    return PhaseWorkload(
        model=model.name,
        layer=layer.name,
        phase=phase,
        macs=macs,
        reduction=reduction,
        tensor_a=tensor_a,
        tensor_b=tensor_b,
        values_a=values_a,
        values_b=values_b,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        acc_frac_bits=acc_frac_bits,
        streams=streams,
    )


def build_workloads(
    model_name: str,
    progress: float = 0.5,
    phases: tuple[str, ...] = PHASES,
    sample_size: int = 8192,
    seed: int = 0,
    acc_profile: dict[str, int] | None = None,
    cache: "WorkloadCache | str | None" = "default",
) -> list[PhaseWorkload]:
    """Build the full training-step workload of a model.

    Builds are content-addressed (:mod:`repro.traces.workload_cache`):
    the key is deliberately config-independent, so every accelerator
    configuration of a sweep shares one build per model.  Cache hits
    return the same workload objects byte for byte -- treat them as
    immutable.

    Args:
        model_name: Table I model name.
        progress: training progress in [0, 1] (affects the statistics,
            paper Fig 18).
        phases: phases to include (default: all three).
        sample_size: values sampled per tensor per layer.
        seed: RNG seed.
        acc_profile: optional per-layer accumulator widths
            (``layer name -> frac bits``, paper Fig 21).
        cache: ``"default"`` uses the process-global in-memory cache; a
            :class:`WorkloadCache` or disk directory uses that; None
            forces a cold build.

    Returns:
        One :class:`PhaseWorkload` per (layer, phase).
    """
    resolved = (
        DEFAULT_WORKLOAD_CACHE if cache == "default" else cache_for(cache)
    )
    if resolved is None:
        return _build_workloads_cold(
            model_name, progress, phases, sample_size, seed, acc_profile
        )
    key = workload_key(
        model_name, progress, phases, sample_size, seed, acc_profile
    )
    hit = resolved.get(key)
    if hit is not None:
        return list(hit)
    disk_key = tensor_key(model_name, progress, phases, sample_size, seed)
    tensors = resolved.load_tensors(disk_key)
    if tensors is not None and len(tensors) == _n_phases(model_name, phases):
        workloads = _build_workloads_cold(
            model_name, progress, phases, sample_size, seed, acc_profile,
            tensors=tensors,
        )
    else:
        resolved.stats.builds += 1
        workloads = _build_workloads_cold(
            model_name, progress, phases, sample_size, seed, acc_profile
        )
        resolved.store_tensors(disk_key, workloads)
    resolved.put(key, workloads)
    return list(workloads)


def _n_phases(model_name: str, phases: tuple[str, ...]) -> int:
    """Number of (layer, phase) workloads a build produces."""
    return len(get_model(model_name).layers) * len(phases)


def _build_workloads_cold(
    model_name: str,
    progress: float,
    phases: tuple[str, ...],
    sample_size: int,
    seed: int,
    acc_profile: dict[str, int] | None,
    tensors: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> list[PhaseWorkload]:
    """The uncached build loop (optionally with pre-loaded tensors)."""
    model = get_model(model_name)
    calibration = calibration_at(model_name, progress)
    workloads = []
    index = 0
    for layer in model.layers:
        frac_bits = acc_profile.get(layer.name) if acc_profile else None
        for phase in phases:
            workloads.append(
                build_phase_workload(
                    model,
                    layer,
                    phase,
                    calibration,
                    sample_size=sample_size,
                    seed=seed,
                    acc_frac_bits=frac_bits,
                    values=tensors[index] if tensors is not None else None,
                )
            )
            index += 1
    return workloads
