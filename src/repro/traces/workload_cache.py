"""Content-addressed reuse of built workloads across configurations.

Sweeps like Fig 19 (four row-geometries plus the baseline per model) or
Fig 11 (four FPRaker variants plus the baseline) simulate the *same*
workloads under many accelerator configurations, yet the seed harness
rebuilt every tensor for every ``(model, config)`` pair.  Workload
construction is a pure function of ``(model, progress, seed, phases,
sample_size, acc_profile)`` -- deliberately **config-independent** -- so
this module keys built workloads on exactly that tuple:

* an **in-memory LRU** hands the same :class:`PhaseWorkload` objects to
  every configuration of a sweep (which also lets per-workload memos,
  e.g. the base-delta compression ratio, pay off across configs);
* an optional **on-disk store** (one ``.npz`` of stacked value arrays
  per key) lets worker processes and repeated CLI invocations share the
  generated tensors instead of re-running the Gibbs sampler.  The disk
  key drops ``acc_profile``: accumulator-width overrides change
  per-layer metadata, never the tensors.

Cache hits are byte-identical to cold builds (the test suite pins
this): the arrays round-trip float64 exactly, and the cheap geometry
fields are rebuilt deterministically from the zoo.

Treat cached workloads as immutable: mutating a returned workload's
arrays would leak into every later hit of the same key.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path

import numpy as np

WORKLOAD_CACHE_VERSION = 1


def workload_key(
    model: str,
    progress: float,
    phases: tuple[str, ...],
    sample_size: int,
    seed: int,
    acc_profile: dict[str, int] | None,
) -> str:
    """Canonical content key of one workload build.

    Args:
        model: Table-I model name.
        progress: training progress in [0, 1].
        phases: training phases built.
        sample_size: values sampled per tensor.
        seed: workload RNG seed.
        acc_profile: optional per-layer accumulator widths.

    Returns:
        A stable JSON string; equal inputs give equal keys.
    """
    spec = {
        "version": WORKLOAD_CACHE_VERSION,
        "model": model,
        "progress": float(progress),
        "phases": list(phases),
        "sample_size": int(sample_size),
        "seed": int(seed),
        "acc_profile": sorted(acc_profile.items()) if acc_profile else None,
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def tensor_key(
    model: str,
    progress: float,
    phases: tuple[str, ...],
    sample_size: int,
    seed: int,
) -> str:
    """Disk key of a build's value arrays (acc_profile-independent)."""
    return workload_key(model, progress, phases, sample_size, seed, None)


@dataclass
class WorkloadCacheStats:
    """Work accounting of one cache.

    Attributes:
        hits: builds answered from the in-memory LRU.
        disk_hits: builds whose tensors were loaded from disk.
        builds: cold builds that ran the full tensor generation.
    """

    hits: int = 0
    disk_hits: int = 0
    builds: int = 0


class WorkloadCache:
    """LRU of built workloads plus an optional on-disk tensor store.

    Args:
        capacity: in-memory entries (one entry is one model build,
            a few megabytes of value samples).
        disk_dir: directory for ``.npz`` tensor persistence (None
            disables the disk layer).
    """

    def __init__(
        self, capacity: int = 8, disk_dir: str | os.PathLike | None = None
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = WorkloadCacheStats()
        self._memo: OrderedDict[str, list] = OrderedDict()

    # -- in-memory layer ---------------------------------------------------

    def get(self, key: str) -> list | None:
        """The cached workload list for ``key``, or None on a miss."""
        entry = self._memo.get(key)
        if entry is None:
            return None
        self._memo.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, workloads: list) -> None:
        """Insert a build, evicting the least recently used overflow."""
        self._memo[key] = workloads
        self._memo.move_to_end(key)
        while len(self._memo) > self.capacity:
            self._memo.popitem(last=False)

    # -- disk layer --------------------------------------------------------

    def path_for(self, key: str) -> Path | None:
        """File path holding a tensor key's arrays (None: disk off)."""
        if self.disk_dir is None:
            return None
        digest = sha256(key.encode()).hexdigest()[:32]
        return self.disk_dir / f"workload-{digest}.npz"

    def load_tensors(self, key: str) -> list[tuple[np.ndarray, np.ndarray]] | None:
        """Fetch a build's per-phase ``(values_a, values_b)`` arrays.

        Args:
            key: the :func:`tensor_key` of the build.

        Returns:
            One array pair per phase in build order, or None when the
            entry is absent, unreadable, version-skewed, or keyed
            differently (a hash collision).
        """
        path = self.path_for(key)
        if path is None:
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if str(data["key"]) != key:
                    return None
                stack_a = np.asarray(data["values_a"], dtype=np.float64)
                stack_b = np.asarray(data["values_b"], dtype=np.float64)
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
            # BadZipFile/EOFError: a truncated or garbage archive (e.g.
            # a crashed writer beat the atomic replace, or disk rot).
            return None
        if stack_a.shape != stack_b.shape or stack_a.ndim != 2:
            return None
        self.stats.disk_hits += 1
        return list(zip(stack_a, stack_b))

    def store_tensors(self, key: str, workloads: list) -> None:
        """Persist a build's value arrays (atomic replace)."""
        path = self.path_for(key)
        if path is None:
            return
        self.disk_dir.mkdir(parents=True, exist_ok=True)
        stack_a = np.stack([w.values_a for w in workloads])
        stack_b = np.stack([w.values_b for w in workloads])
        fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    key=np.array(key),
                    values_a=stack_a,
                    values_b=stack_b,
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# Process-global default: memory-only reuse for any caller that does
# not manage its own cache (figure runs without a session, analysis
# helpers, a worker process without a disk directory).
DEFAULT_WORKLOAD_CACHE = WorkloadCache()

# Per-process caches for disk directories handed to worker processes
# (one instance per directory, so a pool worker reuses its memory layer
# across the tasks it executes).
_DIR_CACHES: dict[str, WorkloadCache] = {}


def cache_for(
    spec: "WorkloadCache | str | os.PathLike | None",
) -> WorkloadCache | None:
    """Resolve a cache spec: instance, disk directory, or None.

    Args:
        spec: a ready :class:`WorkloadCache`, a disk directory (one
            process-wide instance per directory), or None for "no
            caching".

    Returns:
        The cache to use, or None.
    """
    if spec is None or isinstance(spec, WorkloadCache):
        return spec
    root = str(spec)
    cache = _DIR_CACHES.get(root)
    if cache is None:
        cache = WorkloadCache(disk_dir=root)
        _DIR_CACHES[root] = cache
    return cache
