"""Real-trace capture: train a small model and extract its tensors.

This is the offline stand-in for the paper's PyTorch hooks on a GPU: a
genuine training run of the from-scratch framework, with per-layer
input/weight/gradient tensors snapshotted at chosen epochs.  It serves
two purposes: cross-checking that the synthetic generator produces the
kind of value structure real training yields, and supplying the real
exponent histograms of Fig 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import synthetic_images
from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.training import TraceRecorder, Trainer, TrainingHistory


@dataclass
class CapturedTraces:
    """Traces of one real training run.

    Attributes:
        history: training metrics.
        recorder: per-epoch tensor snapshots.
        epochs: the captured epochs.
    """

    history: TrainingHistory
    recorder: TraceRecorder
    epochs: tuple[int, ...]

    def tensor(self, epoch: int, name: str) -> np.ndarray:
        """All captured values of one tensor kind at one epoch.

        Args:
            epoch: captured epoch.
            name: ``"I"``, ``"W"`` or ``"G"``.

        Returns:
            Flat array of bfloat16 values.
        """
        return self.recorder.tensor_across_layers(epoch, name)


def _small_convnet(engine: MatmulEngine, rng: np.random.Generator) -> Sequential:
    """The capture model: a ResNet-flavored small CNN."""
    return Sequential(
        [
            Conv2d(1, 16, 3, engine, rng, padding=1, name="conv1"),
            ReLU(),
            Conv2d(16, 16, 3, engine, rng, padding=1, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(16, 32, 3, engine, rng, padding=1, name="conv3"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(32 * 2 * 2, 4, engine, rng, name="fc"),
        ]
    )


def capture_training_traces(
    epochs: int = 8,
    capture_epochs: tuple[int, ...] | None = None,
    mode: str = "fp32",
    seed: int = 0,
) -> CapturedTraces:
    """Train the capture model and snapshot its tensors.

    Args:
        epochs: training epochs.
        capture_epochs: epochs to snapshot (default: first and last).
        mode: arithmetic mode of the engine.
        seed: seed for data, init and batching.

    Returns:
        The :class:`CapturedTraces`.
    """
    if capture_epochs is None:
        capture_epochs = (0, epochs - 1)
    rng = np.random.default_rng(seed)
    engine = MatmulEngine(EngineConfig(mode=mode))
    network = _small_convnet(engine, rng)
    dataset = synthetic_images(
        classes=4, samples_per_class=150, size=8, noise=0.6, seed=seed
    )
    trainer = Trainer(network, SGD(lr=0.05, momentum=0.9), batch_size=32, seed=seed)
    recorder = TraceRecorder(epochs=tuple(capture_epochs))
    history = trainer.fit(dataset, epochs=epochs, recorder=recorder)
    return CapturedTraces(
        history=history, recorder=recorder, epochs=tuple(capture_epochs)
    )
