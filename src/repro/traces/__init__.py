"""Training-trace layer: calibrated synthetic tensors + real capture.

The paper collects value traces by hooking PyTorch training on a GPU.
Offline, we substitute two complementary sources:

* :mod:`repro.traces.synthetic` draws tensors from per-model, per-tensor
  calibrated distributions (:mod:`repro.traces.calibration`) matching
  the paper's published sparsity, term-sparsity and exponent statistics;
* :mod:`repro.traces.capture` extracts the same statistics from *real*
  training runs of the from-scratch framework (:mod:`repro.nn`), which
  cross-checks that the synthetic generator's value structure is the
  kind training actually produces.

:mod:`repro.traces.evolution` parameterizes the statistics over training
progress (paper Fig 18), and :mod:`repro.traces.workloads` assembles
everything into simulator-ready :class:`repro.core.workload.PhaseWorkload`
lists.
"""

from repro.traces.calibration import (
    TensorStats,
    ModelCalibration,
    CALIBRATIONS,
    get_calibration,
)
from repro.traces.synthetic import (
    generate_tensor,
    mantissas_with_mean_terms,
    measured_stats,
)
from repro.traces.evolution import calibration_at
from repro.traces.workloads import build_workloads, build_phase_workload
from repro.traces.workload_cache import (
    DEFAULT_WORKLOAD_CACHE,
    WorkloadCache,
    workload_key,
)
from repro.traces.capture import capture_training_traces, CapturedTraces

__all__ = [
    "DEFAULT_WORKLOAD_CACHE",
    "WorkloadCache",
    "workload_key",
    "TensorStats",
    "ModelCalibration",
    "CALIBRATIONS",
    "get_calibration",
    "generate_tensor",
    "mantissas_with_mean_terms",
    "measured_stats",
    "calibration_at",
    "build_workloads",
    "build_phase_workload",
    "capture_training_traces",
    "CapturedTraces",
]
