"""Calibrated synthetic tensor generation.

Tensors are built field by field: a zero mask at the target value
sparsity; significands drawn from a Gibbs-reweighted distribution over
the 128 possible bfloat16 significands so the mean CSD term count hits
its target exactly; exponents from a two-level (per-group + per-value)
normal so both the tensor-wide spread and the within-group-of-32 spread
-- which drives base-delta compression -- match their targets; random
signs.  Everything is exactly representable in bfloat16 by construction.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.encoding.booth import _LUT_COUNT, term_count, term_sparsity, value_sparsity
from repro.fp.softfloat import BFLOAT16
from repro.traces.calibration import TensorStats

# Significands with the hidden bit: integers 128..255.
_MAN_VALUES = np.arange(128, 256, dtype=np.int64)
_MAN_TERMS = _LUT_COUNT[128:256].astype(np.float64)

# Exponent clip range: keep well inside bfloat16 normals so products of
# two operands also stay normal.
_EXP_MIN = -96
_EXP_MAX = 16


def _gibbs_lambda_bisect(target: float) -> float:
    """Reference solver: 60-step bisection on the monotone curve.

    Args:
        target: clipped mean CSD term target.

    Returns:
        The lambda achieving the target.
    """

    def mean_at(lam: float) -> float:
        w = np.exp(-lam * _MAN_TERMS)
        w /= w.sum()
        return float((w * _MAN_TERMS).sum())

    lo, hi = -8.0, 8.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if mean_at(mid) > target:
            lo = mid  # need more penalty on many-term significands
        else:
            hi = mid
    return 0.5 * (lo + hi)


@functools.lru_cache(maxsize=4096)
def _gibbs_inverse(target: float) -> tuple[float, tuple[float, ...]]:
    """Cached inverse of the mean-vs-lambda curve, with its weights.

    The curve is a fixed monotone function, so its inverse at a given
    (clipped) target -- and the normalized Gibbs weight vector that goes
    with it -- never changes: each distinct target pays the bisection
    and the weight normalization exactly once per process, and every
    repeated tensor of a sweep reuses the entry.  Values are the
    reference bisection's, bit for bit.

    Args:
        target: clipped mean CSD term target.

    Returns:
        ``(lambda, weights)`` with weights as a hashable tuple.
    """
    lam = _gibbs_lambda_bisect(target)
    weights = np.exp(-lam * _MAN_TERMS)
    weights /= weights.sum()
    return lam, tuple(weights)


def gibbs_cache_info():
    """Hit/miss statistics of the cached lambda inverse."""
    return _gibbs_inverse.cache_info()


def gibbs_cache_clear() -> None:
    """Drop the cached lambda inverse (cold-path benchmarking)."""
    _gibbs_inverse.cache_clear()


def _gibbs_lambda(mean_terms: float) -> float:
    """Solve for the Gibbs weight that hits a target mean term count.

    Weights ``w(man) ~ exp(-lambda * terms(man))`` over all significands;
    bisection on the monotone mean-vs-lambda curve, cached per clipped
    target (:func:`_gibbs_inverse`).

    Args:
        mean_terms: target mean CSD terms among nonzero significands.

    Returns:
        The lambda achieving the target (clipped to the feasible range).
    """
    target = float(np.clip(mean_terms, 1.05, 4.4))
    return _gibbs_inverse(target)[0]


def mantissas_with_mean_terms(
    mean_terms: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample significand integers with a target mean CSD term count.

    Args:
        mean_terms: target mean terms (zeros excluded).
        size: number of significands.
        rng: random generator.

    Returns:
        int64 array of significands in ``[128, 255]``.
    """
    target = float(np.clip(mean_terms, 1.05, 4.4))
    _, weights = _gibbs_inverse(target)
    return rng.choice(_MAN_VALUES, size=size, p=np.array(weights))


def _correlated_exponents(
    stats: TensorStats, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Two-level exponent field: shared per-group drift + local jitter."""
    group = 32
    n_groups = -(-size // group)
    global_std = max(stats.exp_std, stats.exp_local_std)
    between = np.sqrt(max(global_std**2 - stats.exp_local_std**2, 0.0))
    group_centers = rng.normal(stats.exp_mean, between, n_groups)
    local = rng.normal(0.0, stats.exp_local_std, (n_groups, group))
    exponents = np.rint(group_centers[:, None] + local).astype(np.int64)
    return np.clip(exponents.reshape(-1)[:size], _EXP_MIN, _EXP_MAX)


def generate_tensor(
    stats: TensorStats,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a bfloat16-exact tensor sample matching the calibration.

    Args:
        stats: target distribution.
        size: number of values.
        rng: random generator.

    Returns:
        float64 array of ``size`` bfloat16-representable values, laid
        out in streaming (group-correlated) order.
    """
    zero_mask = rng.random(size) < stats.value_sparsity
    mantissas = mantissas_with_mean_terms(stats.mean_terms_nonzero, size, rng)
    exponents = _correlated_exponents(stats, size, rng)
    signs = np.where(rng.random(size) < 0.5, -1.0, 1.0)
    magnitudes = np.ldexp(
        mantissas.astype(np.float64), exponents - BFLOAT16.man_bits
    )
    values = signs * magnitudes
    values[zero_mask] = 0.0
    return values


@dataclass
class MeasuredStats:
    """Statistics measured back from a generated (or captured) tensor.

    Attributes:
        value_sparsity: zero fraction.
        term_sparsity: term sparsity relative to 8 slots.
        mean_terms: average terms per value, zeros included.
    """

    value_sparsity: float
    term_sparsity: float
    mean_terms: float


def measured_stats(values: np.ndarray) -> MeasuredStats:
    """Measure the calibration-relevant statistics of a tensor.

    Args:
        values: bfloat16-representable array.

    Returns:
        The :class:`MeasuredStats`.
    """
    return MeasuredStats(
        value_sparsity=value_sparsity(values),
        term_sparsity=term_sparsity(values),
        mean_terms=float(term_count(values).mean()),
    )
