"""Per-model tensor statistics calibrated to the paper's figures.

For every studied model, Figs 1a/1b of the paper report per-tensor value
sparsity and term sparsity, Fig 6 shows the exponent spread, and Fig 2
the per-phase work-reduction potential.  We encode each tensor as a
:class:`TensorStats` whose parameters reproduce those measurements:

* ``value_sparsity`` -- exact-zero fraction (Fig 1a);
* ``mean_terms_nonzero`` -- average CSD terms among nonzero values,
  chosen so the derived term sparsity
  ``1 - (1 - value_sparsity) * mean_terms_nonzero / 8``
  lands on Fig 1b's bar;
* ``exp_mean`` / ``exp_std`` -- global exponent location and spread
  (Fig 6 shows narrow spreads around small magnitudes for weights and
  activations and lower means for gradients);
* ``exp_local_std`` -- within-group-of-32 exponent spread, the quantity
  that sets the base-delta compression ratio (Fig 10): values that are
  neighbors in a tensor are spatially correlated, so their exponents
  cluster much tighter than the tensor-wide spread.

Notable calibration choices tied to paper observations:

* ResNet18-Q trains with 4-bit PACT, so its activation/weight mantissas
  carry very few terms (the paper's best convnet speedup, 2.04x);
* ResNet50-S2 trains with dynamic sparse reparameterization, so its
  *weights* are about half zeros -- the only model with weight sparsity;
* NCF's gradients are extremely sparse (only sampled embedding rows
  receive updates), producing the towering potential bar of Fig 2;
* the NLP-ish models have near-zero value sparsity but plenty of term
  sparsity, the paper's central observation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TensorStats:
    """Distribution parameters of one tensor of one model.

    Attributes:
        value_sparsity: probability of an exact zero.
        mean_terms_nonzero: average CSD terms among nonzero values
            (1.0 .. ~4.5 for bfloat16 significands).
        exp_mean: mean unbiased exponent of nonzero values.
        exp_std: tensor-wide exponent standard deviation.
        exp_local_std: within-group (32 consecutive values) exponent
            standard deviation; must not exceed ``exp_std``.
    """

    value_sparsity: float
    mean_terms_nonzero: float
    exp_mean: float
    exp_std: float
    exp_local_std: float = 1.2

    @property
    def term_sparsity(self) -> float:
        """Derived term sparsity relative to 8 bit-parallel slots."""
        return 1.0 - (1.0 - self.value_sparsity) * self.mean_terms_nonzero / 8.0

    @property
    def mean_terms(self) -> float:
        """Average terms per value, zeros included."""
        return (1.0 - self.value_sparsity) * self.mean_terms_nonzero


@dataclass(frozen=True)
class ModelCalibration:
    """Per-tensor statistics of one model.

    Attributes:
        activations: the ``A`` (input/activation) tensor.
        weights: the ``W`` tensor.
        gradients: the ``G`` (output gradient) tensor.
    """

    activations: TensorStats
    weights: TensorStats
    gradients: TensorStats

    def for_tensor(self, name: str) -> TensorStats:
        """Stats by tensor letter ("A", "W", "G" or "I")."""
        if name in ("A", "I"):
            return self.activations
        if name == "W":
            return self.weights
        if name == "G":
            return self.gradients
        raise KeyError(f"unknown tensor {name!r}")


CALIBRATIONS: dict[str, ModelCalibration] = {
    "SqueezeNet 1.1": ModelCalibration(
        activations=TensorStats(0.45, 2.5, -2.0, 3.0, 1.4),
        weights=TensorStats(0.05, 3.3, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.55, 2.4, -12.0, 3.5, 1.6),
    ),
    "VGG16": ModelCalibration(
        activations=TensorStats(0.55, 3.2, -1.5, 3.0, 1.4),
        weights=TensorStats(0.05, 3.4, -4.5, 2.0, 0.9),
        gradients=TensorStats(0.70, 3.0, -13.0, 3.5, 1.6),
    ),
    "ResNet50-S2": ModelCalibration(
        activations=TensorStats(0.40, 2.7, -2.0, 3.0, 1.4),
        weights=TensorStats(0.50, 2.9, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.35, 2.6, -11.0, 3.5, 1.6),
    ),
    "ResNet18-Q": ModelCalibration(
        activations=TensorStats(0.48, 1.3, -2.0, 2.0, 1.0),
        weights=TensorStats(0.05, 1.35, -3.5, 1.5, 0.8),
        gradients=TensorStats(0.30, 3.0, -11.0, 3.5, 1.6),
    ),
    "SNLI": ModelCalibration(
        activations=TensorStats(0.30, 1.45, -1.5, 2.5, 1.1),
        weights=TensorStats(0.02, 1.7, -3.5, 1.8, 0.8),
        gradients=TensorStats(0.10, 1.5, -10.0, 3.0, 1.4),
    ),
    "Image2Text": ModelCalibration(
        activations=TensorStats(0.10, 2.8, -1.5, 2.5, 1.2),
        weights=TensorStats(0.02, 3.0, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.15, 2.8, -10.0, 3.2, 1.5),
    ),
    "Detectron2": ModelCalibration(
        activations=TensorStats(0.30, 2.1, -2.0, 2.8, 1.3),
        weights=TensorStats(0.05, 2.6, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.40, 2.2, -11.0, 3.3, 1.5),
    ),
    "NCF": ModelCalibration(
        activations=TensorStats(0.05, 2.2, -1.5, 2.2, 1.0),
        weights=TensorStats(0.02, 2.4, -3.0, 1.8, 0.8),
        gradients=TensorStats(0.95, 2.6, -9.0, 3.0, 1.4),
    ),
    "Bert": ModelCalibration(
        activations=TensorStats(0.05, 2.5, -1.0, 2.5, 1.1),
        weights=TensorStats(0.02, 2.7, -3.5, 1.8, 0.8),
        gradients=TensorStats(0.10, 2.4, -9.5, 3.0, 1.4),
    ),
    # AlexNet / ResNet18 for the accumulator-width study (Fig 21):
    # unquantized ImageNet training statistics.
    "AlexNet": ModelCalibration(
        activations=TensorStats(0.45, 3.1, -2.0, 3.0, 1.4),
        weights=TensorStats(0.05, 3.3, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.50, 3.0, -12.0, 3.5, 1.6),
    ),
    "ResNet18": ModelCalibration(
        activations=TensorStats(0.40, 3.1, -2.0, 3.0, 1.4),
        weights=TensorStats(0.05, 3.3, -4.0, 2.0, 0.9),
        gradients=TensorStats(0.40, 3.0, -11.5, 3.5, 1.6),
    ),
}


def get_calibration(model: str) -> ModelCalibration:
    """Calibration by model name.

    Args:
        model: Table I model name.

    Returns:
        The :class:`ModelCalibration`.
    """
    if model not in CALIBRATIONS:
        raise KeyError(f"no calibration for {model!r}; known: {sorted(CALIBRATIONS)}")
    return CALIBRATIONS[model]
