"""Layer geometries of the studied models (paper Table I).

Each model is a list of :class:`LayerShape` entries.  Repeated stages
fold into one entry with a ``count`` so simulation stays tractable while
MAC totals remain exact for the encoded architecture.  Dimensions follow
the published architectures at their standard input sizes
(ImageNet 224x224 for the convnets, sequence length 128 for BERT,
the papers' hidden sizes elsewhere).

Three phases of training work derive from every layer (paper eqs. 1-3);
:meth:`LayerShape.phase_macs` / :meth:`LayerShape.phase_reduction` give
each phase's MAC count and reduction length, and the byte helpers feed
the off-chip traffic model in :mod:`repro.traces.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LayerShape:
    """One (possibly repeated) MAC layer of a model.

    Conv layers describe ``out = in * W`` with ``in_channels`` x
    ``kernel``^2 reductions over ``out_h x out_w`` positions; fully
    connected layers use ``kernel=1`` and ``out_h = out_w = 1``.

    Attributes:
        name: stage name.
        kind: ``"conv"`` or ``"fc"``.
        in_channels: input channels (fc: input features).
        out_channels: output channels (fc: output features).
        kernel: square kernel size (fc: 1).
        out_h: output height (fc: 1).
        out_w: output width (fc: 1).
        in_h: input height (fc: 1).
        in_w: input width (fc: 1).
        count: identical layers folded into this entry.
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel: int = 1
    out_h: int = 1
    out_w: int = 1
    in_h: int = 1
    in_w: int = 1
    count: int = 1

    @property
    def reduction(self) -> int:
        """Dot-product length of the forward pass."""
        return self.in_channels * self.kernel * self.kernel

    @property
    def macs_per_sample(self) -> int:
        """Forward MACs per input sample."""
        return self.reduction * self.out_channels * self.out_h * self.out_w

    @property
    def weight_elems(self) -> int:
        """Weight tensor size."""
        return self.reduction * self.out_channels

    @property
    def input_elems(self) -> int:
        """Input activation size per sample."""
        return self.in_channels * self.in_h * self.in_w

    @property
    def output_elems(self) -> int:
        """Output activation size per sample."""
        return self.out_channels * self.out_h * self.out_w

    def phase_macs(self, phase: str, batch: int) -> int:
        """MAC count of one training phase (all ``count`` copies).

        Args:
            phase: ``"AxW"``, ``"GxW"`` or ``"AxG"``.
            batch: mini-batch size.

        Returns:
            Total MACs.
        """
        if phase not in ("AxW", "GxW", "AxG"):
            raise ValueError(f"unknown phase {phase!r}")
        return self.macs_per_sample * batch * self.count

    def phase_reduction(self, phase: str, batch: int) -> int:
        """Dot-product length of one training phase.

        Args:
            phase: ``"AxW"`` (reduce over input channels x kernel),
                ``"GxW"`` (reduce over output channels x kernel) or
                ``"AxG"`` (reduce over batch x output positions).
            batch: mini-batch size.

        Returns:
            The reduction length.
        """
        if phase == "AxW":
            return self.reduction
        if phase == "GxW":
            return self.out_channels * self.kernel * self.kernel
        if phase == "AxG":
            return max(1, self.out_h * self.out_w * batch)
        raise ValueError(f"unknown phase {phase!r}")

    def input_bytes(self, batch: int) -> float:
        """Input-activation bytes of all copies at a batch size."""
        return 2.0 * self.input_elems * batch * self.count

    def output_bytes(self, batch: int) -> float:
        """Output-activation bytes of all copies at a batch size."""
        return 2.0 * self.output_elems * batch * self.count

    def weight_bytes(self) -> float:
        """Weight bytes of all copies."""
        return 2.0 * self.weight_elems * self.count


@dataclass(frozen=True)
class ModelSpec:
    """One studied model.

    Attributes:
        name: model name as in Table I.
        application: task (Table I's "Application" column).
        dataset: training dataset (Table I's "Dataset" column).
        batch: mini-batch size used for trace-style workloads.
        layers: representative layer shapes.
    """

    name: str
    application: str
    dataset: str
    batch: int
    layers: tuple[LayerShape, ...]

    @property
    def total_macs_per_step(self) -> int:
        """MACs of one full training step (all three phases)."""
        return sum(
            layer.phase_macs(phase, self.batch)
            for layer in self.layers
            for phase in ("AxW", "GxW", "AxG")
        )

    @property
    def total_activation_bytes(self) -> float:
        """Forward activations a training step must keep for backward."""
        return sum(layer.output_bytes(self.batch) for layer in self.layers)


def _conv(name, cin, cout, k, out_hw, in_hw=None, count=1):
    out_h, out_w = (out_hw, out_hw) if isinstance(out_hw, int) else out_hw
    if in_hw is None:
        in_h, in_w = out_h, out_w
    else:
        in_h, in_w = (in_hw, in_hw) if isinstance(in_hw, int) else in_hw
    return LayerShape(
        name=name,
        kind="conv",
        in_channels=cin,
        out_channels=cout,
        kernel=k,
        out_h=out_h,
        out_w=out_w,
        in_h=in_h,
        in_w=in_w,
        count=count,
    )


def _fc(name, fin, fout, count=1):
    return LayerShape(
        name=name, kind="fc", in_channels=fin, out_channels=fout, count=count
    )


_SQUEEZENET = ModelSpec(
    name="SqueezeNet 1.1",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=(
        _conv("conv1", 3, 64, 3, 111, in_hw=224),
        _conv("fire2-3.squeeze", 128, 16, 1, 55, count=2),
        _conv("fire2-3.expand1x1", 16, 64, 1, 55, count=2),
        _conv("fire2-3.expand3x3", 16, 64, 3, 55, count=2),
        _conv("fire4-5.squeeze", 256, 32, 1, 27, count=2),
        _conv("fire4-5.expand1x1", 32, 128, 1, 27, count=2),
        _conv("fire4-5.expand3x3", 32, 128, 3, 27, count=2),
        _conv("fire6-9.squeeze", 384, 48, 1, 13, count=4),
        _conv("fire6-9.expand1x1", 48, 192, 1, 13, count=4),
        _conv("fire6-9.expand3x3", 48, 192, 3, 13, count=4),
        _conv("conv10", 512, 1000, 1, 13),
    ),
)

_VGG16 = ModelSpec(
    name="VGG16",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=(
        _conv("conv1_x", 3, 64, 3, 224),
        _conv("conv1_2", 64, 64, 3, 224),
        _conv("conv2_x", 64, 128, 3, 112),
        _conv("conv2_2", 128, 128, 3, 112),
        _conv("conv3_1", 128, 256, 3, 56),
        _conv("conv3_x", 256, 256, 3, 56, count=2),
        _conv("conv4_1", 256, 512, 3, 28),
        _conv("conv4_x", 512, 512, 3, 28, count=2),
        _conv("conv5_x", 512, 512, 3, 14, count=3),
        _fc("fc6", 25088, 4096),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 4096, 1000),
    ),
)

_RESNET18Q = ModelSpec(
    name="ResNet18-Q",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=(
        _conv("conv1", 3, 64, 7, 112, in_hw=224),
        _conv("layer1", 64, 64, 3, 56, count=4),
        _conv("layer2.down", 64, 128, 3, 28, in_hw=56),
        _conv("layer2", 128, 128, 3, 28, count=3),
        _conv("layer3.down", 128, 256, 3, 14, in_hw=28),
        _conv("layer3", 256, 256, 3, 14, count=3),
        _conv("layer4.down", 256, 512, 3, 7, in_hw=14),
        _conv("layer4", 512, 512, 3, 7, count=3),
        _fc("fc", 512, 1000),
    ),
)

_RESNET50S2 = ModelSpec(
    name="ResNet50-S2",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=(
        _conv("conv1", 3, 64, 7, 112, in_hw=224),
        _conv("layer1.reduce", 64, 64, 1, 56, count=3),
        _conv("layer1.conv3x3", 64, 64, 3, 56, count=3),
        _conv("layer1.expand", 64, 256, 1, 56, count=3),
        _conv("layer2.conv3x3", 128, 128, 3, 28, count=4),
        _conv("layer2.expand", 128, 512, 1, 28, count=4),
        _conv("layer3.conv3x3", 256, 256, 3, 14, count=6),
        _conv("layer3.expand", 256, 1024, 1, 14, count=6),
        _conv("layer4.conv3x3", 512, 512, 3, 7, count=3),
        _conv("layer4.expand", 512, 2048, 1, 7, count=3),
        _fc("fc", 2048, 1000),
    ),
)

_SNLI = ModelSpec(
    name="SNLI",
    application="Natural Language Inference",
    dataset="SNLI Corpus",
    batch=512,  # sentence pairs x tokens: matmul rows are timesteps
    layers=(
        # Embedding projection, LSTM encoder gates (4 gates x hidden),
        # and the classifier MLP of the Bowman et al. architecture.
        _fc("embed_proj", 300, 512),
        _fc("lstm.input_gates", 512, 2048, count=2),
        _fc("lstm.hidden_gates", 512, 2048, count=2),
        _fc("mlp", 2048, 1024),
        _fc("mlp2", 1024, 1024, count=2),
        _fc("classifier", 1024, 3),
    ),
)

_IMAGE2TEXT = ModelSpec(
    name="Image2Text",
    application="Image-to-Text Conversion",
    dataset="im2latex-100k",
    batch=64,  # images; decoder matmul rows are timesteps x batch
    layers=(
        # CNN encoder of the im2markup architecture...
        _conv("enc.conv1", 1, 64, 3, (64, 256)),
        _conv("enc.conv2", 64, 128, 3, (32, 128)),
        _conv("enc.conv3", 128, 256, 3, (16, 64), count=2),
        _conv("enc.conv5", 256, 512, 3, (8, 32), count=2),
        # ...and the LSTM decoder with attention.
        _fc("dec.lstm_input", 512, 2048, count=2),
        _fc("dec.lstm_hidden", 512, 2048, count=2),
        _fc("dec.attention", 512, 512, count=2),
        _fc("dec.vocab", 512, 500),
    ),
)

_DETECTRON2 = ModelSpec(
    name="Detectron2",
    application="Object Detection",
    dataset="COCO",
    batch=8,
    layers=(
        # Mask R-CNN R50-FPN: ResNet50 backbone at 800x800-ish inputs...
        _conv("backbone.conv1", 3, 64, 7, 400, in_hw=800),
        _conv("backbone.res2", 64, 64, 3, 200, count=3),
        _conv("backbone.res3", 128, 128, 3, 100, count=4),
        _conv("backbone.res4", 256, 256, 3, 50, count=6),
        _conv("backbone.res5", 512, 512, 3, 25, count=3),
        # ...FPN laterals and heads.
        _conv("fpn.lateral", 1024, 256, 1, 50, count=4),
        _conv("fpn.output", 256, 256, 3, 50, count=4),
        _conv("rpn.head", 256, 256, 3, 50),
        _fc("roi.box_head", 12544, 1024),
        _fc("roi.box_head2", 1024, 1024),
        _conv("mask.head", 256, 256, 3, 14, count=4),
    ),
)

_NCF = ModelSpec(
    name="NCF",
    application="Recommendation",
    dataset="ml-20m",
    batch=4096,  # NCF trains with very large user-item batches
    layers=(
        # NeuMF: GMF + MLP towers over user/item embeddings.
        _fc("embed_fusion", 256, 256),
        _fc("mlp1", 256, 128),
        _fc("mlp2", 128, 64),
        _fc("mlp3", 64, 32),
        _fc("predict", 64, 1),
    ),
)

_BERT = ModelSpec(
    name="Bert",
    application="Language Translation",
    dataset="WMT17",
    batch=512,  # 4 sequences x 128 tokens: matmul rows are tokens
    layers=(
        # BERT-base, per encoder layer (12 of them): QKV projections,
        # attention output, and the feed-forward block.
        _fc("attn.qkv", 768, 2304, count=12),
        _fc("attn.output", 768, 768, count=12),
        _fc("ffn.intermediate", 768, 3072, count=12),
        _fc("ffn.output", 3072, 768, count=12),
        _fc("pooler", 768, 768),
    ),
)

_ALEXNET = ModelSpec(
    name="AlexNet",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=(
        _conv("conv1", 3, 64, 11, 55, in_hw=224),
        _conv("conv2", 64, 192, 5, 27),
        _conv("conv3", 192, 384, 3, 13),
        _conv("conv4", 384, 256, 3, 13),
        _conv("conv5", 256, 256, 3, 13),
        _fc("fc6", 9216, 4096),
        _fc("fc7", 4096, 4096),
        _fc("fc8", 4096, 1000),
    ),
)

_RESNET18 = ModelSpec(
    name="ResNet18",
    application="Image Classification",
    dataset="ImageNet",
    batch=32,
    layers=_RESNET18Q.layers,
)

MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        _SQUEEZENET,
        _VGG16,
        _RESNET50S2,
        _RESNET18Q,
        _SNLI,
        _IMAGE2TEXT,
        _DETECTRON2,
        _NCF,
        _BERT,
        _ALEXNET,
        _RESNET18,
    )
}

# The nine models of Table I, in the paper's figure order.
STUDIED_MODELS = (
    "SqueezeNet 1.1",
    "VGG16",
    "ResNet50-S2",
    "ResNet18-Q",
    "SNLI",
    "Image2Text",
    "Detectron2",
    "NCF",
    "Bert",
)


def get_model(name: str) -> ModelSpec:
    """Look a model up by its Table I name.

    Args:
        name: model name.

    Returns:
        The :class:`ModelSpec`.
    """
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name]
