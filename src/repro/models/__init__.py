"""Model zoo: the layer geometries of the paper's studied workloads.

Table I of the paper studies nine models spanning image classification,
NLP, detection, recommendation and translation, plus AlexNet/ResNet18
for the accumulator-width study.  We encode each model as a list of
representative layer shapes (with multiplicities for repeated stages),
from which exact MAC counts, reduction lengths and tensor footprints
follow.
"""

from repro.models.zoo import (
    LayerShape,
    ModelSpec,
    MODEL_ZOO,
    STUDIED_MODELS,
    get_model,
)

__all__ = [
    "LayerShape",
    "ModelSpec",
    "MODEL_ZOO",
    "STUDIED_MODELS",
    "get_model",
]
