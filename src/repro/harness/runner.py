"""Cached, parallel simulation sessions.

Every figure of the paper's evaluation needs the same handful of
simulations -- the baseline and a few FPRaker variants per Table-I model
-- yet the seed harness re-simulated them for every figure.  A
:class:`SimulationSession` routes all simulation through one object that

* **memoizes** results by a canonical key over ``(model, config,
  progress, seed, acc_profile)`` plus the sampling parameters, so each
  unique simulation runs exactly once per session;
* **fans out** independent cache misses over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``), with
  bit-identical results to a serial run because every simulation is a
  deterministic function of its key;
* optionally **persists** results to disk (:class:`ResultCache`), so a
  repeated ``python -m repro run`` starts warm.

Experiments call :meth:`SimulationSession.prefetch` with their full
request list up front (enabling the parallel fan-out), then read each
result back through :meth:`simulate` / :meth:`baseline`.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.accelerator import AcceleratorSimulator, WorkloadResult
from repro.core.baseline import BaselineAccelerator
from repro.core.config import (
    AcceleratorConfig,
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.harness.cache import ResultCache
from repro.traces.workloads import build_workloads


@dataclass(frozen=True)
class SimRequest:
    """One fully-specified simulation.

    Attributes:
        model: Table-I model name.
        config: accelerator configuration (None means the paper's
            FPRaker config).
        progress: training progress in [0, 1].
        seed: workload RNG seed.
        acc_profile: per-layer accumulator widths as sorted
            ``(layer, frac_bits)`` pairs (hashable form of the dict).
        phases: training phases to build (None = all three).
        nodes: scale-out compute-node count (1 = the plain single-node
            path, returning a :class:`WorkloadResult`; more than one
            routes through :class:`repro.scale.ScaleOutSimulator` and
            returns a :class:`ScaleOutResult`).
        partition: scale-out partition scheme (``"data"``, ``"model"``,
            ``"pipeline"``); ignored when ``nodes`` is 1.
    """

    model: str
    config: AcceleratorConfig | None = None
    progress: float = 0.5
    seed: int = 0
    acc_profile: tuple[tuple[str, int], ...] | None = None
    phases: tuple[str, ...] | None = None
    nodes: int = 1
    partition: str = "data"

    @staticmethod
    def make(
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
        nodes: int = 1,
        partition: str = "data",
    ) -> "SimRequest":
        """Normalize loose arguments (dict profile) into a request."""
        profile = (
            tuple(sorted(acc_profile.items())) if acc_profile else None
        )
        return SimRequest(
            model=model,
            config=config,
            progress=float(progress),
            seed=int(seed),
            acc_profile=profile,
            phases=tuple(phases) if phases is not None else None,
            nodes=int(nodes),
            partition=partition,
        )

    def resolved_config(self) -> AcceleratorConfig:
        """The effective configuration (None -> paper FPRaker)."""
        return self.config if self.config is not None else fpraker_paper_config()


def canonical_key(
    request: SimRequest,
    sample_strips: int,
    sample_steps: int,
    sim_seed: int,
    memory_engine: str = "roofline",
) -> str:
    """Stable string key identifying a simulation's full input set.

    Two requests that resolve to the same configuration (e.g. ``None``
    and an explicitly-constructed paper config) share a key; any change
    to the config tree, the workload parameters, the sampling setup, or
    the memory engine produces a distinct key.  The analytic baseline
    is priced identically under both memory engines, so its keys ignore
    the engine -- roofline and hierarchy sessions share one cached
    baseline per (model, progress, seed).  A one-node request normalizes
    its partition scheme away (every scheme is bit-identical to the
    unpartitioned path at N=1), so scale-out sweeps share their N=1
    anchor with plain single-node runs.
    """
    config = request.resolved_config()
    spec = {
        "model": request.model,
        "config": asdict(config),
        "progress": request.progress,
        "seed": request.seed,
        "acc_profile": list(request.acc_profile or ()),
        "phases": list(request.phases) if request.phases is not None else None,
        "sample_strips": sample_strips,
        "sample_steps": sample_steps,
        "sim_seed": sim_seed,
        "memory_engine": (
            "roofline" if config.name == "baseline" else memory_engine
        ),
        "nodes": request.nodes,
        "partition": None if request.nodes == 1 else request.partition,
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def execute_request(
    request: SimRequest,
    sample_strips: int = 8,
    sample_steps: int = 32,
    sim_seed: int = 1234,
    memory_engine: str = "roofline",
    workload_cache="default",
) -> WorkloadResult:
    """Run one simulation cold (module-level so worker processes can
    receive it by name).

    Args:
        request: the simulation to run.
        sample_strips: operand strips sampled per layer-phase.
        sample_steps: reduction groups per strip.
        sim_seed: operand-sampling RNG seed.
        memory_engine: ``"roofline"`` or ``"hierarchy"`` (FPRaker-style
            simulators only; the analytic baseline is roofline-priced
            either way).
        workload_cache: workload-reuse spec forwarded to
            :func:`repro.traces.workloads.build_workloads` --
            ``"default"``, a cache instance, a disk directory (strings
            survive the trip into worker processes), or None for cold
            builds.

    Returns:
        The simulated :class:`WorkloadResult` -- or, when
        ``request.nodes > 1``, the aggregated
        :class:`repro.scale.ScaleOutResult`.
    """
    config = request.resolved_config()
    kwargs = {}
    if request.phases is not None:
        kwargs["phases"] = request.phases
    workloads = build_workloads(
        request.model,
        progress=request.progress,
        seed=request.seed,
        acc_profile=dict(request.acc_profile) if request.acc_profile else None,
        cache=workload_cache,
        **kwargs,
    )
    if request.nodes > 1:
        from repro.scale.scaleout import ScaleOutSimulator

        simulator = ScaleOutSimulator(
            config,
            nodes=request.nodes,
            scheme=request.partition,
            sample_strips=sample_strips,
            sample_steps=sample_steps,
            seed=sim_seed,
            memory_engine=memory_engine,
        )
        return simulator.simulate_workload(workloads, model=request.model)
    if config.name == "baseline":
        return BaselineAccelerator(config).simulate_workload(workloads)
    simulator_cls = (
        PragmaticFPAccelerator
        if config.name == "pragmatic-fp"
        else AcceleratorSimulator
    )
    simulator = simulator_cls(
        config,
        sample_strips=sample_strips,
        sample_steps=sample_steps,
        seed=sim_seed,
        memory_engine=memory_engine,
    )
    return simulator.simulate_workload(workloads)


@dataclass
class SessionStats:
    """Work accounting of one session.

    Attributes:
        hits: requests answered from the in-memory memo.
        disk_hits: requests answered from the on-disk cache.
        simulations: cold simulations actually executed -- the
            acceptance counter: equals the number of *unique* requests
            a session has seen (minus disk hits).
    """

    hits: int = 0
    disk_hits: int = 0
    simulations: int = 0


class SimulationSession:
    """Memoizing, optionally parallel front end to all simulators.

    Args:
        jobs: worker processes for :meth:`prefetch` fan-out (1 = serial).
        cache_dir: directory for on-disk result persistence (None
            disables it).
        sample_strips: operand strips per layer-phase (default 8 -- the
            batched strip engine makes strips cheap; tests pass less for
            speed).
        sample_steps: reduction groups per strip (default 32).
        sim_seed: operand-sampling RNG seed (default 1234).
        memory_engine: memory model every FPRaker-style simulation in
            the session runs under -- ``"roofline"`` (default) or the
            event-level ``"hierarchy"`` engine.  Part of the canonical
            key, so both engines' results can share one disk cache.
        workload_cache: workload-reuse policy.  ``True`` (default)
            shares each model's built workload across every
            configuration of the session (and, when ``cache_dir`` is
            set, persists the tensors under ``cache_dir/workloads`` so
            worker processes and later invocations skip regeneration);
            a directory uses that disk location; ``False`` rebuilds
            workloads per simulation.  Caching never changes results --
            hits are byte-identical to cold builds -- so it is *not*
            part of the canonical simulation key.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        sample_strips: int = 8,
        sample_steps: int = 32,
        sim_seed: int = 1234,
        memory_engine: str = "roofline",
        workload_cache: bool | str | os.PathLike = True,
    ) -> None:
        if memory_engine not in ("roofline", "hierarchy"):
            raise ValueError(f"unknown memory engine {memory_engine!r}")
        self.jobs = max(1, int(jobs))
        self.sample_strips = sample_strips
        self.sample_steps = sample_steps
        self.sim_seed = sim_seed
        self.memory_engine = memory_engine
        if workload_cache is False:
            self.workload_cache_spec = None
        elif workload_cache is True:
            self.workload_cache_spec = (
                str(Path(cache_dir) / "workloads")
                if cache_dir is not None
                else "default"
            )
        else:
            self.workload_cache_spec = str(workload_cache)
        self.disk = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = SessionStats()
        self._memo: dict[str, WorkloadResult] = {}

    # -- lookup ------------------------------------------------------------

    def key_of(self, request: SimRequest) -> str:
        """Canonical key of a request under this session's sampling."""
        return canonical_key(
            request,
            self.sample_strips,
            self.sample_steps,
            self.sim_seed,
            self.memory_engine,
        )

    @property
    def unique_simulations(self) -> int:
        """Distinct simulations this session holds results for."""
        return len(self._memo)

    def simulate(
        self,
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
    ) -> WorkloadResult:
        """Simulate (or fetch) one model under one configuration.

        Args:
            model: Table-I model name.
            config: accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.
            acc_profile: optional per-layer accumulator widths.
            phases: training phases to include (None = all three).

        Returns:
            The (possibly cached) :class:`WorkloadResult`.
        """
        request = SimRequest.make(
            model, config, progress, seed, acc_profile, phases
        )
        return self._get(request)

    def baseline(
        self,
        model: str,
        progress: float = 0.5,
        seed: int = 0,
        phases: tuple[str, ...] | None = None,
    ) -> WorkloadResult:
        """Simulate (or fetch) the bit-parallel baseline."""
        return self.simulate(
            model, baseline_paper_config(), progress, seed, phases=phases
        )

    def pragmatic(
        self, model: str, progress: float = 0.5, seed: int = 0
    ) -> WorkloadResult:
        """Simulate (or fetch) the Pragmatic-FP comparison point."""
        return self.simulate(model, pragmatic_paper_config(), progress, seed)

    def scaleout(
        self,
        model: str,
        nodes: int,
        partition: str = "data",
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
    ):
        """Simulate (or fetch) a multi-node scale-out run.

        Args:
            model: Table-I model name.
            nodes: compute-node count (>= 1).
            partition: ``"data"``, ``"model"`` or ``"pipeline"``.
            config: per-node accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.

        Returns:
            A :class:`repro.scale.ScaleOutResult` for ``nodes > 1``; the
            plain single-node :class:`WorkloadResult` at ``nodes == 1``
            (same canonical key as :meth:`simulate`, so the N=1 anchor
            of a sweep shares its cache entry with ordinary runs).
        """
        request = SimRequest.make(
            model,
            config,
            progress,
            seed,
            nodes=nodes,
            partition=partition,
        )
        return self._get(request)

    # -- execution ---------------------------------------------------------

    def prefetch(self, requests: list[SimRequest]) -> None:
        """Ensure every request's result is in the memo.

        Deduplicates, consults the disk cache, then runs the remaining
        cold simulations -- over the process pool when ``jobs > 1``.
        Results are identical to serial execution because each
        simulation is a deterministic function of its request.

        Args:
            requests: simulations an experiment is about to read.
        """
        todo: dict[str, SimRequest] = {}
        for request in requests:
            key = self.key_of(request)
            if key in self._memo or key in todo:
                continue
            if self.disk is not None:
                cached = self.disk.load(key)
                if cached is not None:
                    self._memo[key] = cached
                    self.stats.disk_hits += 1
                    continue
            todo[key] = request
        if not todo:
            return
        items = list(todo.items())
        if self.jobs == 1 or len(items) == 1:
            results = [self._execute(request) for _, request in items]
        else:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(
                        execute_request,
                        request,
                        self.sample_strips,
                        self.sample_steps,
                        self.sim_seed,
                        self.memory_engine,
                        self.workload_cache_spec,
                    )
                    for _, request in items
                ]
                results = [future.result() for future in futures]
            self.stats.simulations += len(items)
        for (key, _), result in zip(items, results):
            self._memo[key] = result
            if self.disk is not None:
                self.disk.store(key, result)

    def _get(self, request: SimRequest) -> WorkloadResult:
        """Memo -> disk -> cold simulation, updating the counters."""
        key = self.key_of(request)
        if key in self._memo:
            self.stats.hits += 1
            return self._memo[key]
        if self.disk is not None:
            cached = self.disk.load(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._memo[key] = cached
                return cached
        result = self._execute(request)
        self._memo[key] = result
        if self.disk is not None:
            self.disk.store(key, result)
        return result

    def _execute(self, request: SimRequest) -> WorkloadResult:
        """Run one cold simulation in-process."""
        self.stats.simulations += 1
        return execute_request(
            request,
            self.sample_strips,
            self.sample_steps,
            self.sim_seed,
            self.memory_engine,
            self.workload_cache_spec,
        )
