"""Cached, parallel simulation sessions.

Every figure of the paper's evaluation needs the same handful of
simulations -- the baseline and a few FPRaker variants per Table-I model
-- yet the seed harness re-simulated them for every figure.  A
:class:`SimulationSession` routes all simulation through one object that

* **memoizes** results by a canonical key over ``(model, config,
  progress, seed, acc_profile)`` plus the sampling parameters, so each
  unique simulation runs exactly once per session;
* **fans out** independent cache misses over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``), with
  bit-identical results to a serial run because every simulation is a
  deterministic function of its key;
* optionally **persists** results to disk (:class:`ResultCache`), so a
  repeated ``python -m repro run`` starts warm.

Experiments call :meth:`SimulationSession.prefetch` with their full
request list up front (enabling the parallel fan-out), then read each
result back through :meth:`simulate` / :meth:`baseline`.
"""

from __future__ import annotations

import json
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.backends import KERNEL_BACKENDS
from repro.core.accelerator import AcceleratorSimulator, WorkloadResult
from repro.core.baseline import BaselineAccelerator
from repro.core.config import (
    AcceleratorConfig,
    accelerator_config_from_dict,
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.harness.cache import ResultCache
from repro.traces.workloads import build_workloads

# Version of SimRequest's public wire form (``to_dict``/``from_dict``).
# Bump on any incompatible change to the field set or field semantics;
# the service layer rejects mismatched payloads with an actionable
# error instead of misreading them.
WIRE_SCHEMA_VERSION = 1

# Training phases a request may name, in canonical order.
_KNOWN_PHASES = ("AxW", "GxW", "AxG")


class WireFormatError(ValueError):
    """A wire-format payload failed validation.

    Raised by :meth:`SimRequest.from_dict` (and the service layer built
    on it) with messages that name the offending field and the expected
    shape -- HTTP clients see these verbatim, so keep them actionable.
    """


@dataclass(frozen=True)
class SimRequest:
    """One fully-specified simulation.

    Attributes:
        model: Table-I model name.
        config: accelerator configuration (None means the paper's
            FPRaker config).
        progress: training progress in [0, 1].
        seed: workload RNG seed.
        acc_profile: per-layer accumulator widths as sorted
            ``(layer, frac_bits)`` pairs (hashable form of the dict).
        phases: training phases to build (None = all three).
        nodes: scale-out compute-node count (1 = the plain single-node
            path, returning a :class:`WorkloadResult`; more than one
            routes through :class:`repro.scale.ScaleOutSimulator` and
            returns a :class:`ScaleOutResult`).
        partition: scale-out partition scheme (``"data"``, ``"model"``,
            ``"pipeline"``); ignored when ``nodes`` is 1.
    """

    model: str
    config: AcceleratorConfig | None = None
    progress: float = 0.5
    seed: int = 0
    acc_profile: tuple[tuple[str, int], ...] | None = None
    phases: tuple[str, ...] | None = None
    nodes: int = 1
    partition: str = "data"

    @staticmethod
    def make(
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
        nodes: int = 1,
        partition: str = "data",
    ) -> "SimRequest":
        """Normalize loose arguments (dict profile) into a request."""
        profile = (
            tuple(sorted(acc_profile.items())) if acc_profile else None
        )
        return SimRequest(
            model=model,
            config=config,
            progress=float(progress),
            seed=int(seed),
            acc_profile=profile,
            phases=tuple(phases) if phases is not None else None,
            nodes=int(nodes),
            partition=partition,
        )

    def resolved_config(self) -> AcceleratorConfig:
        """The effective configuration (None -> paper FPRaker)."""
        return self.config if self.config is not None else fpraker_paper_config()

    # -- public wire format ------------------------------------------------

    def to_dict(self) -> dict:
        """This request as its versioned public wire form.

        The inverse of :meth:`from_dict`; the dict is JSON-ready and
        carries a ``schema`` tag (:data:`WIRE_SCHEMA_VERSION`) so future
        incompatible revisions are detected instead of misread.

        Returns:
            A JSON-serializable dict of every request field.
        """
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "model": self.model,
            "config": asdict(self.config) if self.config is not None else None,
            "progress": self.progress,
            "seed": self.seed,
            "acc_profile": (
                [list(pair) for pair in self.acc_profile]
                if self.acc_profile is not None
                else None
            ),
            "phases": (
                list(self.phases) if self.phases is not None else None
            ),
            "nodes": self.nodes,
            "partition": self.partition,
        }

    @classmethod
    def from_dict(cls, data: object) -> "SimRequest":
        """Validate and build a request from its wire form.

        Every field is checked individually; a malformed payload raises
        :class:`WireFormatError` naming the field and the expected shape
        (never a bare ``KeyError``), so HTTP clients get errors they can
        act on.  Only ``model`` is required -- omitted fields take the
        dataclass defaults, and a missing ``schema`` tag is accepted as
        the current version.

        Args:
            data: a mapping as produced by :meth:`to_dict`.

        Returns:
            The validated :class:`SimRequest`.

        Raises:
            WireFormatError: on any malformed field, unknown field name,
                or wire-schema version mismatch.
        """
        if not isinstance(data, dict):
            raise WireFormatError(
                "request must be a JSON object of SimRequest fields, "
                f"got {type(data).__name__}"
            )
        schema = data.get("schema", WIRE_SCHEMA_VERSION)
        if schema != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported wire schema {schema!r}; this build speaks "
                f"schema {WIRE_SCHEMA_VERSION}"
            )
        known = (
            "schema", "model", "config", "progress", "seed",
            "acc_profile", "phases", "nodes", "partition",
        )
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise WireFormatError(
                f"unknown request field(s) {', '.join(map(repr, unknown))}; "
                f"known fields: {', '.join(known)}"
            )
        model = data.get("model")
        if not isinstance(model, str) or not model:
            raise WireFormatError(
                "field 'model' is required and must be a non-empty "
                "Table-I model name string"
            )
        config = data.get("config")
        if config is not None:
            try:
                config = accelerator_config_from_dict(config)
            except ValueError as exc:
                raise WireFormatError(f"field 'config' is invalid: {exc}")
        progress = data.get("progress", 0.5)
        if (
            isinstance(progress, bool)
            or not isinstance(progress, (int, float))
            or not 0.0 <= float(progress) <= 1.0
        ):
            raise WireFormatError(
                "field 'progress' must be a number in [0, 1], "
                f"got {progress!r}"
            )
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise WireFormatError(
                f"field 'seed' must be an integer, got {seed!r}"
            )
        acc_profile = data.get("acc_profile")
        profile_dict: dict[str, int] | None = None
        if acc_profile is not None:
            if not isinstance(acc_profile, (list, tuple)) or not all(
                isinstance(pair, (list, tuple))
                and len(pair) == 2
                and isinstance(pair[0], str)
                and isinstance(pair[1], int)
                and not isinstance(pair[1], bool)
                for pair in acc_profile
            ):
                raise WireFormatError(
                    "field 'acc_profile' must be null or a list of "
                    "[layer_name, frac_bits] pairs, got "
                    f"{acc_profile!r}"
                )
            profile_dict = dict(acc_profile)
        phases = data.get("phases")
        if phases is not None:
            if not isinstance(phases, (list, tuple)) or not phases or not all(
                isinstance(phase, str) and phase in _KNOWN_PHASES
                for phase in phases
            ):
                raise WireFormatError(
                    "field 'phases' must be null or a non-empty list "
                    f"drawn from {list(_KNOWN_PHASES)}, got {phases!r}"
                )
            phases = tuple(phases)
        nodes = data.get("nodes", 1)
        if isinstance(nodes, bool) or not isinstance(nodes, int) or nodes < 1:
            raise WireFormatError(
                f"field 'nodes' must be an integer >= 1, got {nodes!r}"
            )
        partition = data.get("partition", "data")
        if partition not in ("data", "model", "pipeline"):
            raise WireFormatError(
                "field 'partition' must be one of 'data', 'model', "
                f"'pipeline', got {partition!r}"
            )
        return cls.make(
            model=model,
            config=config,
            progress=float(progress),
            seed=seed,
            acc_profile=profile_dict,
            phases=phases,
            nodes=nodes,
            partition=partition,
        )


def canonical_key(
    request: SimRequest,
    sample_strips: int,
    sample_steps: int,
    sim_seed: int,
    memory_engine: str = "roofline",
) -> str:
    """Stable string key identifying a simulation's full input set.

    Two requests that resolve to the same configuration (e.g. ``None``
    and an explicitly-constructed paper config) share a key; any change
    to the config tree, the workload parameters, the sampling setup, or
    the memory engine produces a distinct key.  The analytic baseline
    is priced identically under both memory engines, so its keys ignore
    the engine -- roofline and hierarchy sessions share one cached
    baseline per (model, progress, seed).  A one-node request normalizes
    its partition scheme away (every scheme is bit-identical to the
    unpartitioned path at N=1), so scale-out sweeps share their N=1
    anchor with plain single-node runs.
    """
    config = request.resolved_config()
    spec = {
        "model": request.model,
        "config": asdict(config),
        "progress": request.progress,
        "seed": request.seed,
        "acc_profile": list(request.acc_profile or ()),
        "phases": list(request.phases) if request.phases is not None else None,
        "sample_strips": sample_strips,
        "sample_steps": sample_steps,
        "sim_seed": sim_seed,
        "memory_engine": (
            "roofline" if config.name == "baseline" else memory_engine
        ),
        "nodes": request.nodes,
        "partition": None if request.nodes == 1 else request.partition,
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def execute_request(
    request: SimRequest,
    sample_strips: int = 8,
    sample_steps: int = 32,
    sim_seed: int = 1234,
    memory_engine: str = "roofline",
    workload_cache="default",
    kernel_backend: str = "numpy",
) -> WorkloadResult:
    """Run one simulation cold (module-level so worker processes can
    receive it by name).

    Args:
        request: the simulation to run.
        sample_strips: operand strips sampled per layer-phase.
        sample_steps: reduction groups per strip.
        sim_seed: operand-sampling RNG seed.
        memory_engine: ``"roofline"`` or ``"hierarchy"`` (FPRaker-style
            simulators only; the analytic baseline is roofline-priced
            either way).
        workload_cache: workload-reuse spec forwarded to
            :func:`repro.traces.workloads.build_workloads` --
            ``"default"``, a cache instance, a disk directory (strings
            survive the trip into worker processes), or None for cold
            builds.
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            the hot kernels run through.  Deliberately absent from
            :func:`canonical_key`: every backend is bit-identical by
            contract, so a cached result is valid under all of them.

    Returns:
        The simulated :class:`WorkloadResult` -- or, when
        ``request.nodes > 1``, the aggregated
        :class:`repro.scale.ScaleOutResult`.
    """
    config = request.resolved_config()
    kwargs = {}
    if request.phases is not None:
        kwargs["phases"] = request.phases
    workloads = build_workloads(
        request.model,
        progress=request.progress,
        seed=request.seed,
        acc_profile=dict(request.acc_profile) if request.acc_profile else None,
        cache=workload_cache,
        **kwargs,
    )
    if request.nodes > 1:
        from repro.scale.scaleout import ScaleOutSimulator

        simulator = ScaleOutSimulator(
            config,
            nodes=request.nodes,
            scheme=request.partition,
            sample_strips=sample_strips,
            sample_steps=sample_steps,
            seed=sim_seed,
            memory_engine=memory_engine,
            kernel_backend=kernel_backend,
        )
        return simulator.simulate_workload(workloads, model=request.model)
    if config.name == "baseline":
        return BaselineAccelerator(config).simulate_workload(workloads)
    simulator_cls = (
        PragmaticFPAccelerator
        if config.name == "pragmatic-fp"
        else AcceleratorSimulator
    )
    simulator = simulator_cls(
        config,
        sample_strips=sample_strips,
        sample_steps=sample_steps,
        seed=sim_seed,
        memory_engine=memory_engine,
        kernel_backend=kernel_backend,
    )
    return simulator.simulate_workload(workloads)


@dataclass(frozen=True)
class SessionConfig:
    """Every knob of a :class:`SimulationSession`, as one frozen value.

    The stable public form of the session's former seven loose keyword
    arguments: validated on construction, hashable, and shared verbatim
    by the in-process API (:mod:`repro.api`), the CLI, and the
    ``repro serve`` daemon -- one configuration object for every front
    end.

    Attributes:
        jobs: worker processes for prefetch fan-out (values below 1 are
            clamped to serial, matching the legacy constructor).
        cache_dir: directory for on-disk result persistence (None
            disables it).
        sample_strips: operand strips sampled per layer-phase.
        sample_steps: reduction groups per strip.
        sim_seed: operand-sampling RNG seed.
        memory_engine: ``"roofline"`` or ``"hierarchy"``.
        workload_cache: workload-reuse policy -- ``True`` (shared,
            persisted under ``cache_dir/workloads`` when ``cache_dir``
            is set), ``False`` (rebuild per simulation), or a disk
            directory.
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            the hot kernels run through (``"numpy"`` default;
            ``"numba"`` falls back to numpy with a warning when the
            optional dependency is absent).  Never part of canonical
            cache keys: every backend is bit-identical by contract.
    """

    jobs: int = 1
    cache_dir: str | None = None
    sample_strips: int = 8
    sample_steps: int = 32
    sim_seed: int = 1234
    memory_engine: str = "roofline"
    workload_cache: bool | str = True
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        """Validate and normalize every field (frozen-safe)."""
        object.__setattr__(self, "jobs", max(1, int(self.jobs)))
        for name in ("sample_strips", "sample_steps"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"{name} must be an integer, got {value!r}")
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if isinstance(self.sim_seed, bool) or not isinstance(
            self.sim_seed, int
        ):
            raise ValueError(
                f"sim_seed must be an integer, got {self.sim_seed!r}"
            )
        if self.memory_engine not in ("roofline", "hierarchy"):
            raise ValueError(f"unknown memory engine {self.memory_engine!r}")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", os.fspath(self.cache_dir))
        if not isinstance(self.workload_cache, bool):
            object.__setattr__(
                self, "workload_cache", os.fspath(self.workload_cache)
            )

    @property
    def workload_cache_spec(self) -> str | None:
        """Workload-cache spec forwarded to workers (None = cold builds)."""
        if self.workload_cache is False:
            return None
        if self.workload_cache is True:
            return (
                str(Path(self.cache_dir) / "workloads")
                if self.cache_dir is not None
                else "default"
            )
        return str(self.workload_cache)

    def to_dict(self) -> dict:
        """This configuration as its versioned public wire form."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "sample_strips": self.sample_strips,
            "sample_steps": self.sample_steps,
            "sim_seed": self.sim_seed,
            "memory_engine": self.memory_engine,
            "workload_cache": self.workload_cache,
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_dict(cls, data: object) -> "SessionConfig":
        """Validate and build a configuration from its wire form.

        Args:
            data: a mapping as produced by :meth:`to_dict`; omitted
                fields take the defaults.

        Returns:
            The validated :class:`SessionConfig`.

        Raises:
            WireFormatError: on a non-mapping payload, unknown field, or
                schema mismatch; ``ValueError`` surfaces field-level
                validation failures from ``__post_init__``.
        """
        if not isinstance(data, dict):
            raise WireFormatError(
                "session config must be a JSON object of SessionConfig "
                f"fields, got {type(data).__name__}"
            )
        schema = data.get("schema", WIRE_SCHEMA_VERSION)
        if schema != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported wire schema {schema!r}; this build speaks "
                f"schema {WIRE_SCHEMA_VERSION}"
            )
        known = (
            "schema", "jobs", "cache_dir", "sample_strips", "sample_steps",
            "sim_seed", "memory_engine", "workload_cache", "kernel_backend",
        )
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise WireFormatError(
                f"unknown config field(s) {', '.join(map(repr, unknown))}; "
                f"known fields: {', '.join(known)}"
            )
        values = {
            "jobs": data.get("jobs"),
            "cache_dir": data.get("cache_dir"),
            "sample_strips": data.get("sample_strips"),
            "sample_steps": data.get("sample_steps"),
            "sim_seed": data.get("sim_seed"),
            "memory_engine": data.get("memory_engine"),
            "workload_cache": data.get("workload_cache"),
            "kernel_backend": data.get("kernel_backend"),
        }
        kwargs = {}
        for name, value in values.items():
            # None never survives validation for any field, so absent
            # and null both mean "use the default".
            if value is not None:
                kwargs[name] = value
        return cls(**kwargs)


@dataclass
class SessionStats:
    """Work accounting of one session.

    Attributes:
        hits: requests answered from the in-memory memo.
        disk_hits: requests answered from the on-disk cache.
        simulations: cold simulations actually executed -- the
            acceptance counter: equals the number of *unique* requests
            a session has seen (minus disk hits).
    """

    hits: int = 0
    disk_hits: int = 0
    simulations: int = 0


class SimulationSession:
    """Memoizing, optionally parallel front end to all simulators.

    The primary constructor takes one :class:`SessionConfig`::

        session = SimulationSession(config=SessionConfig(jobs=4))

    The original seven loose keyword arguments (``jobs``, ``cache_dir``,
    ``sample_strips``, ``sample_steps``, ``sim_seed``,
    ``memory_engine``, ``workload_cache`` -- see the matching
    :class:`SessionConfig` fields for their semantics) still construct
    a session, but emit a :class:`DeprecationWarning`; new code should
    build a :class:`SessionConfig` (or call :func:`repro.api.session`).

    Args:
        config: the session configuration (None with no legacy keywords
            = all defaults).
        jobs: deprecated -- use ``config``.
        cache_dir: deprecated -- use ``config``.
        sample_strips: deprecated -- use ``config``.
        sample_steps: deprecated -- use ``config``.
        sim_seed: deprecated -- use ``config``.
        memory_engine: deprecated -- use ``config``.
        workload_cache: deprecated -- use ``config``.
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        sample_strips: int | None = None,
        sample_steps: int | None = None,
        sim_seed: int | None = None,
        memory_engine: str | None = None,
        workload_cache: bool | str | os.PathLike | None = None,
        jobs: int | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("jobs", jobs),
                ("cache_dir", cache_dir),
                ("sample_strips", sample_strips),
                ("sample_steps", sample_steps),
                ("sim_seed", sim_seed),
                ("memory_engine", memory_engine),
                ("workload_cache", workload_cache),
            )
            if value is not None
        }
        if config is not None and not isinstance(config, SessionConfig):
            # Positional legacy form: the first parameter used to be
            # `jobs`.  Shift it into the legacy keyword set.
            legacy.setdefault("jobs", config)
            config = None
        if config is not None and legacy:
            raise TypeError(
                "pass either config=SessionConfig(...) or the legacy "
                "keyword arguments, not both: got config= and "
                + ", ".join(sorted(legacy))
            )
        if config is None:
            if legacy:
                warnings.warn(
                    "SimulationSession's loose keyword arguments "
                    f"({', '.join(sorted(legacy))}) are deprecated; "
                    "construct with "
                    "SimulationSession(config=SessionConfig(...)) or "
                    "repro.api.session(...)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = SessionConfig(**legacy)
        self.config = config
        self.jobs = config.jobs
        self.sample_strips = config.sample_strips
        self.sample_steps = config.sample_steps
        self.sim_seed = config.sim_seed
        self.memory_engine = config.memory_engine
        self.kernel_backend = config.kernel_backend
        self.workload_cache_spec = config.workload_cache_spec
        self.disk = (
            ResultCache(config.cache_dir)
            if config.cache_dir is not None
            else None
        )
        self.stats = SessionStats()
        self._memo: dict[str, WorkloadResult] = {}

    # -- lookup ------------------------------------------------------------

    def key_of(self, request: SimRequest) -> str:
        """Canonical key of a request under this session's sampling."""
        return canonical_key(
            request,
            self.sample_strips,
            self.sample_steps,
            self.sim_seed,
            self.memory_engine,
        )

    @property
    def unique_simulations(self) -> int:
        """Distinct simulations this session holds results for."""
        return len(self._memo)

    def simulate(
        self,
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
    ) -> WorkloadResult:
        """Simulate (or fetch) one model under one configuration.

        Args:
            model: Table-I model name.
            config: accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.
            acc_profile: optional per-layer accumulator widths.
            phases: training phases to include (None = all three).

        Returns:
            The (possibly cached) :class:`WorkloadResult`.
        """
        request = SimRequest.make(
            model, config, progress, seed, acc_profile, phases
        )
        return self._get(request)

    def baseline(
        self,
        model: str,
        progress: float = 0.5,
        seed: int = 0,
        phases: tuple[str, ...] | None = None,
    ) -> WorkloadResult:
        """Simulate (or fetch) the bit-parallel baseline."""
        return self.simulate(
            model, baseline_paper_config(), progress, seed, phases=phases
        )

    def pragmatic(
        self, model: str, progress: float = 0.5, seed: int = 0
    ) -> WorkloadResult:
        """Simulate (or fetch) the Pragmatic-FP comparison point."""
        return self.simulate(model, pragmatic_paper_config(), progress, seed)

    def scaleout(
        self,
        model: str,
        nodes: int,
        partition: str = "data",
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
    ):
        """Simulate (or fetch) a multi-node scale-out run.

        Args:
            model: Table-I model name.
            nodes: compute-node count (>= 1).
            partition: ``"data"``, ``"model"`` or ``"pipeline"``.
            config: per-node accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.

        Returns:
            A :class:`repro.scale.ScaleOutResult` for ``nodes > 1``; the
            plain single-node :class:`WorkloadResult` at ``nodes == 1``
            (same canonical key as :meth:`simulate`, so the N=1 anchor
            of a sweep shares its cache entry with ordinary runs).
        """
        request = SimRequest.make(
            model,
            config,
            progress,
            seed,
            nodes=nodes,
            partition=partition,
        )
        return self._get(request)

    def resolve(self, request: SimRequest) -> WorkloadResult:
        """Simulate (or fetch) one fully-specified request.

        The request-level entry point :func:`repro.api.sweep` and the
        service layer share with the keyword helpers above.

        Args:
            request: the simulation to resolve.

        Returns:
            The (possibly cached) result.
        """
        return self._get(request)

    # -- execution ---------------------------------------------------------

    def prefetch(self, requests: list[SimRequest]) -> None:
        """Ensure every request's result is in the memo.

        Deduplicates, consults the disk cache, then runs the remaining
        cold simulations -- over the process pool when ``jobs > 1``.
        Results are identical to serial execution because each
        simulation is a deterministic function of its request.

        Args:
            requests: simulations an experiment is about to read.
        """
        todo: dict[str, SimRequest] = {}
        for request in requests:
            key = self.key_of(request)
            if key in self._memo or key in todo:
                continue
            if self.disk is not None:
                cached = self.disk.load(key)
                if cached is not None:
                    self._memo[key] = cached
                    self.stats.disk_hits += 1
                    continue
            todo[key] = request
        if not todo:
            return
        items = list(todo.items())
        if self.jobs == 1 or len(items) == 1:
            results = [self._execute(request) for _, request in items]
        else:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(
                        execute_request,
                        request,
                        self.sample_strips,
                        self.sample_steps,
                        self.sim_seed,
                        self.memory_engine,
                        self.workload_cache_spec,
                        self.kernel_backend,
                    )
                    for _, request in items
                ]
                results = [future.result() for future in futures]
            self.stats.simulations += len(items)
        for (key, _), result in zip(items, results):
            self._memo[key] = result
            if self.disk is not None:
                self.disk.store(key, result)

    def _get(self, request: SimRequest) -> WorkloadResult:
        """Memo -> disk -> cold simulation, updating the counters."""
        key = self.key_of(request)
        if key in self._memo:
            self.stats.hits += 1
            return self._memo[key]
        if self.disk is not None:
            cached = self.disk.load(key)
            if cached is not None:
                self.stats.disk_hits += 1
                self._memo[key] = cached
                return cached
        result = self._execute(request)
        self._memo[key] = result
        if self.disk is not None:
            self.disk.store(key, result)
        return result

    def _execute(self, request: SimRequest) -> WorkloadResult:
        """Run one cold simulation in-process."""
        self.stats.simulations += 1
        return execute_request(
            request,
            self.sample_strips,
            self.sample_steps,
            self.sim_seed,
            self.memory_engine,
            self.workload_cache_spec,
            self.kernel_backend,
        )
