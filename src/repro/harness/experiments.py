"""Regeneration of every table and figure of the paper's evaluation.

Conventions: functions return a :class:`repro.harness.report.Table`
(sometimes with extra structured data); ``models`` defaults to the
paper's nine studied models but can be narrowed for quick runs; all
randomness is seeded, so results are reproducible.

Every simulation-driven experiment takes an optional
:class:`repro.harness.runner.SimulationSession` and routes all
simulator work through it: figures sharing baselines (most of them)
then reuse each other's results instead of re-simulating, and a
session constructed with ``jobs > 1`` fans each figure's request list
out over worker processes.  Passing no session gives each call a
private one.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.exponents import exponent_range_covered
from repro.analysis.potential import model_potential_speedups
from repro.analysis.sparsity import model_sparsity_report
from repro.compression.base_delta import (
    compression_summary,
    mean_compression_ratio,
)
from repro.core.config import (
    AcceleratorConfig,
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.energy.model import AreaModel, EnergyModel, TABLE3
from repro.memory.dram import DRAMModel
from repro.memory.traffic import TRANSPOSERS_PER_TILE, workload_traffic
from repro.models.zoo import STUDIED_MODELS, get_model
from repro.nn.data import synthetic_images
from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.optim import SGD
from repro.nn.sakr import sakr_accumulator_profile
from repro.nn.training import Trainer
from repro.harness.report import Table, geomean
from repro.harness.runner import SessionConfig, SimRequest, SimulationSession
from repro.traces.calibration import get_calibration
from repro.traces.capture import capture_training_traces
from repro.traces.synthetic import generate_tensor
from repro.traces.workloads import build_workloads

PHASES = ("AxW", "GxW", "AxG")


def _variant_config(variant: str) -> AcceleratorConfig:
    """FPRaker config for one of Fig 11's decomposition variants."""
    config = fpraker_paper_config()
    if variant == "full":
        return config
    pe_no_ob = replace(config.tile.pe, ob_skip=False)
    tile = replace(config.tile, pe=pe_no_ob)
    if variant == "zero":
        return replace(config, tile=tile, base_delta_compression=False)
    if variant == "zero+bdc":
        return replace(config, tile=tile, base_delta_compression=True)
    raise ValueError(f"unknown variant {variant!r}")


def _session_for(
    session: SimulationSession | None,
    models: tuple[str, ...],
    configs: tuple[AcceleratorConfig | None, ...],
    progress: float | tuple[float, ...] = 0.5,
    seed: int = 0,
    with_baseline: bool = True,
    memory_engine: str = "roofline",
) -> SimulationSession:
    """Resolve the session and prefetch a models x configs sweep.

    Args:
        session: caller-provided session, or None for a private one.
        models: models the experiment iterates over.
        configs: FPRaker-side configurations it needs per model.
        progress: one or several training-progress points.
        seed: workload RNG seed.
        with_baseline: also request the bit-parallel baseline.
        memory_engine: engine for a private session (a caller-provided
            session keeps its own engine).

    Returns:
        The session, with every request already simulated (in parallel
        when the session runs multiple jobs).
    """
    if session is None:
        session = SimulationSession(
            config=SessionConfig(memory_engine=memory_engine)
        )
    points = progress if isinstance(progress, tuple) else (progress,)
    sweep = list(configs) + ([baseline_paper_config()] if with_baseline else [])
    session.prefetch(
        [
            SimRequest.make(model, config, point, seed)
            for model in models
            for point in points
            for config in sweep
        ]
    )
    return session


def run_table1() -> Table:
    """Table I: the studied models."""
    table = Table(
        "Table I: Models Studied",
        ["Model", "Application", "Dataset", "Layers", "MACs/step"],
    )
    for name in STUDIED_MODELS:
        spec = get_model(name)
        table.add_row(
            spec.name,
            spec.application,
            spec.dataset,
            sum(layer.count for layer in spec.layers),
            float(spec.total_macs_per_step),
        )
    return table


def run_table2() -> Table:
    """Table II: evaluated configurations."""
    fpr = fpraker_paper_config()
    base = baseline_paper_config()
    table = Table(
        "Table II: Baseline and FPRaker configurations",
        ["Parameter", "FPRaker", "Baseline"],
    )
    table.add_row(
        "Tile configuration",
        f"{fpr.tile.rows}x{fpr.tile.cols}",
        f"{base.tile.rows}x{base.tile.cols}",
    )
    table.add_row("Tiles", fpr.tiles, base.tiles)
    table.add_row("Total PEs", fpr.total_pes, base.total_pes)
    table.add_row("Lanes/PE", fpr.tile.pe.lanes, base.tile.pe.lanes)
    table.add_row("Peak MACs/cycle", "-", base.peak_macs_per_cycle)
    table.add_row("Clock (MHz)", fpr.clock_mhz, base.clock_mhz)
    return table


def run_table3() -> Table:
    """Table III: per-tile area and power, plus iso-area tile counts."""
    area = AreaModel()
    table = Table(
        "Table III: Area and power per tile",
        ["Design", "PE array [um^2]", "Encoders [um^2]", "Total [um^2]",
         "Normalized", "Power [mW]"],
    )
    table.add_row(
        "FPRaker",
        TABLE3.fpraker_pe_array_area,
        TABLE3.fpraker_encoder_area,
        TABLE3.fpraker_tile_area,
        round(TABLE3.area_ratio, 3),
        TABLE3.fpraker_tile_power,
    )
    table.add_row(
        "Baseline",
        TABLE3.baseline_tile_area,
        0.0,
        TABLE3.baseline_tile_area,
        1.0,
        TABLE3.baseline_tile_power,
    )
    table.add_row(
        "iso-area FPRaker tiles", "-", "-", "-", area.iso_area_tiles(8), "-"
    )
    table.add_row(
        "iso-area Pragmatic tiles", "-", "-", "-",
        area.iso_area_pragmatic_tiles(8), "-",
    )
    return table


def run_fig1_sparsity(
    models: tuple[str, ...] = STUDIED_MODELS,
    sample_size: int = 65536,
    seed: int = 0,
) -> Table:
    """Figs 1a/1b: value and term sparsity per tensor per model."""
    table = Table(
        "Fig 1: Value and term sparsity during training",
        ["Model", "value A", "value W", "value G",
         "term A", "term W", "term G"],
    )
    for model in models:
        report = model_sparsity_report(model, sample_size=sample_size, seed=seed)
        table.add_row(
            model,
            report.value["A"], report.value["W"], report.value["G"],
            report.term["A"], report.term["W"], report.term["G"],
        )
    return table


def run_fig2_potential(
    models: tuple[str, ...] = STUDIED_MODELS,
    sample_size: int = 65536,
    seed: int = 0,
) -> Table:
    """Fig 2: ideal per-phase speedup from term skipping (eq. 4)."""
    table = Table(
        "Fig 2: Potential speedup of exploiting term sparsity",
        ["Model", "AxG", "GxW", "AxW"],
    )
    for model in models:
        potential = model_potential_speedups(
            model, sample_size=sample_size, seed=seed
        )
        table.add_row(model, potential["AxG"], potential["GxW"], potential["AxW"])
    return table


def run_fig6_exponents(epochs: int = 6, seed: int = 0) -> Table:
    """Fig 6: exponent ranges at the start and end of real training.

    Trains the capture model end to end and reports the exponent band
    holding 99 % of each tensor at the first and last epoch -- the
    narrow-range observation behind the shift-window and BDC designs.
    """
    captured = capture_training_traces(
        epochs=epochs, capture_epochs=(0, epochs - 1), seed=seed
    )
    table = Table(
        "Fig 6: Exponent range (99% mass) at start vs end of training",
        ["Tensor", f"epoch 0", f"epoch {epochs - 1}", "full bf16 range"],
    )
    for tensor in ("I", "W", "G"):
        first = exponent_range_covered(captured.tensor(0, tensor))
        last = exponent_range_covered(captured.tensor(epochs - 1, tensor))
        table.add_row(tensor, first, last, 256)
    return table


def run_fig10_compression(
    models: tuple[str, ...] = STUDIED_MODELS,
    sample_size: int = 65536,
    seed: int = 0,
) -> Table:
    """Fig 10: normalized exponent footprint after base-delta compression."""
    table = Table(
        "Fig 10: Exponent footprint after base-delta compression",
        ["Model", "A (channel)", "W (channel)", "G (channel)", "A (spatial)"],
    )
    for model in models:
        calibration = get_calibration(model)
        rng = np.random.default_rng(seed)
        ratios = {}
        for tensor in ("A", "W", "G"):
            values = generate_tensor(
                calibration.for_tensor(tensor), sample_size, rng
            )
            ratios[tensor] = compression_summary(values).exponent_ratio
        # Spatial grouping: a coarser shuffle of the stream (half-group
        # offset) stands in for walking the H dimension instead.
        values = generate_tensor(calibration.activations, sample_size, rng)
        spatial = values.reshape(-1, 16)[::2].ravel()
        spatial_ratio = compression_summary(spatial).exponent_ratio
        table.add_row(model, ratios["A"], ratios["W"], ratios["G"], spatial_ratio)
    return table


def run_fig11_speedup(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 11: iso-area speedup decomposition and core energy efficiency."""
    session = _session_for(
        session,
        models,
        (_variant_config("zero"), _variant_config("zero+bdc"), None),
        progress,
        seed,
    )
    table = Table(
        "Fig 11: FPRaker vs baseline (iso compute area)",
        ["Model", "Perf (Zero Terms)", "Perf (BDC + Zero Terms)",
         "Total Perf (BDC + Zero/OB)", "Core Energy Efficiency"],
    )
    speedups, zero_only, zero_bdc, core_eff = [], [], [], []
    for model in models:
        base = session.baseline(model, progress, seed)
        zero = session.simulate(model, _variant_config("zero"), progress, seed)
        bdc = session.simulate(model, _variant_config("zero+bdc"), progress, seed)
        full = session.simulate(model, None, progress, seed)
        eff = (
            base.energy_total().core.total / full.energy_total().core.total
        )
        table.add_row(
            model,
            zero.speedup_vs(base),
            bdc.speedup_vs(base),
            full.speedup_vs(base),
            eff,
        )
        zero_only.append(zero.speedup_vs(base))
        zero_bdc.append(bdc.speedup_vs(base))
        speedups.append(full.speedup_vs(base))
        core_eff.append(eff)
    table.add_row(
        "Geomean",
        geomean(zero_only),
        geomean(zero_bdc),
        geomean(speedups),
        geomean(core_eff),
    )
    return table


def run_fig12_energy(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
    memory_engine: str = "roofline",
) -> Table:
    """Fig 12: energy breakdown (core compute/control/accum, on/off-chip).

    Under ``memory_engine="hierarchy"`` (or a hierarchy session) the
    table gains a "Scratchpad" column: the share of total energy spent
    staging operands through the per-tile scratchpads, which only the
    event-level traffic engine tracks.  The scratchpad share is carved
    *out of* the on-chip share (the simulator folds it into
    ``on_chip``), so the fraction columns still partition the total.
    """
    session = _session_for(
        session, models, (None,), progress, seed, memory_engine=memory_engine
    )
    hierarchy = session.memory_engine == "hierarchy"
    headers = ["Model", "Compute", "Control", "Accumulation", "On-chip",
               "Off-chip", "Total vs baseline"]
    if hierarchy:
        headers.insert(6, "Scratchpad")
    table = Table(
        "Fig 12: Energy breakdown, FPRaker normalized to baseline", headers
    )
    # Sessions always build simulators with the default per-event
    # energies (execute_request passes no EnergyModel), so re-pricing
    # the scratchpad bytes here matches what _phase_energy folded into
    # the on-chip total.
    energy_model = EnergyModel()
    totals = []
    for model in models:
        base = session.baseline(model, progress, seed)
        full = session.simulate(model, None, progress, seed)
        fe = full.energy_total()
        be = base.energy_total()
        ratio = be.total / fe.total
        on_chip = fe.on_chip
        row = [
            model,
            fe.core.compute / fe.total,
            fe.core.control / fe.total,
            fe.core.accumulation / fe.total,
            on_chip / fe.total,
            fe.off_chip / fe.total,
            ratio,
        ]
        if hierarchy:
            mem = full.counters_total().memory
            scratch = energy_model.scratchpad_energy(
                mem.scratchpad_bytes if mem is not None else 0.0
            )
            # Scratchpad is a slice of the on-chip energy: split it out
            # so the fraction columns keep summing to 1.
            row[4] = (on_chip - scratch) / fe.total
            row.insert(6, scratch / fe.total)
        table.add_row(*row)
        totals.append(ratio)
    filler = ["-"] * (len(headers) - 2)
    table.add_row("Geomean", *filler, geomean(totals))
    return table


def run_fig13_skipped(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 13: breakdown of skipped terms (zero vs out-of-bounds)."""
    session = _session_for(
        session, models, (None,), progress, seed, with_baseline=False
    )
    table = Table(
        "Fig 13: Breakdown of skipped terms",
        ["Model", "skipped fraction", "zero share", "out-of-bounds share"],
    )
    for model in models:
        full = session.simulate(model, None, progress, seed)
        terms = full.counters_total().terms
        ob_share = terms.ob_share_of_skipped()
        table.add_row(
            model, terms.skipped_fraction(), 1.0 - ob_share, ob_share
        )
    return table


def run_fig14_phases(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 14: speedup per training phase (AxG, GxW, AxW)."""
    session = _session_for(session, models, (None,), progress, seed)
    table = Table(
        "Fig 14: Speedup breakdown per training phase",
        ["Model", "AxG", "GxW", "AxW"],
    )
    rows = {phase: [] for phase in PHASES}
    for model in models:
        base = session.baseline(model, progress, seed)
        full = session.simulate(model, None, progress, seed)
        speeds = {
            phase: full.phase_speedup_vs(base, phase) for phase in PHASES
        }
        table.add_row(model, speeds["AxG"], speeds["GxW"], speeds["AxW"])
        for phase in PHASES:
            rows[phase].append(speeds[phase])
    table.add_row(
        "Geomean",
        geomean(rows["AxG"]),
        geomean(rows["GxW"]),
        geomean(rows["AxW"]),
    )
    return table


def run_fig15_stalls(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
    memory_engine: str = "roofline",
) -> Table:
    """Fig 15: lane-cycle breakdown (useful and the four stall kinds).

    Under ``memory_engine="hierarchy"`` (or a hierarchy session) two
    memory-side stall columns are appended: "bank stall" (global-buffer
    bank-conflict cycles) and "transposer" (8x8 transposer occupancy),
    both as fractions of the model's total cycles.  The default
    roofline table is byte-identical to the seed behavior (pinned by
    the golden-fixture regression test).
    """
    session = _session_for(
        session,
        models,
        (None,),
        progress,
        seed,
        with_baseline=False,
        memory_engine=memory_engine,
    )
    hierarchy = session.memory_engine == "hierarchy"
    headers = ["Model", "useful", "no term", "shift range", "inter-PE",
               "exponent"]
    if hierarchy:
        headers += ["bank stall", "transposer"]
    table = Table("Fig 15: Lane efficiency breakdown", headers)
    for model in models:
        full = session.simulate(model, None, progress, seed)
        fractions = full.counters_total().lanes.fractions()
        row = [
            model,
            fractions["useful"],
            fractions["no_term"],
            fractions["shift_range"],
            fractions["inter_pe"],
            fractions["exponent"],
        ]
        if hierarchy:
            mem = full.counters_total().memory
            cycles = full.cycles
            if mem is None or not cycles:
                row += [0.0, 0.0]
            else:
                row += [
                    mem.bank_conflict_cycles / cycles,
                    mem.transposer_cycles / cycles,
                ]
        table.add_row(*row)
    return table


def _bdc_ratio(workload) -> float:
    """Base-delta effective/raw byte ratio of one layer-phase.

    Shares :func:`mean_compression_ratio` with the simulator's
    off-chip pricing so the roofline comparison cannot drift from what
    hierarchy simulations actually charge.
    """
    if workload.total_bytes == 0:
        return 1.0
    return mean_compression_ratio(workload.values_a, workload.values_b)


def run_memory_profile(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
) -> Table:
    """Memory-hierarchy traffic profile of each model's training step.

    Prices every layer-phase with the event-level traffic engine
    (:mod:`repro.memory.traffic`) alone -- no strip simulation -- and
    reports the per-model schedule: container bursts, DRAM cycles,
    global-buffer bank cycles (and the conflict share), transposer
    occupancy, scratchpad staging, and how far the event-level memory
    cycles sit above the flat roofline.
    """
    config = fpraker_paper_config()
    dram = DRAMModel()
    table = Table(
        "Memory-hierarchy traffic profile (event-level engine)",
        ["Model", "Containers", "DRAM MB", "DRAM cycles", "Bank cycles",
         "Conflict cycles", "Transposer cycles", "Scratchpad MB",
         "Roofline cycles", "Hierarchy / roofline"],
    )
    for model in models:
        workloads = build_workloads(model, progress=progress, seed=seed)
        ratio_of = _bdc_ratio if config.base_delta_compression else None
        traffic = workload_traffic(
            workloads,
            dram=dram,
            clock_mhz=config.clock_mhz,
            transposer_units=config.tiles * TRANSPOSERS_PER_TILE,
            ratio_of=ratio_of,
        )
        roofline = sum(
            dram.transfer_cycles(
                w.total_bytes * (ratio_of(w) if ratio_of else 1.0),
                config.clock_mhz,
            )
            for w in workloads
        )
        table.add_row(
            model,
            traffic.containers,
            traffic.dram_bytes / 1e6,
            traffic.dram_cycles,
            traffic.bank_cycles,
            traffic.bank_conflict_cycles,
            traffic.transposer_cycles,
            traffic.scratchpad_bytes / 1e6,
            roofline,
            traffic.memory_cycles / roofline if roofline else float("inf"),
        )
    return table


def run_fig16_obs_sync(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 16: effect of OB skipping on synchronization overhead."""
    session = _session_for(
        session,
        models,
        (None, _variant_config("zero+bdc")),
        progress,
        seed,
        with_baseline=False,
    )
    table = Table(
        "Fig 16: Synchronization overhead with/without OB skipping (OBS)",
        ["Model", "sync lane-cycles OBS", "sync lane-cycles no-OBS",
         "reduction"],
    )
    reductions = []
    for model in models:
        full = session.simulate(model, None, progress, seed)
        no_obs = session.simulate(
            model, _variant_config("zero+bdc"), progress, seed
        )
        def sync_cycles(result):
            lanes = result.counters_total().lanes
            return lanes.no_term + lanes.shift_range + lanes.inter_pe + lanes.exponent
        with_obs = sync_cycles(full)
        without = sync_cycles(no_obs)
        reduction = 1.0 - with_obs / without if without else 0.0
        table.add_row(model, with_obs, without, reduction)
        reductions.append(reduction)
    table.add_row("Mean", "-", "-", float(np.mean(reductions)))
    return table


def run_fig17_accuracy(
    epochs: int = 12,
    seed: int = 7,
    classes: int = 4,
    noise: float = 0.9,
    kernel_backend: str = "numpy",
) -> Table:
    """Fig 17: training accuracy under fp32 / bf16 / FPRaker arithmetic.

    Trains the same network from the same initialization on the same
    batches under the three arithmetic modes; the paper's claim is that
    the FPRaker curve tracks the bf16 baseline within noise because it
    only skips work that cannot change the rounded result.  The
    ``kernel_backend`` knob picks the compiled kernel layer for the
    emulated matmuls (bit-identical by contract).
    """
    from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
    from repro.nn.network import Sequential

    dataset = synthetic_images(
        classes=classes, samples_per_class=150, size=8, noise=noise, seed=seed
    )
    table = Table(
        "Fig 17: Top-1 validation accuracy by arithmetic mode",
        ["Mode", "best accuracy", "final accuracy", "last-3 mean"],
    )
    curves = {}
    for mode in ("fp32", "bf16", "fpraker"):
        rng = np.random.default_rng(seed)
        engine = MatmulEngine(
            EngineConfig(mode=mode, kernel_backend=kernel_backend)
        )
        network = Sequential(
            [
                Conv2d(1, 8, 3, engine, rng, padding=1, name="conv1"),
                ReLU(),
                MaxPool2d(2),
                Conv2d(8, 16, 3, engine, rng, padding=1, name="conv2"),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
                Dense(16 * 4, classes, engine, rng, name="fc"),
            ]
        )
        trainer = Trainer(
            network, SGD(lr=0.04, momentum=0.9), batch_size=32, seed=seed
        )
        history = trainer.fit(dataset, epochs=epochs)
        curves[mode] = history.test_accuracy
        table.add_row(
            f"{mode}",
            history.best_test_accuracy,
            history.final_test_accuracy,
            float(np.mean(history.test_accuracy[-3:])),
        )
    table.curves = curves  # full per-epoch curves for plotting/tests
    return table


def run_fig18_over_time(
    models: tuple[str, ...] = STUDIED_MODELS,
    points: tuple[float, ...] = (0.05, 0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 18: speedup over the course of training."""
    session = _session_for(session, models, (None,), tuple(points), seed)
    table = Table(
        "Fig 18: Speedup over training progress",
        ["Model"] + [f"{int(p * 100)}%" for p in points],
    )
    for model in models:
        row = [model]
        for progress in points:
            base = session.baseline(model, progress, seed)
            full = session.simulate(model, None, progress, seed)
            row.append(full.speedup_vs(base))
        table.add_row(*row)
    return table


def _rows_config(rows: int) -> AcceleratorConfig:
    """Fig 19/20 geometry: ``rows`` per tile at constant total PEs."""
    config = fpraker_paper_config()
    tiles = config.tiles * config.tile.rows // rows
    return replace(config, tiles=tiles, tile=replace(config.tile, rows=rows))


def run_fig19_20_rows(
    models: tuple[str, ...] = STUDIED_MODELS,
    rows_options: tuple[int, ...] = (2, 4, 8, 16),
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> tuple[Table, Table]:
    """Figs 19/20: speedup and cycle breakdown vs rows per tile.

    The total PE count is held constant: halving the rows doubles the
    tiles, so only the synchronization structure changes.
    """
    session = _session_for(
        session,
        models,
        tuple(_rows_config(rows) for rows in rows_options),
        progress,
        seed,
    )
    speed_table = Table(
        "Fig 19: Speedup vs rows per tile (constant total PEs)",
        ["Model"] + [f"{r} rows" for r in rows_options],
    )
    stall_table = Table(
        "Fig 20: Lane-cycle breakdown vs rows per tile (geomean models)",
        ["Rows", "useful", "no term", "shift range", "inter-PE", "exponent"],
    )
    stall_sums = {r: [] for r in rows_options}
    for model in models:
        base = session.baseline(model, progress, seed)
        row = [model]
        for rows in rows_options:
            result = session.simulate(model, _rows_config(rows), progress, seed)
            row.append(result.speedup_vs(base))
            stall_sums[rows].append(result.counters_total().lanes)
        speed_table.add_row(*row)
    for rows in rows_options:
        merged = {
            key: float(np.mean([l.fractions()[key] for l in stall_sums[rows]]))
            for key in ("useful", "no_term", "shift_range", "inter_pe", "exponent")
        }
        stall_table.add_row(
            f"{rows}",
            merged["useful"],
            merged["no_term"],
            merged["shift_range"],
            merged["inter_pe"],
            merged["exponent"],
        )
    return speed_table, stall_table


def _sakr_profile(model: str) -> dict[str, int]:
    """Per-layer Sakr et al. accumulator widths for Fig 21."""
    spec = get_model(model)
    return sakr_accumulator_profile(
        {
            layer.name: layer.phase_reduction("AxW", spec.batch)
            for layer in spec.layers
        }
    )


def run_fig21_accwidth(
    models: tuple[str, ...] = ("AlexNet", "ResNet18"),
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Fig 21: fixed vs per-layer profiled accumulator widths.

    The profiled variants (AlexNet-P / ResNet18-P) use the Sakr et al.
    per-layer accumulation widths; the narrower accumulators raise the
    OB threshold's bite and FPRaker speeds up with no hardware change.
    """
    session = session if session is not None else SimulationSession()
    profiles = {model: _sakr_profile(model) for model in models}
    session.prefetch(
        [
            SimRequest.make(model, config, progress, seed, acc_profile)
            for model in models
            for config, acc_profile in (
                (baseline_paper_config(), None),
                (None, None),
                (None, profiles[model]),
            )
        ]
    )
    table = Table(
        "Fig 21: Per-layer profiled accumulator width",
        ["Config", "AxW", "GxW", "AxG", "Total speedup vs baseline"],
    )
    for model in models:
        profile = profiles[model]
        base = session.baseline(model, progress, seed)
        for label, acc_profile in ((model, None), (f"{model}-P", profile)):
            result = session.simulate(
                model, None, progress, seed, acc_profile=acc_profile
            )
            table.add_row(
                label,
                result.phase_speedup_vs(base, "AxW"),
                result.phase_speedup_vs(base, "GxW"),
                result.phase_speedup_vs(base, "AxG"),
                result.speedup_vs(base),
            )
    return table


def run_scaleout(
    models: tuple[str, ...] = STUDIED_MODELS,
    nodes: tuple[int, ...] = (1, 2, 4, 8),
    partition: str = "data",
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> tuple[Table, Table]:
    """Scale-out: training-step speedup and energy vs node count.

    Splits each model across N compute nodes under the chosen
    partition scheme (:mod:`repro.scale`), prices the inter-node
    collectives, and reports scaling against the same configuration's
    single-node run.  The N=1 anchor shares its canonical key with
    plain single-node simulations, so sessions that already ran e.g.
    fig11 get it for free.

    Args:
        models: Table-I models to sweep.
        nodes: node counts (the paper-style sweep is 1/2/4/8).
        partition: ``"data"``, ``"model"`` or ``"pipeline"``.
        progress: training progress in [0, 1].
        seed: workload RNG seed.
        session: shared simulation session (None = private).

    Returns:
        Two tables: the aggregate sweep (speedup, efficiency, comm
        share, energy vs N) and the per-node breakdown at ``max(nodes)``.
    """
    from repro.scale.scaleout import single_node_result

    if session is None:
        session = SimulationSession()
    counts = tuple(sorted(set(int(n) for n in nodes)))
    if not counts or counts[0] < 1:
        raise ValueError(f"node counts must be >= 1, got {nodes!r}")
    session.prefetch(
        [
            SimRequest.make(
                model, None, progress, seed, nodes=n, partition=partition
            )
            for model in models
            for n in counts
        ]
    )
    aggregate = Table(
        f"Scale-out ({partition}-parallel): training step vs nodes",
        ["Model", "Nodes", "Cycles", "Speedup vs 1", "Efficiency",
         "Comm share", "Energy (mJ)", "Link energy (mJ)"],
    )
    detail = Table(
        f"Scale-out ({partition}-parallel): per-node breakdown at "
        f"N={counts[-1]}",
        ["Model", "Node", "Layer-phases", "Compute cycles", "Comm cycles",
         "Step cycles", "Energy (mJ)"],
    )
    for model in models:
        anchor = None
        for n in counts:
            run = session.scaleout(model, n, partition, None, progress, seed)
            if n == 1:
                # The N=1 path returns the plain single-node result
                # (shared cache key); view it as a 1-node run.
                run = single_node_result(run, partition)
            if anchor is None:
                anchor = run
            aggregate.add_row(
                model,
                run.nodes,
                run.cycles,
                anchor.cycles / run.cycles,
                anchor.cycles / run.cycles / run.nodes,
                run.comm_cycles / run.cycles if run.cycles else 0.0,
                run.total_energy_nj / 1e6,
                run.link_energy_nj / 1e6,
            )
            if n == counts[-1]:
                for summary in run.node_summaries:
                    detail.add_row(
                        model,
                        summary.node_id,
                        summary.layer_phases,
                        summary.cycles,
                        summary.comm.cycles,
                        summary.step_cycles,
                        (summary.energy.total + summary.comm.energy_nj) / 1e6,
                    )
    return aggregate, detail


def run_pragmatic_comparison(
    models: tuple[str, ...] = STUDIED_MODELS,
    progress: float = 0.5,
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Section I: bfloat16 Bit-Pragmatic vs the bit-parallel baseline.

    The paper reports Pragmatic-FP is on average 1.72x *slower* and
    1.96x *less* energy efficient at iso compute area -- the negative
    result motivating FPRaker's area-focused design.
    """
    session = _session_for(
        session, models, (pragmatic_paper_config(),), progress, seed
    )
    table = Table(
        "Bit-Pragmatic-FP vs baseline (iso compute area)",
        ["Model", "slowdown (x)", "energy inefficiency (x)"],
    )
    slowdowns, inefficiencies = [], []
    for model in models:
        base = session.baseline(model, progress, seed)
        prag = session.pragmatic(model, progress, seed)
        slowdown = prag.cycles / base.cycles
        inefficiency = (
            prag.energy_total().core.total / base.energy_total().core.total
        )
        table.add_row(model, slowdown, inefficiency)
        slowdowns.append(slowdown)
        inefficiencies.append(inefficiency)
    table.add_row("Geomean", geomean(slowdowns), geomean(inefficiencies))
    return table
