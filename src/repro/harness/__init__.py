"""Experiment harness: one entry point per paper table and figure.

Each ``run_*`` function regenerates one artifact of the paper's
evaluation and returns both structured results and a printable
:class:`repro.harness.report.Table`.  The benchmarks under
``benchmarks/`` are thin wrappers around these functions; the
EXPERIMENTS.md file records paper-vs-measured for each.
"""

from repro.harness.report import Table, geomean
from repro.harness.runner import SimRequest, SimulationSession
from repro.harness.experiments import (
    run_table1,
    run_table2,
    run_table3,
    run_fig1_sparsity,
    run_fig2_potential,
    run_fig6_exponents,
    run_fig10_compression,
    run_fig11_speedup,
    run_fig12_energy,
    run_fig13_skipped,
    run_fig14_phases,
    run_fig15_stalls,
    run_fig16_obs_sync,
    run_fig17_accuracy,
    run_fig18_over_time,
    run_fig19_20_rows,
    run_fig21_accwidth,
    run_pragmatic_comparison,
    STUDIED_MODELS,
)

__all__ = [
    "Table",
    "geomean",
    "SimRequest",
    "SimulationSession",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig1_sparsity",
    "run_fig2_potential",
    "run_fig6_exponents",
    "run_fig10_compression",
    "run_fig11_speedup",
    "run_fig12_energy",
    "run_fig13_skipped",
    "run_fig14_phases",
    "run_fig15_stalls",
    "run_fig16_obs_sync",
    "run_fig17_accuracy",
    "run_fig18_over_time",
    "run_fig19_20_rows",
    "run_fig21_accwidth",
    "run_pragmatic_comparison",
    "STUDIED_MODELS",
]
