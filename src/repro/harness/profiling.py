"""Per-stage timing of the simulation pipeline (``repro profile``).

Profiles the four stages a cold figure regeneration pays for one model
-- workload construction, the tile schedule engine, the event-level
memory engine, and base-delta compression measurement -- plus the full
default phase pipeline, and reports machine-readable JSON.  The CI
benchmark-smoke job uploads the document as an artifact, giving every
commit a comparable breakdown of where simulation time goes.

Timings are wall-clock best-of-N (noise-robust on shared runners); the
workload-build stage is measured cold (fresh Gibbs inverse, no workload
cache) *and* through the content-addressed cache, so the reuse layer's
effect is part of the record.
"""

from __future__ import annotations

import json
import time

from repro.core.accelerator import AcceleratorSimulator
from repro.core.config import fpraker_paper_config
from repro.memory.dram import DRAMModel
from repro.memory.traffic import TRANSPOSERS_PER_TILE, phase_traffic
from repro.compression.base_delta import mean_compression_ratio
from repro.traces.synthetic import gibbs_cache_clear
from repro.traces.workload_cache import WorkloadCache
from repro.traces.workloads import build_workloads


def _best_of(fn, repeats: int):
    """Minimum wall time over several runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def profile_pipeline(
    model: str = "NCF",
    progress: float = 0.5,
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Time each pipeline stage for one model's training-step workload.

    Args:
        model: Table-I model name.
        progress: training progress of the profiled workload.
        seed: workload RNG seed.
        repeats: wall-clock measurements per stage (best is kept).

    Returns:
        JSON-ready dict with per-stage seconds and cache statistics.
    """
    config = fpraker_paper_config()
    dram = DRAMModel()

    def build_cold():
        gibbs_cache_clear()
        return build_workloads(model, progress=progress, seed=seed, cache=None)

    build_cold_s, workloads = _best_of(build_cold, repeats)

    cache = WorkloadCache()
    build_workloads(model, progress=progress, seed=seed, cache=cache)
    build_cached_s, _ = _best_of(
        lambda: build_workloads(
            model, progress=progress, seed=seed, cache=cache
        ),
        repeats,
    )

    simulator = AcceleratorSimulator(config)
    schedule_s, result = _best_of(
        lambda: simulator.simulate_workload(workloads), repeats
    )

    memory_s, _ = _best_of(
        lambda: [
            phase_traffic(
                workload,
                dram=dram,
                clock_mhz=config.clock_mhz,
                transposer_units=config.tiles * TRANSPOSERS_PER_TILE,
            )
            for workload in workloads
        ],
        repeats,
    )

    compression_s, _ = _best_of(
        lambda: [
            mean_compression_ratio(workload.values_a, workload.values_b)
            for workload in workloads
        ],
        repeats,
    )

    return {
        "model": model,
        "progress": progress,
        "seed": seed,
        "layer_phases": len(workloads),
        "total_cycles": result.cycles,
        "stages_seconds": {
            "workload_build_cold": build_cold_s,
            "workload_build_cached": build_cached_s,
            "schedule": schedule_s,
            "memory_engine": memory_s,
            "compression": compression_s,
        },
        "workload_cache": {
            "hits": cache.stats.hits,
            "disk_hits": cache.stats.disk_hits,
            "builds": cache.stats.builds,
        },
    }


def render_profile(profile: dict) -> str:
    """The profile as an indented JSON document."""
    return json.dumps(profile, indent=2)
