"""On-disk persistence of simulation results.

One file per canonical simulation key, holding the JSON round-trip of
a :class:`repro.core.accelerator.WorkloadResult` or a
:class:`repro.scale.ScaleOutResult` (via its ``to_dict``; a ``kind``
tag picks the class on the way back).  Python's ``json`` emits
shortest-round-trip float literals, so a loaded result is bit-identical
to the simulated one -- warm ``run`` invocations reproduce cold ones
exactly.

The store is deliberately simple: content-addressed file names (SHA-256
of the key), atomic writes via a temp file, and unreadable or stale
entries treated as misses.  Concurrent readers/writers of the same
directory are safe because a key's content is a pure function of the
key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.core.accelerator import WorkloadResult

# Bump when the result schema or simulator semantics change; stale
# entries from older versions then read as misses instead of poisoning
# warm runs.
# v2: canonical keys carry the memory engine and counters may embed a
# MemoryTrafficResult (hierarchy runs).
# v3: canonical keys carry nodes/partition and entries carry a "kind"
# tag (scale-out results persist alongside single-node ones).
CACHE_VERSION = 3


class ResultCache:
    """Directory-backed store of :class:`WorkloadResult` by canonical key.

    Args:
        root: cache directory (created on first store).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """File path holding the given key's result."""
        digest = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.root / f"{digest}.json"

    def load(self, key: str) -> WorkloadResult | None:
        """Fetch a stored result, or None on any kind of miss.

        Args:
            key: canonical simulation key.

        Returns:
            The deserialized result, or None when the entry is absent,
            unreadable, from another cache version, or keyed differently
            (a hash collision).
        """
        path = self.path_for(key)
        try:
            with path.open() as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
            return None
        try:
            if payload.get("kind") == "scaleout":
                from repro.scale.scaleout import ScaleOutResult

                return ScaleOutResult.from_dict(payload["result"])
            return WorkloadResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, key: str, result: WorkloadResult) -> Path:
        """Persist a result under its key (atomic replace).

        Args:
            key: canonical simulation key.
            result: the simulation outcome to store.

        Returns:
            The path written.
        """
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "kind": (
                "workload" if isinstance(result, WorkloadResult) else "scaleout"
            ),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
