"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups).

    Args:
        values: positive values.

    Returns:
        Their geometric mean (0.0 for an empty list).
    """
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_cell(value) -> str:
    """Format one table cell."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A printable experiment table.

    Attributes:
        title: table caption (names the paper artifact it regenerates).
        headers: column names.
        rows: row cell values (any printable types).
    """

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row.

        Args:
            *cells: cell values, one per column.
        """
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max([len(h)] + [len(row[i]) for row in cells])
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """Extract a column's raw values by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serializable form: title, headers, and native-typed rows.

        Numpy scalars are converted to their Python equivalents so the
        result feeds ``json.dumps`` directly.
        """

        def native(cell):
            return cell.item() if hasattr(cell, "item") else cell

        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[native(cell) for cell in row] for row in self.rows],
        }

    def show(self) -> None:
        """Print the rendered table (with a trailing blank line)."""
        print(self.render())
        print()
