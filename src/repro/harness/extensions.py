"""Extensions beyond the paper's evaluation (its stated future work).

The conclusion sketches two directions this module implements:

* **precision scheduling** -- "training can start with lower precision
  and increase the precision per epoch near convergence.  FPRaker can
  adapt dynamically to different precisions": we sweep the accumulator
  width over training progress and measure the speedup profile;
* **inference** -- "while we evaluated FPRaker for training, it can
  naturally also be used for inference": we run the forward phase alone
  (weights static, serial side chosen freely) and compare against the
  training-mix speedup.
"""

from __future__ import annotations

from repro.core.config import baseline_paper_config
from repro.harness.report import Table, geomean
from repro.harness.runner import SimRequest, SimulationSession
from repro.models.zoo import get_model


def run_precision_schedule(
    model: str = "ResNet18",
    schedule: tuple[tuple[float, int], ...] = (
        (0.1, 6),
        (0.3, 8),
        (0.6, 10),
        (0.9, 12),
    ),
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """Sweep accumulator precision over training progress.

    Early training tolerates narrow accumulation (the gradient noise
    floor is high); near convergence the width grows.  FPRaker turns
    every width reduction into skipped out-of-bounds terms.

    Args:
        model: model to train.
        schedule: (progress, accumulator fractional bits) pairs.
        seed: RNG seed.

    Returns:
        Table of per-stage speedups: scheduled vs fixed 12-bit width.
    """
    spec = get_model(model)
    session = session if session is not None else SimulationSession()
    profiles = {
        frac_bits: {layer.name: frac_bits for layer in spec.layers}
        for _, frac_bits in schedule
    }
    session.prefetch(
        [
            SimRequest.make(model, config, progress, seed, acc_profile)
            for progress, frac_bits in schedule
            for config, acc_profile in (
                (baseline_paper_config(), None),
                (None, profiles[frac_bits]),
                (None, None),
            )
        ]
    )
    table = Table(
        f"Extension: precision-scheduled training of {model}",
        ["Progress", "Acc frac bits", "Speedup (scheduled)", "Speedup (fixed 12b)"],
    )
    scheduled, fixed = [], []
    for progress, frac_bits in schedule:
        base = session.baseline(model, progress, seed)
        narrow = session.simulate(
            model, None, progress, seed, acc_profile=profiles[frac_bits]
        )
        wide = session.simulate(model, None, progress, seed)
        table.add_row(
            f"{progress:.0%}",
            frac_bits,
            narrow.speedup_vs(base),
            wide.speedup_vs(base),
        )
        scheduled.append(narrow.speedup_vs(base))
        fixed.append(wide.speedup_vs(base))
    table.add_row("Geomean", "-", geomean(scheduled), geomean(fixed))
    return table


def run_inference_extension(
    models: tuple[str, ...] = ("VGG16", "ResNet18-Q", "Bert"),
    seed: int = 0,
    session: SimulationSession | None = None,
) -> Table:
    """FPRaker as an inference PE: forward phase only, converged stats.

    Args:
        models: models to evaluate.
        seed: RNG seed.

    Returns:
        Table comparing the inference-only speedup with the
        full-training-step speedup.
    """
    session = session if session is not None else SimulationSession()
    session.prefetch(
        [
            SimRequest.make(model, config, 1.0, seed, phases=phases)
            for model in models
            for config in (None, baseline_paper_config())
            for phases in (("AxW",), None)
        ]
    )
    table = Table(
        "Extension: FPRaker for inference (forward pass only)",
        ["Model", "Inference speedup", "Training-step speedup"],
    )
    for model in models:
        base_fwd = session.baseline(model, 1.0, seed, phases=("AxW",))
        base_full = session.baseline(model, 1.0, seed)
        fpr_fwd = session.simulate(model, None, 1.0, seed, phases=("AxW",))
        fpr_full = session.simulate(model, None, 1.0, seed)
        table.add_row(
            model,
            fpr_fwd.speedup_vs(base_fwd),
            fpr_full.speedup_vs(base_full),
        )
    return table
