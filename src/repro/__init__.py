"""FPRaker reproduction: a term-serial FP processing element for training.

A from-scratch implementation of the system described in "FPRaker: A
Processing Element For Accelerating Neural Network Training" (MICRO
2021): bit-faithful arithmetic models, cycle-level PE/tile/accelerator
simulators, the memory and compression substrate, a training framework
with emulated-FPRaker arithmetic, and a harness regenerating every table
and figure of the paper's evaluation.

Typical entry points::

    from repro.core import FPRakerPE, AcceleratorSimulator
    from repro.nn import MatmulEngine, EngineConfig
    from repro.harness import run_fig11_speedup

or from the shell::

    python -m repro run fig11
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
]
