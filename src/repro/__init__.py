"""FPRaker reproduction: a term-serial FP processing element for training.

A from-scratch implementation of the system described in "FPRaker: A
Processing Element For Accelerating Neural Network Training" (MICRO
2021): bit-faithful arithmetic models, cycle-level PE/tile/accelerator
simulators, the memory and compression substrate, a training framework
with emulated-FPRaker arithmetic, and a harness regenerating every table
and figure of the paper's evaluation.

Typical entry points -- the stable public surface is :mod:`repro.api`::

    import repro.api as api

    result = api.simulate("NCF")              # one cached simulation
    client = api.connect("http://host:8177")  # a repro serve daemon

lower layers stay importable for research use::

    from repro.core import FPRakerPE, AcceleratorSimulator
    from repro.nn import MatmulEngine, EngineConfig
    from repro.harness import run_fig11_speedup

or from the shell::

    python -m repro run fig11
    python -m repro serve --cache .repro-store
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
]


def __getattr__(name: str):
    """Lazy re-export of the :mod:`repro.api` facade.

    Keeps ``import repro`` light (no numpy import) while letting
    ``repro.api`` resolve without a separate import statement.
    """
    if name == "api":
        import repro.api as api

        return api
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
