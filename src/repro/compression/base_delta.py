"""Base-delta encoding of bfloat16 exponent streams.

Groups of :data:`GROUP_SIZE` = 32 consecutive values are encoded as
(paper Fig 9):

* a 3-bit header holding the group's delta precision ``P``;
* the 8-bit base exponent (the first value's exponent field);
* 32 two's-complement deltas of ``P`` bits each.

The sign and 7-bit significand of every value travel verbatim.  When a
group's deltas cannot fit 7 bits, the group escapes to raw 8-bit
exponents (header value 7 plus a raw flag in practice; we charge the
full raw cost, which is conservative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.bfloat16 import bf16_to_bits

GROUP_SIZE = 32
HEADER_BITS = 3
BASE_BITS = 8
RAW_EXP_BITS = 8
MAX_DELTA_BITS = 7  # 3-bit header encodes widths 0..7
# Sign + significand bits stored verbatim per value.
VERBATIM_BITS = 1 + 7


@dataclass
class CompressedGroup:
    """One base-delta group.

    Attributes:
        base: base exponent field (the first value's).
        precision: delta width in bits (0..7), or ``RAW_EXP_BITS`` for an
            escaped raw group.
        deltas: int64 array of 32 deltas (raw exponents when escaped).
    """

    base: int
    precision: int
    deltas: np.ndarray

    @property
    def bits(self) -> int:
        """Storage cost of the group's exponent stream in bits."""
        if self.precision >= RAW_EXP_BITS:
            return HEADER_BITS + BASE_BITS + GROUP_SIZE * RAW_EXP_BITS
        return HEADER_BITS + BASE_BITS + GROUP_SIZE * self.precision

    def exponents(self) -> np.ndarray:
        """Reconstruct the group's exponent fields."""
        if self.precision >= RAW_EXP_BITS:
            return self.deltas.astype(np.int64)
        return self.base + self.deltas


# Two's-complement widths for the delta range base-delta can produce
# from 8-bit exponent fields (|delta| <= 255): index ``delta + 256``.
def _build_width_lut() -> np.ndarray:
    span = np.arange(-256, 257, dtype=np.int64)
    magnitude = np.abs(span).astype(np.float64)
    half, exp = np.frexp(magnitude)
    power_of_two = half == 0.5
    width = np.where(
        span > 0,
        exp + 1,
        np.where(power_of_two, exp, exp + 1),
    )
    return np.where(span == 0, 0, width).astype(np.int64)


_WIDTH_LUT = _build_width_lut()


def _signed_width(deltas: np.ndarray) -> np.ndarray:
    """Two's-complement width needed for each delta (0 for zero).

    Positives need ``bit_length + 1`` (sign bit), negative powers of
    two save one bit (-2^(w-1) is the most negative w-bit value) --
    matching the former log2-based masked formula value for value.
    Exponent-field deltas fit one LUT gather; anything wider (the
    function is public-API-reachable with arbitrary ints) falls back to
    the frexp formula.
    """
    d = deltas.astype(np.int64)
    if d.size == 0 or (-256 <= d.min() and d.max() <= 256):
        return _WIDTH_LUT[d + 256]
    magnitude = np.abs(d).astype(np.float64)
    half, exp = np.frexp(magnitude)
    # |d| in [2^(exp-1), 2^exp): bit_length = exp; power of two when
    # the frexp significand is exactly 0.5.
    power_of_two = half == 0.5
    width = np.where(
        d > 0,
        exp + 1,
        np.where(power_of_two, exp, exp + 1),
    )
    return np.where(d == 0, 0, width).astype(np.int64)


def exponent_fields(values: np.ndarray) -> np.ndarray:
    """Extract the raw 8-bit exponent field of each bfloat16 value.

    Args:
        values: bfloat16-representable array.

    Returns:
        int64 array of exponent fields (0..255), flattened.
    """
    bits = bf16_to_bits(np.asarray(values, dtype=np.float64).ravel())
    return ((bits.astype(np.int64) >> 7) & 0xFF)


def _grouped_widths(
    exponents: np.ndarray, zero_mask: np.ndarray | None
) -> tuple:
    """Group an exponent stream and price every group's delta width.

    The shared front half of :func:`compress_exponents` and
    :func:`exponent_footprint_bits`: zero-padding to whole groups,
    base selection (first live exponent), per-value deltas, and the
    per-group two's-complement width -- all in whole-stream passes.

    Args:
        exponents: int array of exponent fields in group order.
        zero_mask: optional bool array marking zero values.

    Returns:
        ``(grouped, live, bases, deltas, widths)`` arrays (grouped rows
        of :data:`GROUP_SIZE`), or ``(None,) * 5`` for an empty stream.
    """
    exp = np.asarray(exponents, dtype=np.int64).ravel()
    if exp.size == 0:
        return (None,) * 5
    if zero_mask is None:
        zero_mask = np.zeros(exp.size, dtype=bool)
    else:
        zero_mask = np.asarray(zero_mask, dtype=bool).ravel()
        if zero_mask.size != exp.size:
            raise ValueError("zero_mask must match the exponent stream")
    pad = (-exp.size) % GROUP_SIZE
    if pad:
        # Pad with don't-care positions: they never widen a group.
        exp = np.concatenate([exp, np.full(pad, exp[-1], dtype=np.int64)])
        zero_mask = np.concatenate([zero_mask, np.ones(pad, dtype=bool)])
    grouped = exp.reshape(-1, GROUP_SIZE)
    live = ~zero_mask.reshape(-1, GROUP_SIZE)
    # Base = first live exponent of the group (0 for an all-zero group).
    any_live = live.any(axis=1)
    first_live = np.where(any_live, live.argmax(axis=1), 0)
    bases = grouped[np.arange(grouped.shape[0]), first_live]
    bases = np.where(any_live, bases, 0)
    deltas = np.where(live, grouped - bases[:, None], 0)
    widths = _signed_width(deltas).max(axis=1)
    return grouped, live, bases, deltas, widths


def compress_exponents(
    exponents: np.ndarray,
    zero_mask: np.ndarray | None = None,
) -> list[CompressedGroup]:
    """Encode an exponent-field stream into base-delta groups.

    The stream is zero-padded to a multiple of :data:`GROUP_SIZE`
    (padding replicates the base so it costs nothing beyond the group).

    A zero *value* is fully identified by its zero significand, so its
    exponent byte is a don't-care: when ``zero_mask`` is given, zero
    positions encode as delta 0 and never widen the group (the
    decompressor regenerates them from the significand stream).  The
    group's base is the first nonzero value's exponent.

    Args:
        exponents: int array of exponent fields in group order.
        zero_mask: optional bool array marking zero values.

    Returns:
        The encoded groups.
    """
    grouped, live, bases, deltas, widths = _grouped_widths(
        exponents, zero_mask
    )
    if grouped is None:
        return []
    groups = []
    for i in range(grouped.shape[0]):
        width = int(widths[i])
        if width > MAX_DELTA_BITS:
            groups.append(
                CompressedGroup(
                    base=int(bases[i]),
                    precision=RAW_EXP_BITS,
                    deltas=np.where(live[i], grouped[i], 0),
                )
            )
        else:
            groups.append(
                CompressedGroup(
                    base=int(bases[i]),
                    precision=width,
                    deltas=deltas[i].copy(),
                )
            )
    return groups


def decompress_exponents(groups: list[CompressedGroup], count: int) -> np.ndarray:
    """Decode base-delta groups back into an exponent-field stream.

    Args:
        groups: encoded groups.
        count: number of valid exponents (strips the padding).

    Returns:
        int64 array of ``count`` exponent fields.
    """
    if not groups:
        return np.zeros(0, dtype=np.int64)
    full = np.concatenate([g.exponents() for g in groups])
    return full[:count]


def exponent_footprint_bits(
    exponents: np.ndarray, zero_mask: np.ndarray | None = None
) -> int:
    """Total compressed bits of an exponent stream.

    Closed form over all groups at once -- headers and bases per group
    plus :data:`GROUP_SIZE` deltas at each group's width (raw escape
    width for overflowing groups) -- with no per-group objects, no
    Python loop.  Equal by definition to summing
    :attr:`CompressedGroup.bits` over :func:`compress_exponents` (the
    test suite pins the equality).

    Args:
        exponents: int array of exponent fields in group order.
        zero_mask: optional bool array marking zero values (their
            exponent bytes are don't-cares).

    Returns:
        Bits after base-delta compression (headers included).
    """
    _, _, _, _, widths = _grouped_widths(exponents, zero_mask)
    if widths is None:
        return 0
    stored = np.where(widths > MAX_DELTA_BITS, RAW_EXP_BITS, widths)
    return int(
        widths.size * (HEADER_BITS + BASE_BITS) + GROUP_SIZE * stored.sum()
    )


@dataclass
class CompressionSummary:
    """Measured compression of one tensor.

    Attributes:
        n_values: values in the tensor.
        exp_bits_raw: uncompressed exponent bits (8 per value).
        exp_bits_compressed: exponent bits after base-delta encoding.
        bytes_raw: uncompressed tensor bytes (2 per value).
        bytes_compressed: tensor bytes with compressed exponents.
    """

    n_values: int
    exp_bits_raw: int
    exp_bits_compressed: int

    @property
    def exponent_ratio(self) -> float:
        """Normalized exponent footprint (Fig 10's metric)."""
        if self.exp_bits_raw == 0:
            return 1.0
        return self.exp_bits_compressed / self.exp_bits_raw

    @property
    def bytes_raw(self) -> float:
        """Uncompressed byte footprint of the value stream."""
        return self.n_values * 2.0

    @property
    def bytes_compressed(self) -> float:
        """Byte footprint with base-delta-compressed exponents."""
        verbatim_bits = self.n_values * VERBATIM_BITS
        return (verbatim_bits + self.exp_bits_compressed) / 8.0

    @property
    def total_ratio(self) -> float:
        """Whole-value compression ratio (compressed / raw)."""
        if self.n_values == 0:
            return 1.0
        return self.bytes_compressed / self.bytes_raw


def compression_summary(values: np.ndarray) -> CompressionSummary:
    """Measure base-delta compression of a tensor's value stream.

    The array should already be ordered the way it will stream off-chip
    (channel-wise by default; transpose before calling for a spatial
    grouping study).

    Args:
        values: bfloat16-representable array.

    Returns:
        The :class:`CompressionSummary`.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    exponents = exponent_fields(flat)
    zero_mask = flat == 0.0
    return CompressionSummary(
        n_values=int(exponents.size),
        exp_bits_raw=int(exponents.size) * RAW_EXP_BITS,
        exp_bits_compressed=exponent_footprint_bits(exponents, zero_mask),
    )


def compress_tensor_bytes(values: np.ndarray) -> float:
    """Effective off-chip bytes of a tensor with BDC enabled.

    Args:
        values: bfloat16-representable array in streaming order.

    Returns:
        Compressed byte count.
    """
    return compression_summary(values).bytes_compressed


class _BitWriter:
    """Append-only bit stream, MSB-first within bytes."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (two's complement)."""
        mask = (1 << width) - 1
        encoded = value & mask
        for position in range(width - 1, -1, -1):
            self._bits.append((encoded >> position) & 1)

    def to_bytes(self) -> bytes:
        data = bytearray()
        for start in range(0, len(self._bits), 8):
            chunk = self._bits[start : start + 8]
            chunk += [0] * (8 - len(chunk))
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            data.append(byte)
        return bytes(data)

    def __len__(self) -> int:
        return len(self._bits)


class _BitReader:
    """Sequential bit reader matching :class:`_BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    def read(self, width: int, signed: bool = False) -> int:
        """Read ``width`` bits, optionally sign-extending."""
        value = 0
        for _ in range(width):
            byte = self._data[self._position >> 3]
            bit = (byte >> (7 - (self._position & 7))) & 1
            value = (value << 1) | bit
            self._position += 1
        if signed and width > 0 and value >= (1 << (width - 1)):
            value -= 1 << width
        return value


def pack_groups(groups: list[CompressedGroup]) -> bytes:
    """Serialize groups to the actual off-chip bitstream (Fig 9 layout).

    Per group: a 4-bit precision field (3 bits in hardware plus the raw
    escape; we spend the extra bit explicitly), the 8-bit base, then 32
    deltas of ``precision`` bits each.

    Args:
        groups: encoded groups.

    Returns:
        The packed byte stream.
    """
    writer = _BitWriter()
    for group in groups:
        writer.write(group.precision, 4)
        writer.write(group.base, BASE_BITS)
        width = group.precision if group.precision < RAW_EXP_BITS else RAW_EXP_BITS
        for delta in group.deltas:
            if width:
                writer.write(int(delta), width)
    return writer.to_bytes()


def unpack_groups(data: bytes, n_groups: int) -> list[CompressedGroup]:
    """Inverse of :func:`pack_groups`.

    Args:
        data: the packed byte stream.
        n_groups: number of groups to read.

    Returns:
        The decoded groups.
    """
    reader = _BitReader(data)
    groups = []
    for _ in range(n_groups):
        precision = reader.read(4)
        base = reader.read(BASE_BITS)
        width = precision if precision < RAW_EXP_BITS else RAW_EXP_BITS
        signed = precision < RAW_EXP_BITS
        deltas = np.array(
            [reader.read(width, signed=signed) if width else 0 for _ in range(GROUP_SIZE)],
            dtype=np.int64,
        )
        groups.append(
            CompressedGroup(base=base, precision=precision, deltas=deltas)
        )
    return groups


def mean_compression_ratio(values_a, values_b) -> float:
    """Effective/raw byte ratio of a phase's two operand streams.

    The single averaging rule shared by the accelerator's off-chip
    pricing (:meth:`AcceleratorSimulator._effective_dram_bytes`) and
    the traffic engine's roofline comparison: the unweighted mean of
    both tensors' whole-value compression ratios.

    Args:
        values_a: first operand's value sample.
        values_b: second operand's value sample.

    Returns:
        The mean ``compressed / raw`` byte ratio.
    """
    ratio_a = compression_summary(values_a).total_ratio
    ratio_b = compression_summary(values_b).total_ratio
    return (ratio_a + ratio_b) / 2.0
