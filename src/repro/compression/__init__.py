"""Exponent base-delta compression (paper Section IV-D, Figs 9 & 10).

Consecutive values along the channel (and spatial) dimensions of
training tensors have similar magnitudes, hence similar exponents.  The
paper compresses the 8-bit exponents of groups of 32 values as one base
exponent plus 31 narrow deltas whose width is chosen per group and
recorded in a 3-bit header.  Signs and significands are stored verbatim;
only off-chip traffic uses the compressed form.
"""

from repro.compression.base_delta import (
    GROUP_SIZE,
    CompressedGroup,
    compress_exponents,
    decompress_exponents,
    exponent_footprint_bits,
    compression_summary,
    compress_tensor_bytes,
    CompressionSummary,
)

__all__ = [
    "GROUP_SIZE",
    "CompressedGroup",
    "compress_exponents",
    "decompress_exponents",
    "exponent_footprint_bits",
    "compression_summary",
    "compress_tensor_bytes",
    "CompressionSummary",
]
