"""Vectorized memory-traffic engine: tensor shapes to burst schedules.

The roofline path treats off-chip traffic as a featureless byte count
(``cycles = bytes / bandwidth``).  This module models the event-level
path the paper actually describes (Section IV-E) while staying closed
form, so a whole layer-phase costs microseconds to evaluate:

* **containers** -- each DRAM-visiting stream moves in 32x32 bfloat16
  containers (:mod:`repro.memory.container`); edge padding makes the
  burst-granular byte count a little larger than the raw tensor, which
  is exactly the slack the roofline hides;
* **global-buffer banks** -- per-stream strided fetch patterns are
  priced with the same groups-of-``banks`` semantics as
  :meth:`repro.memory.buffers.GlobalBuffer.conflict_cycles`, but
  evaluated in closed form over the pattern's exact period
  (:func:`strided_burst_cycles` is conformance-tested against the
  reference loop);
* **transposers** -- backward-pass weight / activation-gradient streams
  pass through the 8x8 transposer units, whose occupancy
  (:func:`repro.memory.transposer.transpose_throughput_cycles`) can
  gate the stream;
* **scratchpads** -- every operand staged into the per-tile scratchpads
  accrues per-byte energy.

The per-phase outcome is a :class:`MemoryTrafficResult`, which the
``memory_engine="hierarchy"`` dispatch of
:class:`repro.core.accelerator.AcceleratorSimulator` threads through
``SimCounters`` into the harness and its JSON persistence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.memory.container import (
    CONTAINER_BYTES,
    container_count,
    containers_for_bytes,
)
from repro.memory.dram import DRAMModel
from repro.memory.transposer import BLOCK, transpose_throughput_cycles

# Transposer units per tile feeding the backward-pass streams; with the
# paper's 36 tiles that is a bank of 144 units.
TRANSPOSERS_PER_TILE = 4

# Default global-buffer geometry (paper: 9 banks, 16 B accesses); kept
# in sync with :class:`repro.memory.buffers.GlobalBuffer` defaults.
DEFAULT_BANKS = 9
DEFAULT_ACCESS_BYTES = 16


def _pattern_cost(bank_ids: np.ndarray, banks: int) -> tuple[int, int]:
    """Burst cycles and conflicts of one explicit bank-index sequence.

    Accesses are issued in bursts of ``banks`` consecutive entries; a
    burst costs the maximum per-bank multiplicity and every same-bank
    duplicate beyond the first is a conflict -- the semantics of
    :meth:`repro.memory.buffers.GlobalBuffer.read_burst`.
    """
    if bank_ids.size == 0:
        return 0, 0
    groups = np.arange(bank_ids.size) // banks
    table = np.zeros((int(groups[-1]) + 1, banks), dtype=np.int64)
    np.add.at(table, (groups, bank_ids), 1)
    cycles = int(table.max(axis=1).sum())
    conflicts = int((table.sum(axis=1) - (table > 0).sum(axis=1)).sum())
    return cycles, conflicts


def strided_burst_cycles(
    stride_values: int,
    accesses: int,
    banks: int = DEFAULT_BANKS,
    access_bytes: int = DEFAULT_ACCESS_BYTES,
) -> tuple[int, int]:
    """Closed-form cycles/conflicts of a strided global-buffer sweep.

    Exactly equivalent to
    ``GlobalBuffer(banks=banks, access_bytes=access_bytes)
    .conflict_cycles(stride_values, accesses)`` -- the property suite
    pins the equivalence -- but evaluated over one period of the bank
    pattern instead of access by access, so billions of fetches price
    in constant time.

    The pattern ``bank(i) = (i * stride_bytes // access_bytes) % banks``
    is periodic: after ``t = access_bytes / gcd(stride_bytes,
    access_bytes)`` accesses the line index advances by the integer
    ``t * stride_bytes / access_bytes``, and after ``banks /
    gcd(line_step, banks)`` such steps the bank offset returns to zero.
    Aligning that with the burst width gives a period that is a whole
    number of bursts, over which costs simply repeat.

    Args:
        stride_values: stride between consecutive reads, in bfloat16
            values (non-negative).
        accesses: number of reads (non-positive counts cost 0).
        banks: bank count.
        access_bytes: bytes per access line.

    Returns:
        ``(cycles, conflicts)`` of the full sweep.
    """
    if banks < 1:
        raise ValueError(f"banks must be >= 1, got {banks}")
    if access_bytes < 1:
        raise ValueError(f"access_bytes must be >= 1, got {access_bytes}")
    if accesses <= 0:
        return 0, 0
    stride_bytes = int(stride_values) * 2
    t_int = access_bytes // math.gcd(abs(stride_bytes), access_bytes)
    line_step = t_int * stride_bytes // access_bytes
    bank_period = t_int * (banks // math.gcd(abs(line_step), banks))
    period = math.lcm(bank_period, banks)  # whole bursts

    def bank_ids(n: int) -> np.ndarray:
        idx = np.arange(n, dtype=np.int64)
        return ((idx * stride_bytes) // access_bytes) % banks

    if accesses <= period:
        return _pattern_cost(bank_ids(accesses), banks)
    full, remainder = divmod(accesses, period)
    cycles_p, conflicts_p = _pattern_cost(bank_ids(period), banks)
    cycles_r, conflicts_r = _pattern_cost(bank_ids(remainder), banks)
    return full * cycles_p + cycles_r, full * conflicts_p + conflicts_r


@dataclass
class MemoryTrafficResult:
    """Event-level memory-hierarchy activity of one simulation scope.

    All fields are floats so scaled aggregation (:meth:`add` with a
    weight) composes the same way the other simulator ledgers do, and
    ``to_dict``/``from_dict`` round-trip exactly through JSON.

    Attributes:
        dram_bytes: container-granular effective off-chip bytes
            (padding included, base-delta compression applied).
        containers: 32x32 containers moved off-chip.
        dram_cycles: DRAM burst cycles for those containers.
        gb_reads: global-buffer read accesses (PE fetches + drains).
        gb_writes: global-buffer write accesses (DRAM fills + results).
        bank_cycles: global-buffer cycles including bank serialization.
        bank_conflict_cycles: cycles lost to bank conflicts alone
            (``bank_cycles`` minus the conflict-free burst count).
        transposer_blocks: 8x8 groups routed through the transposers.
        transposer_cycles: transposer-bank occupancy in cycles.
        scratchpad_bytes: bytes staged through per-tile scratchpads.
    """

    dram_bytes: float = 0.0
    containers: float = 0.0
    dram_cycles: float = 0.0
    gb_reads: float = 0.0
    gb_writes: float = 0.0
    bank_cycles: float = 0.0
    bank_conflict_cycles: float = 0.0
    transposer_blocks: float = 0.0
    transposer_cycles: float = 0.0
    scratchpad_bytes: float = 0.0

    FIELDS = (
        "dram_bytes",
        "containers",
        "dram_cycles",
        "gb_reads",
        "gb_writes",
        "bank_cycles",
        "bank_conflict_cycles",
        "transposer_blocks",
        "transposer_cycles",
        "scratchpad_bytes",
    )

    @property
    def memory_cycles(self) -> float:
        """Cycles the memory system needs for the scope's traffic.

        DRAM bursts, global-buffer sweeps, and transposer turnaround
        pipeline against each other, so the slowest resource binds.
        """
        return max(self.dram_cycles, self.bank_cycles, self.transposer_cycles)

    def add(self, other: "MemoryTrafficResult", weight: float = 1.0) -> None:
        """Accumulate another result, optionally scaled."""
        for name in self.FIELDS:
            setattr(
                self, name, getattr(self, name) + getattr(other, name) * weight
            )

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryTrafficResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(**{name: float(data[name]) for name in cls.FIELDS})


def _stream_containers(stream) -> float:
    """Containers covering a stream's off-chip bytes (padding included).

    A shaped stream moves ``container_count(shape)`` containers per
    stored copy; the spilled fraction (``dram_bytes / volume_bytes``,
    0 or 1 under the all-or-nothing partition rules) scales that down
    for tensors kept on-chip.
    """
    if not stream.dram_bytes > 0:
        return 0.0
    if stream.shape is None or not stream.volume_bytes > 0:
        return containers_for_bytes(stream.dram_bytes)
    spilled = stream.dram_bytes / stream.volume_bytes
    return container_count(stream.shape) * stream.copies * spilled


# Tensor letter each phase's result stream carries (the convention
# traces/workloads uses: forward produces activations' gradient-side
# counterpart, GxW the input gradient, AxG the weight gradient).
_PHASE_OUTPUT_TENSOR = {"AxW": "G", "GxW": "A", "AxG": "W"}


def _fallback_streams(workload):
    """Synthesized byte-total streams for workloads without geometry."""
    from repro.core.workload import StreamSpec

    streams = []
    if workload.input_bytes > 0:
        streams.append(
            StreamSpec(
                tensor=workload.tensor_a,
                direction="read",
                volume_bytes=workload.input_bytes,
                dram_bytes=workload.input_bytes,
            )
        )
    if workload.output_bytes > 0:
        streams.append(
            StreamSpec(
                tensor=_PHASE_OUTPUT_TENSOR.get(
                    workload.phase, workload.tensor_b
                ),
                direction="write",
                volume_bytes=workload.output_bytes,
                dram_bytes=workload.output_bytes,
            )
        )
    return tuple(streams)


def phase_traffic(
    workload,
    dram: DRAMModel | None = None,
    clock_mhz: float = 600.0,
    banks: int = DEFAULT_BANKS,
    access_bytes: int = DEFAULT_ACCESS_BYTES,
    transposer_units: int = 36 * TRANSPOSERS_PER_TILE,
    compression_ratio: float = 1.0,
) -> MemoryTrafficResult:
    """Price one layer-phase's memory traffic at event granularity.

    Args:
        workload: a :class:`repro.core.workload.PhaseWorkload`; its
            ``streams`` drive the schedule (falling back to the byte
            totals when no geometry is attached).
        dram: off-chip model (defaults to the paper's LPDDR4-3200 x4).
        clock_mhz: accelerator clock.
        banks: global-buffer bank count.
        access_bytes: global-buffer access width.
        transposer_units: 8x8 transposer units available in parallel.
        compression_ratio: effective/raw off-chip byte ratio from
            base-delta compression (1.0 = uncompressed).

    Returns:
        The phase's :class:`MemoryTrafficResult`.  Its ``dram_cycles``
        are always >= the roofline's, because container padding can
        only add bytes on top of the roofline's raw count.
    """
    dram = dram if dram is not None else DRAMModel()
    result = MemoryTrafficResult()
    streams = workload.streams or _fallback_streams(workload)
    for stream in streams:
        containers = _stream_containers(stream)
        if containers > 0:
            fill_bytes = containers * CONTAINER_BYTES
            result.containers += containers
            result.dram_bytes += fill_bytes * compression_ratio
            # Container fills/drains sweep the banks sequentially.
            fill_accesses = fill_bytes / access_bytes
            result.bank_cycles += math.ceil(fill_accesses / banks)
            if stream.direction == "read":
                result.gb_writes += fill_accesses
            else:
                result.gb_reads += fill_accesses
        if stream.volume_bytes > 0:
            accesses = math.ceil(stream.volume_bytes / access_bytes)
            if stream.direction == "read":
                cycles, _ = strided_burst_cycles(
                    stream.stride_values, accesses, banks, access_bytes
                )
                result.gb_reads += accesses
                result.bank_cycles += cycles
                result.bank_conflict_cycles += cycles - math.ceil(
                    accesses / banks
                )
            else:
                result.gb_writes += accesses
                result.bank_cycles += math.ceil(accesses / banks)
            result.scratchpad_bytes += stream.volume_bytes
            if stream.transposed:
                blocks = stream.volume_bytes / (2.0 * BLOCK * BLOCK)
                result.transposer_blocks += blocks
                result.transposer_cycles += transpose_throughput_cycles(
                    blocks, transposer_units
                )
    result.dram_cycles = dram.transfer_cycles(result.dram_bytes, clock_mhz)
    return result


def workload_traffic(
    workloads,
    dram: DRAMModel | None = None,
    clock_mhz: float = 600.0,
    banks: int = DEFAULT_BANKS,
    access_bytes: int = DEFAULT_ACCESS_BYTES,
    transposer_units: int = 36 * TRANSPOSERS_PER_TILE,
    ratio_of=None,
) -> MemoryTrafficResult:
    """Aggregate :func:`phase_traffic` over a list of layer-phases.

    Args:
        workloads: iterable of :class:`PhaseWorkload` items.
        dram: off-chip model shared by all phases.
        clock_mhz: accelerator clock.
        banks: global-buffer bank count.
        access_bytes: global-buffer access width.
        transposer_units: parallel transposer units.
        ratio_of: optional callable mapping a workload to its base-delta
            compression ratio (None = uncompressed).

    Returns:
        The summed :class:`MemoryTrafficResult`.
    """
    total = MemoryTrafficResult()
    for workload in workloads:
        ratio = ratio_of(workload) if ratio_of is not None else 1.0
        total.add(
            phase_traffic(
                workload,
                dram=dram,
                clock_mhz=clock_mhz,
                banks=banks,
                access_bytes=access_bytes,
                transposer_units=transposer_units,
                compression_ratio=ratio,
            )
        )
    return total
