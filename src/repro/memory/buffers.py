"""On-chip buffer models: the banked global buffer and PE scratchpads.

These are activity-counting models: they answer "how many accesses of
what width happened" (feeding the energy model) and "how many bank
conflicts did a stride pattern cause" (the reason the paper gives the
global buffer an odd bank count).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GlobalBuffer:
    """Multi-banked on-chip SRAM global buffer (paper: 4 MB x 9 banks).

    Attributes:
        banks: number of banks; odd (9) so power-of-two strides spread.
        bank_bytes: capacity per bank.
        access_bytes: width of one access (8 bfloat16 values = 16 B).
    """

    banks: int = 9
    bank_bytes: int = 4 * 1024 * 1024
    access_bytes: int = 16
    reads: int = 0
    writes: int = 0
    conflicts: int = 0

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")
        if self.access_bytes < 1:
            raise ValueError(
                f"access_bytes must be >= 1, got {self.access_bytes}"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total capacity."""
        return self.banks * self.bank_bytes

    def bank_of(self, address: int) -> int:
        """Bank an address maps to (line-interleaved)."""
        return (address // self.access_bytes) % self.banks

    def read(self, address: int) -> None:
        """Record one read access."""
        self.reads += 1

    def write(self, address: int) -> None:
        """Record one write access."""
        self.writes += 1

    def read_burst(self, addresses: list[int]) -> int:
        """Issue a set of parallel reads, counting bank conflicts.

        Accesses that map to the same bank serialize; the return value is
        the number of cycles the burst needs.

        Args:
            addresses: byte addresses issued in the same cycle.

        Returns:
            Cycles to satisfy the burst (max accesses per bank); an
            empty burst costs 0 cycles and records no accesses.
        """
        per_bank: dict[int, int] = {}
        for address in addresses:
            bank = self.bank_of(address)
            per_bank[bank] = per_bank.get(bank, 0) + 1
            self.reads += 1
        cycles = max(per_bank.values(), default=0)
        self.conflicts += max(0, sum(per_bank.values()) - len(per_bank))
        return cycles

    def conflict_cycles(self, stride_values: int, accesses: int) -> int:
        """Cycles for ``accesses`` strided reads (stride in values).

        Models the paper's observation that an odd bank count reduces
        conflicts for convolution strides greater than one.

        Args:
            stride_values: stride between consecutive reads, in bfloat16
                values.
            accesses: number of reads (non-positive counts cost 0).

        Returns:
            Total cycles (``ceil(accesses / banks)`` when conflict-free;
            a single access always costs exactly 1 cycle).
        """
        if accesses <= 0:
            return 0
        stride_bytes = stride_values * 2
        addresses = [i * stride_bytes for i in range(accesses)]
        total = 0
        for start in range(0, accesses, self.banks):
            total += self.read_burst(addresses[start : start + self.banks])
        return total


@dataclass
class Scratchpad:
    """Per-tile scratchpad (paper: 2 KB each), access-counting only.

    Tracks access counts and moved bytes for callers driving the
    hardware protocol directly.  (The traffic engine prices scratchpad
    staging in closed form -- ``MemoryTrafficResult.scratchpad_bytes``
    -- rather than through per-access calls here.)
    """

    capacity_bytes: int = 2048
    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def read(self, nbytes: int = 16) -> None:
        """Record a read of ``nbytes``."""
        self.reads += 1
        self.bytes_read += nbytes

    def write(self, nbytes: int = 16) -> None:
        """Record a write of ``nbytes``."""
        self.writes += 1
        self.bytes_written += nbytes
