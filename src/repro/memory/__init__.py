"""Memory-system substrate: containers, transposers, buffers, DRAM.

Training reuses the same arrays in different orders across the three
phases, which defeats the memory layouts inference accelerators use.
The paper's data-supply design (Section IV-E):

* arrays live off-chip in **containers** of 32x32 bfloat16 values whose
  size matches DDR4 row granularity (:mod:`repro.memory.container`);
* on-chip **transposers** re-order 8x8 blocks so the backward pass can
  stream weights/gradients transposed (:mod:`repro.memory.transposer`);
* a multi-banked **global buffer** (4 MB x 9 banks -- odd to dodge
  stride conflicts) plus per-tile scratchpads feed the PEs
  (:mod:`repro.memory.buffers`);
* a 4-channel **LPDDR4-3200** model provides bandwidth and energy
  bookkeeping (:mod:`repro.memory.dram`).

The **traffic engine** (:mod:`repro.memory.traffic`) wires these
components into the simulator's timing path.  Data flows through it in
four stages, one per component above:

1. each layer-phase carries per-stream geometry
   (:class:`repro.core.workload.StreamSpec`); DRAM-visiting streams are
   cut into containers, whose edge padding sets the burst-granular
   off-chip byte count and hence the DRAM cycles;
2. container fills land in the global buffer and PE fetches sweep it
   with the stream's stride; :func:`repro.memory.traffic.strided_burst_cycles`
   prices the sweep with :meth:`GlobalBuffer.conflict_cycles` semantics
   in closed form, yielding bank-stall cycles;
3. backward-pass weight / activation-gradient streams pass through the
   8x8 transposers, whose occupancy can gate the stream;
4. every operand staged into the per-tile scratchpads accrues per-byte
   energy.

The per-phase :class:`repro.memory.traffic.MemoryTrafficResult` rides
on ``SimCounters`` when ``AcceleratorSimulator`` runs with
``memory_engine="hierarchy"``; the default ``"roofline"`` engine keeps
the flat ``bytes / bandwidth`` reference behavior.
"""

from repro.memory.container import (
    CONTAINER_BYTES,
    CONTAINER_SIDE,
    Container,
    pack_containers,
    unpack_containers,
    container_count,
    containers_for_bytes,
)
from repro.memory.transposer import (
    Transposer,
    transpose_blocks,
    transpose_throughput_cycles,
)
from repro.memory.buffers import GlobalBuffer, Scratchpad
from repro.memory.dram import DRAMModel
from repro.memory.traffic import (
    MemoryTrafficResult,
    phase_traffic,
    strided_burst_cycles,
    workload_traffic,
)

__all__ = [
    "CONTAINER_BYTES",
    "CONTAINER_SIDE",
    "Container",
    "pack_containers",
    "unpack_containers",
    "container_count",
    "containers_for_bytes",
    "Transposer",
    "transpose_blocks",
    "transpose_throughput_cycles",
    "GlobalBuffer",
    "Scratchpad",
    "DRAMModel",
    "MemoryTrafficResult",
    "phase_traffic",
    "strided_burst_cycles",
    "workload_traffic",
]
