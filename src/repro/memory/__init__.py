"""Memory-system substrate: containers, transposers, buffers, DRAM.

Training reuses the same arrays in different orders across the three
phases, which defeats the memory layouts inference accelerators use.
The paper's data-supply design (Section IV-E):

* arrays live off-chip in **containers** of 32x32 bfloat16 values whose
  size matches DDR4 row granularity (:mod:`repro.memory.container`);
* on-chip **transposers** re-order 8x8 blocks so the backward pass can
  stream weights/gradients transposed (:mod:`repro.memory.transposer`);
* a multi-banked **global buffer** (4 MB x 9 banks -- odd to dodge
  stride conflicts) plus per-tile scratchpads feed the PEs
  (:mod:`repro.memory.buffers`);
* a 4-channel **LPDDR4-3200** model provides bandwidth and energy
  bookkeeping (:mod:`repro.memory.dram`).
"""

from repro.memory.container import (
    CONTAINER_SIDE,
    Container,
    pack_containers,
    unpack_containers,
    container_count,
)
from repro.memory.transposer import Transposer, transpose_blocks
from repro.memory.buffers import GlobalBuffer, Scratchpad
from repro.memory.dram import DRAMModel

__all__ = [
    "CONTAINER_SIDE",
    "Container",
    "pack_containers",
    "unpack_containers",
    "container_count",
    "Transposer",
    "transpose_blocks",
    "GlobalBuffer",
    "Scratchpad",
    "DRAMModel",
]
