"""Off-chip containers of 32x32 bfloat16 values (paper Section IV-E).

A container holds the values of coordinates ``(c, r, k)`` through
``(c+31, r, k+31)`` of a (channel, row, column) tensor -- a 32-channel by
32-column square at one row -- zero-padded at the edges.  Containers are
stored in channel, column, row order, a granularity that matches DDR4
row sizes so off-chip reads stay at streaming bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fp.bfloat16 import bf16_to_bits, bits_to_bf16

CONTAINER_SIDE = 32
CONTAINER_VALUES = CONTAINER_SIDE * CONTAINER_SIDE
CONTAINER_BYTES = CONTAINER_VALUES * 2  # bfloat16


@dataclass
class Container:
    """One 32x32 square of bfloat16 values.

    Attributes:
        channel: first channel coordinate (multiple of 32).
        row: row coordinate.
        column: first column coordinate (multiple of 32).
        bits: uint16 array of shape ``(32, 32)``, indexed
            ``[channel_offset, column_offset]``.
    """

    channel: int
    row: int
    column: int
    bits: np.ndarray

    def values(self) -> np.ndarray:
        """Decode the container to float64 values."""
        return bits_to_bf16(self.bits)

    def read_vector(self, channel_offset: int, column_offset: int) -> np.ndarray:
        """Read 8 consecutive channel values -- one PE operand fetch.

        Args:
            channel_offset: starting channel within the container
                (multiple of 8).
            column_offset: column within the container.

        Returns:
            float64 array of 8 values.
        """
        block = self.bits[channel_offset : channel_offset + 8, column_offset]
        return bits_to_bf16(block)


def container_count(shape: tuple[int, int, int]) -> int:
    """Containers needed for a (channels, rows, columns) tensor.

    Args:
        shape: tensor dimensions (all positive).

    Returns:
        Number of 32x32 containers, including edge padding.
    """
    channels, rows, columns = shape
    if channels < 1 or rows < 1 or columns < 1:
        raise ValueError(f"dimensions must be positive, got {shape}")
    c_tiles = -(-channels // CONTAINER_SIDE)
    k_tiles = -(-columns // CONTAINER_SIDE)
    return c_tiles * rows * k_tiles


def containers_for_bytes(nbytes: float) -> int:
    """Containers covering an opaque byte count (no geometry known).

    The traffic engine's fallback when a workload carries no per-stream
    shapes: bytes are assumed densely packed, rounded up to whole
    containers.

    Args:
        nbytes: raw byte count (non-positive counts need no containers).

    Returns:
        Number of 32x32 containers.
    """
    if not nbytes > 0:  # also catches NaN
        return 0
    return math.ceil(nbytes / CONTAINER_BYTES)


def pack_containers(tensor: np.ndarray) -> list[Container]:
    """Pack a (channels, rows, columns) tensor into containers.

    The tensor is zero-padded so channels and columns become multiples
    of 32, then cut into squares stored in channel, column, row order.

    Args:
        tensor: float array of shape ``(channels, rows, columns)`` with
            bfloat16-representable values.

    Returns:
        Containers in storage order.
    """
    if tensor.ndim != 3:
        raise ValueError(f"expected a 3-d tensor, got shape {tensor.shape}")
    channels, rows, columns = tensor.shape
    pad_c = (-channels) % CONTAINER_SIDE
    pad_k = (-columns) % CONTAINER_SIDE
    padded = np.pad(tensor, ((0, pad_c), (0, 0), (0, pad_k)))
    bits = bf16_to_bits(padded)
    containers = []
    for c in range(0, padded.shape[0], CONTAINER_SIDE):
        for k in range(0, padded.shape[2], CONTAINER_SIDE):
            for r in range(rows):
                square = bits[c : c + CONTAINER_SIDE, r, k : k + CONTAINER_SIDE]
                containers.append(
                    Container(channel=c, row=r, column=k, bits=square.copy())
                )
    return containers


def unpack_containers(
    containers: list[Container],
    shape: tuple[int, int, int],
) -> np.ndarray:
    """Reassemble a tensor from its containers (inverse of packing).

    Args:
        containers: containers produced by :func:`pack_containers`.
        shape: original (channels, rows, columns) dimensions.

    Returns:
        float64 array of the original shape.
    """
    channels, rows, columns = shape
    pad_c = (-channels) % CONTAINER_SIDE
    pad_k = (-columns) % CONTAINER_SIDE
    out = np.zeros((channels + pad_c, rows, columns + pad_k))
    for container in containers:
        out[
            container.channel : container.channel + CONTAINER_SIDE,
            container.row,
            container.column : container.column + CONTAINER_SIDE,
        ] = container.values()
    return out[:channels, :, :columns]
