"""On-chip 8x8 transposer units (paper Section IV-E).

The weights and activation gradients must be streamed in transposed
order during one of the backward operations.  A transposer reads 8
blocks of 8 bfloat16 values (8-value-wide reads from the on-chip
buffers), writes them as rows of an internal 8x8 buffer, and reads the
buffer back out column by column -- transposing the 8x8 group with no
wide crossbar.
"""

from __future__ import annotations

import numpy as np

BLOCK = 8

# Hardware protocol cost of one 8x8 group: 8 row writes followed by 8
# column reads, with no overlap between fill and drain of one unit.
CYCLES_PER_BLOCK = 2 * BLOCK


def transpose_throughput_cycles(blocks: float, units: int = 1) -> float:
    """Cycles a bank of transposer units needs for ``blocks`` 8x8 groups.

    Models steady-state occupancy: each unit turns one block around in
    :data:`CYCLES_PER_BLOCK` cycles and the blocks of a stream spread
    evenly over the available units.

    Args:
        blocks: number of 8x8 groups to transpose (fractional values
            arise from extrapolated traffic and are allowed).
        units: transposer units working in parallel.

    Returns:
        Occupancy in cycles (0 for non-positive ``blocks``).
    """
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    if not blocks > 0:  # also catches NaN
        return 0.0
    return blocks * CYCLES_PER_BLOCK / units


class Transposer:
    """One transposer unit with its 8x8 internal buffer.

    Usage mirrors the hardware protocol: ``write_row`` eight times, then
    ``read_column`` eight times.
    """

    def __init__(self) -> None:
        self._buffer = np.zeros((BLOCK, BLOCK))
        self._rows_written = 0
        self.reads = 0
        self.writes = 0

    def write_row(self, values: np.ndarray) -> None:
        """Load one 8-value block as the next internal row.

        Args:
            values: 8 values from an 8-value-wide buffer read.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (BLOCK,):
            raise ValueError(f"expected a block of {BLOCK} values, got {values.shape}")
        if self._rows_written >= BLOCK:
            raise RuntimeError("internal buffer full: read columns out first")
        self._buffer[self._rows_written] = values
        self._rows_written += 1
        self.writes += 1

    def read_column(self, column: int) -> np.ndarray:
        """Read one column of the internal buffer -- a transposed block.

        Args:
            column: column index in ``[0, 8)``.

        Returns:
            float64 array of 8 values.
        """
        if self._rows_written < BLOCK:
            raise RuntimeError(
                f"only {self._rows_written}/{BLOCK} rows written; fill first"
            )
        if not 0 <= column < BLOCK:
            raise ValueError(f"column must be in [0, {BLOCK}), got {column}")
        self.reads += 1
        return self._buffer[:, column].copy()

    def drain(self) -> np.ndarray:
        """Read all columns in order and reset for the next group.

        Returns:
            The transposed 8x8 block.
        """
        out = np.stack([self.read_column(c) for c in range(BLOCK)])
        self._rows_written = 0
        return out


def transpose_blocks(matrix: np.ndarray) -> np.ndarray:
    """Transpose a matrix through 8x8 transposer passes.

    Functionally equivalent to ``matrix.T`` for dimensions that are
    multiples of 8, but exercised through the hardware protocol; used to
    validate that the data-supply path can feed the backward pass.

    Args:
        matrix: 2-d array whose dimensions are multiples of 8.

    Returns:
        The transposed matrix.
    """
    rows, cols = matrix.shape
    if rows % BLOCK or cols % BLOCK:
        raise ValueError(f"dimensions must be multiples of {BLOCK}, got {matrix.shape}")
    out = np.zeros((cols, rows))
    unit = Transposer()
    for r0 in range(0, rows, BLOCK):
        for c0 in range(0, cols, BLOCK):
            for r in range(BLOCK):
                unit.write_row(matrix[r0 + r, c0 : c0 + BLOCK])
            out[c0 : c0 + BLOCK, r0 : r0 + BLOCK] = unit.drain()
    return out
