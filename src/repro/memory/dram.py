"""Off-chip DRAM model: 16 GB, 4-channel LPDDR4-3200 (paper Table II).

Bandwidth and energy follow the vendor-model style the paper uses
(Micron's DDR4 power calculator): a peak streaming bandwidth derated by
an efficiency factor, and a per-bit transfer energy.  The container
layout (32x32 squares matching DRAM row sizes) is what justifies the
high streaming efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMModel:
    """LPDDR4-3200 x 4 channels.

    Attributes:
        channels: independent channels.
        transfer_rate_mts: mega-transfers per second per pin set.
        channel_bytes: bytes per transfer per channel (x32 = 4 B).
        efficiency: achieved fraction of peak (row hits dominate thanks
            to the container layout).
        energy_pj_per_bit: transfer energy, vendor-model ballpark for
            LPDDR4.
    """

    channels: int = 4
    transfer_rate_mts: float = 3200.0
    channel_bytes: int = 4
    efficiency: float = 0.85
    energy_pj_per_bit: float = 4.0

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Peak bandwidth in GB/s across all channels."""
        return self.channels * self.transfer_rate_mts * 1e6 * self.channel_bytes / 1e9

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Derated streaming bandwidth in GB/s."""
        return self.peak_bandwidth_gbs * self.efficiency

    def bytes_per_cycle(self, clock_mhz: float) -> float:
        """Deliverable bytes per accelerator clock cycle.

        Args:
            clock_mhz: accelerator clock (paper: 600 MHz).

        Returns:
            Bytes per cycle at the effective bandwidth.
        """
        return self.effective_bandwidth_gbs * 1e9 / (clock_mhz * 1e6)

    def transfer_cycles(self, nbytes: float, clock_mhz: float) -> float:
        """Cycles to move ``nbytes`` at streaming bandwidth.

        Args:
            nbytes: bytes transferred.
            clock_mhz: accelerator clock.

        Returns:
            Transfer time in accelerator cycles.  Zero-byte (or
            negative, or NaN) transfers cost 0 cycles rather than
            propagating NaN into the stall accounting.
        """
        if not nbytes > 0:  # also catches NaN, which fails every compare
            return 0.0
        return nbytes / self.bytes_per_cycle(clock_mhz)

    def transfer_energy_nj(self, nbytes: float) -> float:
        """Energy to move ``nbytes``, in nanojoules.

        Args:
            nbytes: bytes transferred.

        Returns:
            Transfer energy in nJ.
        """
        return nbytes * 8.0 * self.energy_pj_per_bit / 1e3
