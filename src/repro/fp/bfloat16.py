"""Bfloat16 helpers.

Bfloat16 is the operand format of the FPRaker PE: 1 sign bit, 8 exponent
bits (bias 127), 7 significand bits.  All values stay in bfloat16 while in
memory; the PE expands them on the fly.

Two representations are used throughout the code base:

* *float64 carrier*: numpy float64 arrays whose elements are exactly
  representable in bfloat16 (produced by :func:`bf16_quantize`).  All
  arithmetic models consume this representation.
* *raw bits*: uint16 arrays matching the in-memory layout, used by the
  memory-system and compression models.
"""

from __future__ import annotations

import numpy as np

from repro.fp.softfloat import BFLOAT16, decompose, quantize


def bf16_quantize(values: np.ndarray | float, overflow: str = "sat") -> np.ndarray:
    """Round values to bfloat16 (RNE), flushing denormals to zero.

    Args:
        values: input array or scalar.
        overflow: ``"sat"`` (default, training-friendly) or ``"inf"``.

    Returns:
        float64 array exactly representable in bfloat16.
    """
    return quantize(values, BFLOAT16, overflow=overflow)


def bf16_to_bits(values: np.ndarray | float) -> np.ndarray:
    """Encode bfloat16-representable values to raw uint16 bits.

    The layout is the upper half of the IEEE-754 float32 encoding, which
    is exactly how bfloat16 is stored in memory.

    Args:
        values: values already representable in bfloat16.

    Returns:
        uint16 array of raw bfloat16 bit patterns.
    """
    f32 = np.asarray(values, dtype=np.float32)
    u32 = f32.view(np.uint32)
    return (u32 >> 16).astype(np.uint16)


def bits_to_bf16(bits: np.ndarray) -> np.ndarray:
    """Decode raw uint16 bfloat16 bits to a float64 carrier array.

    Args:
        bits: uint16 array of bfloat16 bit patterns.

    Returns:
        float64 array of the represented values.
    """
    u32 = np.asarray(bits, dtype=np.uint32) << 16
    return u32.view(np.float32).astype(np.float64)


def bf16_fields(
    values: np.ndarray | float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split bfloat16 values into (sign, unbiased exp, 8-bit significand, zero mask).

    The significand includes the hidden leading one, so nonzero entries
    lie in ``[128, 255]`` (i.e. ``1.xxxxxxx`` times ``2^exp``).

    Args:
        values: values representable in bfloat16.

    Returns:
        Tuple of numpy arrays ``(sign, exp, man, is_zero)``.
    """
    return decompose(values, BFLOAT16)
