"""Extended-precision accumulation, exactly as the FPRaker PE performs it.

The PE accumulates the products of 8 bfloat16 pairs into a register with
an extended significand: 1 hidden bit, 9 bits of extended precision (the
chunk-based accumulation scheme of Sakr et al. with chunk size 64) and 3
bits for round-to-nearest-even -- 12 fractional bits after the binary
point, plus 4 integer bits to absorb carries, 16 bits in total.

This module provides the *golden reference* for that arithmetic using
exact Python integers.  The FPRaker PE functional model
(:mod:`repro.core.pe`) must match it bit for bit when out-of-bounds
skipping is disabled, and within one accumulator ulp when enabled.

Glossary used throughout:

* a ``Product`` is the exact product of two bfloat16 operands: the two
  8-bit significands multiply into a 16-bit integer ``P`` in
  ``[2^14, 2^16)`` standing for the value ``P * 2^-14`` in ``[1, 4)``,
  scaled by ``2^(Ae+Be)``;
* the *grid* of an accumulation round is ``2^(emax - frac_bits)``:
  every participating value is aligned (RNE) onto it before the sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.bfloat16 import bf16_fields
from repro.fp.softfloat import BFLOAT16, FloatFormat, quantize

_BF16_MAN_BITS = BFLOAT16.man_bits  # 7
_PRODUCT_FRAC_BITS = 2 * _BF16_MAN_BITS  # 14: P * 2^-14 in [1, 4)

# Sentinel exponent for an empty (zero) accumulator; any real exponent of
# a bfloat16 product is far above this.
ZERO_EXP = -(10**9)


@dataclass(frozen=True)
class Product:
    """Exact product of two bfloat16 operands.

    Attributes:
        sign: +1 or -1 (ignored when ``is_zero``).
        exp: ``Ae + Be``, the exponent scaling the ``[1, 4)`` significand.
        sig: 16-bit significand integer ``P`` (value ``P * 2^-14``).
        is_zero: True when either operand is zero.
    """

    sign: int
    exp: int
    sig: int
    is_zero: bool = False

    def value(self) -> float:
        """Exact float value of the product."""
        if self.is_zero:
            return 0.0
        return self.sign * self.sig * 2.0 ** (self.exp - _PRODUCT_FRAC_BITS)


def exact_product(a: float, b: float) -> Product:
    """Form the exact :class:`Product` of two bfloat16-representable scalars.

    Args:
        a: first operand (representable in bfloat16).
        b: second operand (representable in bfloat16).

    Returns:
        The exact product in (sign, exp, sig) form.
    """
    sa, ea, ma, za = bf16_fields(a)
    sb, eb, mb, zb = bf16_fields(b)
    if bool(za) or bool(zb):
        return Product(sign=1, exp=0, sig=0, is_zero=True)
    sign = -1 if int(sa) ^ int(sb) else 1
    return Product(sign=sign, exp=int(ea) + int(eb), sig=int(ma) * int(mb))


@dataclass(frozen=True)
class AccumulatorSpec:
    """Geometry of the extended accumulator.

    Attributes:
        frac_bits: fractional bits after the binary point (paper: 12 =
            9 extended + 3 rounding).  This is also the out-of-bounds
            threshold: aligned term weights beyond ``frac_bits`` positions
            below ``emax`` cannot affect the stored value.
        int_bits: integer bits above the binary point (paper: 4,
            absorbing the worst-case carry of 8 products).
        chunk_size: number of MACs accumulated before the running value
            is flushed into the higher-precision outer sum (Sakr et al.,
            chunk size 64).
    """

    frac_bits: int = 12
    int_bits: int = 4
    chunk_size: int = 64

    @property
    def total_bits(self) -> int:
        """Total significand storage width (paper: 16)."""
        return self.frac_bits + self.int_bits

    @property
    def ob_threshold(self) -> int:
        """Alignment distance beyond which a term is out of bounds."""
        return self.frac_bits


def rne_shift_right(value: int, shift: int) -> int:
    """Arithmetic right shift of a signed integer with round-to-nearest-even.

    Args:
        value: signed integer.
        shift: non-negative shift distance.

    Returns:
        ``round(value / 2**shift)`` with ties to even.
    """
    if shift <= 0:
        return value << (-shift)
    magnitude = abs(value)
    quotient = magnitude >> shift
    remainder = magnitude & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    if remainder > half or (remainder == half and (quotient & 1)):
        quotient += 1
    return -quotient if value < 0 else quotient


class ExtendedAccumulator:
    """The FPRaker accumulator register, modelled exactly.

    State is the pair ``(eacc, sig)`` where the held value equals
    ``sig * 2^(eacc - frac_bits)`` and ``|sig|`` is normalized into
    ``[2^frac_bits, 2^(frac_bits+1))`` (or ``sig == 0``).

    The accumulation of a group of products follows the PE's three
    blocks: the maximum exponent ``emax`` over the products and the
    accumulator is found, every participant is aligned onto the grid
    ``2^(emax - frac_bits)`` with RNE, the aligned integers are summed
    exactly, and the result is renormalized with RNE.
    """

    def __init__(self, spec: AccumulatorSpec | None = None) -> None:
        self.spec = spec if spec is not None else AccumulatorSpec()
        self.eacc: int = ZERO_EXP
        self.sig: int = 0

    def reset(self) -> None:
        """Clear the register to zero."""
        self.eacc = ZERO_EXP
        self.sig = 0

    @property
    def is_zero(self) -> bool:
        """Whether the register holds zero."""
        return self.sig == 0

    def value(self) -> float:
        """Current held value at full extended precision."""
        if self.sig == 0:
            return 0.0
        return self.sig * 2.0 ** (self.eacc - self.spec.frac_bits)

    def read_bf16(self) -> float:
        """Read the register out as bfloat16 (RNE to 7 significand bits)."""
        return float(quantize(self.value(), BFLOAT16, overflow="sat"))

    def accumulate(self, products: list[Product]) -> None:
        """Accumulate one group of exact products (one PE round).

        Args:
            products: the group's products (zeros allowed, any length --
                the PE uses groups of 8).
        """
        live = [p for p in products if not p.is_zero and p.sig != 0]
        if not live and self.sig == 0:
            return
        emax = max([p.exp for p in live] + ([self.eacc] if self.sig else []))
        contributions = [
            (p.sign * p.sig, p.exp - _PRODUCT_FRAC_BITS) for p in live
        ]
        self.accumulate_exact(contributions, emax)

    def accumulate_exact(
        self,
        contributions: list[tuple[int, int]],
        emax: int,
    ) -> None:
        """Accumulate exact values ``m * 2^e`` under the round's ``emax``.

        This is the normative rounding path shared by the reference and
        the term-serial PE: each contribution is aligned (RNE) onto the
        grid ``2^(emax - frac_bits)``, the aligned integers are summed
        exactly together with the aligned register, and the sum is
        renormalized with RNE.

        Args:
            contributions: list of ``(m, e)`` signed-integer mantissa and
                power-of-two exponent pairs (``m`` may be zero).
            emax: the round's maximum exponent (must be at least the
                leading exponent of every contribution and of the held
                value, as the exponent block guarantees).
        """
        frac = self.spec.frac_bits
        total = 0
        for m, e in contributions:
            if m == 0:
                continue
            # Align m * 2^e onto the grid 2^(emax - frac).
            total += rne_shift_right(m, (emax - frac) - e)
        if self.sig:
            total += rne_shift_right(self.sig, emax - self.eacc)
        elif total == 0:
            return
        self._store_normalized(total, emax)

    def accumulate_terms(
        self,
        aligned_terms: list[tuple[int, int]],
        emax: int,
    ) -> None:
        """Accumulate pre-aligned term contributions (the term-serial path).

        Args:
            aligned_terms: list of ``(signed_sig, weight)`` pairs where the
                contribution equals ``signed_sig * 2^-weight`` relative to
                ``2^emax`` -- i.e. already expressed on a power-of-two
                sub-grid of the round.
            emax: the round's maximum exponent.
        """
        frac = self.spec.frac_bits
        total = 0
        for signed_sig, weight in aligned_terms:
            total += rne_shift_right(signed_sig, weight - frac)
        if self.sig:
            total += rne_shift_right(self.sig, emax - self.eacc)
        self._store_normalized(total, emax)

    def _store_normalized(self, total: int, emax: int) -> None:
        """Normalize ``total`` (on grid ``2^(emax-frac)``) into the register."""
        frac = self.spec.frac_bits
        if total == 0:
            self.eacc = ZERO_EXP
            self.sig = 0
            return
        magnitude = abs(total)
        msb = magnitude.bit_length() - 1  # position relative to the grid lsb
        shift = msb - frac
        if shift > 0:
            rounded = rne_shift_right(total, shift)
            # Rounding may carry out and denormalize again.
            if abs(rounded) >= (1 << (frac + 1)):
                rounded = rne_shift_right(rounded, 1)
                shift += 1
            self.sig = rounded
        else:
            self.sig = total << (-shift)
        self.eacc = emax + shift


class ChunkAccumulator:
    """Chunk-based accumulation (Sakr et al.) around the extended register.

    MACs are accumulated in the reduced-precision
    :class:`ExtendedAccumulator`; every ``chunk_size`` MACs the register
    is flushed into an outer sum kept at fp32 precision.  This is the
    accumulation scheme both FPRaker and the paper's optimized baseline
    use, ensuring training convergence within 0.5 % of FP32 on ImageNet.
    """

    def __init__(self, spec: AccumulatorSpec | None = None) -> None:
        self.spec = spec if spec is not None else AccumulatorSpec()
        self.inner = ExtendedAccumulator(self.spec)
        self.outer: float = 0.0
        self._macs_in_chunk = 0

    def reset(self) -> None:
        """Clear all state."""
        self.inner.reset()
        self.outer = 0.0
        self._macs_in_chunk = 0

    def add_group(self, products: list[Product]) -> None:
        """Accumulate a group of products, flushing chunks as needed.

        Args:
            products: one PE round's exact products.
        """
        self.inner.accumulate(products)
        self._macs_in_chunk += len(products)
        if self._macs_in_chunk >= self.spec.chunk_size:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        self.outer = float(
            quantize(self.outer + self.inner.value(), _FP32_FMT, overflow="sat")
        )
        self.inner.reset()
        self._macs_in_chunk = 0

    def result(self) -> float:
        """Final accumulated value (outer sum plus the open chunk)."""
        return float(
            quantize(self.outer + self.inner.value(), _FP32_FMT, overflow="sat")
        )

    def result_bf16(self) -> float:
        """Final value rounded to bfloat16, as written back to memory."""
        return float(quantize(self.result(), BFLOAT16, overflow="sat"))


_FP32_FMT = FloatFormat(exp_bits=8, man_bits=23, name="fp32")


def dot_reference(
    a: np.ndarray,
    b: np.ndarray,
    spec: AccumulatorSpec | None = None,
    group: int = 8,
) -> float:
    """Reference dot product under the paper's accumulation arithmetic.

    Quantizes both vectors to bfloat16, forms exact products in groups of
    ``group`` and chunk-accumulates them.  This is the numerical
    behaviour of the *bit-parallel baseline* PE; FPRaker must reproduce
    it (it only skips work that cannot change this result).

    Args:
        a: first vector.
        b: second vector (same length).
        spec: accumulator geometry (default: the paper's).
        group: MACs per accumulation round (default 8, one PE group).

    Returns:
        The accumulated dot product as a float.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    from repro.fp.bfloat16 import bf16_quantize

    aq = np.atleast_1d(bf16_quantize(a))
    bq = np.atleast_1d(bf16_quantize(b))
    acc = ChunkAccumulator(spec)
    for start in range(0, aq.size, group):
        chunk_a = aq[start : start + group]
        chunk_b = bq[start : start + group]
        products = [exact_product(x, y) for x, y in zip(chunk_a, chunk_b)]
        acc.add_group(products)
    return acc.result()
