"""Software floating-point substrate.

This package implements the numerical formats FPRaker operates on:

* :mod:`repro.fp.softfloat` -- a generic (sign, exponent, significand)
  format with round-to-nearest-even quantization, vectorized over numpy
  arrays.  Denormals are not supported, matching the paper's assumption.
* :mod:`repro.fp.bfloat16` -- the bfloat16 instantiation used by all
  datapaths, plus raw uint16 bit conversions.
* :mod:`repro.fp.accumulator` -- the extended-precision accumulator of the
  FPRaker PE (4 integer + 12 fractional bits, RNE) and the chunk-based
  accumulation scheme of Sakr et al. that the paper adopts.
"""

from repro.fp.softfloat import (
    FloatFormat,
    BFLOAT16,
    FP16,
    FP32,
    decompose,
    compose,
    quantize,
)
from repro.fp.bfloat16 import (
    bf16_quantize,
    bf16_to_bits,
    bits_to_bf16,
    bf16_fields,
)
from repro.fp.accumulator import (
    AccumulatorSpec,
    ExtendedAccumulator,
    ChunkAccumulator,
    Product,
    exact_product,
)

__all__ = [
    "FloatFormat",
    "BFLOAT16",
    "FP16",
    "FP32",
    "decompose",
    "compose",
    "quantize",
    "bf16_quantize",
    "bf16_to_bits",
    "bits_to_bf16",
    "bf16_fields",
    "AccumulatorSpec",
    "ExtendedAccumulator",
    "ChunkAccumulator",
    "Product",
    "exact_product",
]
