"""Generic software floating-point formats.

A :class:`FloatFormat` describes an IEEE-754-like binary format by its
exponent and significand widths.  All conversions are vectorized over
numpy float64 arrays, which can represent every value of every format we
care about (bfloat16, fp16, fp32 significands all fit in float64's 52-bit
significand), so quantization is exact.

Denormals are flushed to zero: the paper assumes they are not supported
("the MSBs of the activations are guaranteed to be one (given denormals
are not supported)").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-like binary floating point format.

    Attributes:
        exp_bits: width of the biased exponent field.
        man_bits: width of the stored significand field (excluding the
            hidden leading 1).
        name: human-readable name used in reports.
    """

    exp_bits: int
    man_bits: int
    name: str = "custom"

    @property
    def bias(self) -> int:
        """Exponent bias (IEEE convention)."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite normal value."""
        return (1 << self.exp_bits) - 2 - self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal value."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        frac = 2.0 - 2.0 ** (-self.man_bits)
        return frac * 2.0 ** self.emax

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** self.emin

    @property
    def total_bits(self) -> int:
        """Total storage width: sign + exponent + significand."""
        return 1 + self.exp_bits + self.man_bits

    def __str__(self) -> str:
        return f"{self.name}(e{self.exp_bits}m{self.man_bits})"


BFLOAT16 = FloatFormat(exp_bits=8, man_bits=7, name="bfloat16")
FP16 = FloatFormat(exp_bits=5, man_bits=10, name="fp16")
FP32 = FloatFormat(exp_bits=8, man_bits=23, name="fp32")


def quantize(
    values: np.ndarray | float,
    fmt: FloatFormat,
    overflow: str = "inf",
) -> np.ndarray:
    """Round values to ``fmt`` with round-to-nearest-even.

    Denormal results are flushed to (signed) zero.  Overflow either
    saturates to the largest finite magnitude (``overflow="sat"``) or
    produces infinity (``overflow="inf"``, IEEE behaviour).

    Args:
        values: array (or scalar) of finite float64 values.
        fmt: target format.
        overflow: ``"inf"`` or ``"sat"``.

    Returns:
        float64 array whose every element is exactly representable in
        ``fmt``.
    """
    if overflow not in ("inf", "sat"):
        raise ValueError(f"overflow must be 'inf' or 'sat', got {overflow!r}")
    x = np.asarray(values, dtype=np.float64)
    # Whole-array passes (no boolean gather/scatter): zeros flow
    # through as zeros -- frexp(0) is (0, 0), so every later product is
    # (+)0 and the denormal flush pins the sign -- and non-finite lanes
    # compute garbage under a muted errstate that the final where
    # discards in favor of the original value.
    with np.errstate(invalid="ignore", over="ignore"):
        man, exp = np.frexp(np.abs(x))
        # frexp yields man in [0.5, 1); shift to the [1, 2) convention.
        exp = exp - 1
        # Round the significand to man_bits fractional bits (man in [1,2)).
        scaled = np.ldexp(man, fmt.man_bits + 1)  # in [2^m, 2^(m+1))
        rounded = _round_half_even(scaled)
        # Rounding can push the significand to 2.0 exactly.
        carry = rounded >= np.ldexp(1.0, fmt.man_bits + 1)
        rounded = np.where(carry, rounded / 2.0, rounded)
        exp = exp + carry.astype(np.int64)
        # rounded == significand * 2^man_bits, so the value is
        # rounded * 2^(exp - man_bits).
        result = np.ldexp(rounded, exp - fmt.man_bits) * np.sign(x)
        # Flush denormals (magnitude below the smallest normal) to zero.
        result = np.where(np.abs(result) < fmt.min_normal, 0.0, result)
        # Handle overflow.
        over = np.abs(result) > fmt.max_value
        if overflow == "sat":
            result = np.where(over, np.sign(result) * fmt.max_value, result)
        else:
            result = np.where(over, np.copysign(np.inf, result), result)
    # Propagate infinities and NaN unchanged.
    return np.where(np.isfinite(x), result, x)


def decompose(
    values: np.ndarray | float, fmt: FloatFormat
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split values (already representable in ``fmt``) into bit fields.

    Args:
        values: finite values exactly representable in ``fmt``.
        fmt: the format.

    Returns:
        Tuple ``(sign, exp, man, is_zero)`` where ``sign`` is 0/1,
        ``exp`` the *unbiased* exponent (int64, 0 where zero), ``man``
        the significand as an integer in ``[2^man_bits, 2^(man_bits+1))``
        including the hidden bit (0 where zero), and ``is_zero`` a bool
        mask.
    """
    x = np.asarray(values, dtype=np.float64)
    sign = (np.signbit(x)).astype(np.int64)
    is_zero = x == 0.0
    man_f, exp = np.frexp(np.abs(x))
    exp = exp - 1  # significand convention [1, 2)
    man = np.rint(np.ldexp(man_f, fmt.man_bits + 1)).astype(np.int64)
    man = np.where(is_zero, 0, man)
    exp = np.where(is_zero, 0, exp).astype(np.int64)
    return sign, exp, man, is_zero


def compose(
    sign: np.ndarray,
    exp: np.ndarray,
    man: np.ndarray,
    fmt: FloatFormat,
) -> np.ndarray:
    """Inverse of :func:`decompose`.

    Args:
        sign: 0/1 array.
        exp: unbiased exponents.
        man: significand integers including the hidden bit; 0 means zero.
        fmt: the format.

    Returns:
        float64 array of the encoded values.
    """
    man = np.asarray(man, dtype=np.int64)
    exp = np.asarray(exp, dtype=np.int64)
    sign = np.asarray(sign, dtype=np.int64)
    mag = np.ldexp(man.astype(np.float64), exp - fmt.man_bits)
    return np.where(sign == 1, -mag, mag)


def _round_half_even(x: np.ndarray) -> np.ndarray:
    """Round to nearest integer, ties to even (numpy's rint semantics)."""
    return np.rint(x)


def round_significand(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Round values to ``1 + frac_bits`` significand bits (RNE), any exponent.

    This is the normalization step of the extended accumulator: the
    exponent range is unconstrained, only the significand is narrowed.

    Args:
        values: float64 array.
        frac_bits: fractional significand bits to keep.

    Returns:
        float64 array rounded to the requested precision.
    """
    x = np.asarray(values, dtype=np.float64)
    # Whole-array passes, as in quantize: zeros survive as (+)0 exactly
    # like the former masked scatter produced, non-finite lanes are
    # restored by the final where.
    with np.errstate(invalid="ignore"):
        man, exp = np.frexp(np.abs(x))
        scaled = np.ldexp(man, frac_bits + 1)
        rounded = _round_half_even(scaled)
        result = np.ldexp(rounded, exp - 1 - frac_bits) * np.sign(x)
        # Zeros (either sign) come out as +0, as the masked path did.
        result = np.where(x == 0.0, 0.0, result)
    return np.where(np.isfinite(x), result, x)


def ulp(value: float, fmt: FloatFormat) -> float:
    """Unit in the last place of ``value`` in format ``fmt``.

    Args:
        value: a finite nonzero value.
        fmt: the format.

    Returns:
        The spacing between ``value`` and the next representable value of
        the same sign.
    """
    if value == 0.0:
        return fmt.min_normal * 2.0 ** (-fmt.man_bits)
    _, exp = np.frexp(abs(value))
    return float(2.0 ** (int(exp) - 1 - fmt.man_bits))
