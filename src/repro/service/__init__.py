"""Simulation-as-a-service: daemon, shared result store, and client.

The service layer is the repo's "millions of users" path: every request
after the first for a given canonical simulation key is a store hit.
It is one layer above the in-process API -- the daemon normalizes wire
requests through the exact canonical-key machinery
:class:`repro.harness.runner.SimulationSession` uses, so the HTTP
surface and the Python surface (:mod:`repro.api`) answer every request
from the same shared store with byte-identical results.

Modules:

* :mod:`repro.service.store` -- sqlite-backed shared result store
  (generalizes the per-file JSON :class:`repro.harness.cache.ResultCache`),
  ``CACHE_VERSION``-aware eviction, legacy-cache importer.
* :mod:`repro.service.wire` -- versioned JSON wire schema shared by the
  daemon and the client (envelopes, result encoding, error shapes).
* :mod:`repro.service.daemon` -- the asyncio HTTP daemon behind
  ``repro serve``: request dedup, in-flight coalescing, worker-pool
  fan-out, ``hit|miss|pending`` provenance.
* :mod:`repro.service.client` -- stdlib HTTP client
  (:func:`repro.api.connect` returns one).
"""

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
    connect,
)
from repro.service.store import ResultStore

__all__ = [
    "ResultStore",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeoutError",
    "connect",
]
