"""The ``repro serve`` asyncio HTTP daemon.

A deliberately small, stdlib-only HTTP/1.1 server (asyncio streams; no
web framework, no new runtime dependency) that turns the in-process
:class:`repro.harness.runner.SimulationSession` contract into a shared
service:

* every wire request is normalized through the **same canonical-key
  machinery** the session uses (:func:`repro.harness.runner.canonical_key`
  under the daemon's :class:`repro.harness.runner.SessionConfig`), so a
  daemon answer is byte-identical to an in-process run with the same
  configuration;
* keys are deduplicated three ways: against the shared
  :class:`repro.service.store.ResultStore`, against **in-flight**
  computations (concurrent requests for one key coalesce onto one
  simulation), and within a ``/sweep`` batch;
* cache misses fan out over a persistent
  :class:`concurrent.futures.ProcessPoolExecutor` sized by
  ``config.jobs`` (a thread pool in ``use_processes=False`` test mode);
* every per-request answer carries ``hit|miss|pending`` provenance
  (see :mod:`repro.service.wire` for the envelope shapes).

Endpoints: ``POST /simulate``, ``POST /sweep``, ``GET /stats``,
``GET /healthz``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import queue
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.harness.cache import CACHE_VERSION
from repro.harness.runner import (
    SessionConfig,
    SessionStats,
    SimRequest,
    WIRE_SCHEMA_VERSION,
    canonical_key,
    execute_request,
)
from repro.service import wire
from repro.service.store import ResultStore

# Upper bound on accepted request bodies (16 MiB covers the largest
# realistic sweep envelope by orders of magnitude).
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceDaemon:
    """Shared-store simulation service over one asyncio event loop.

    Args:
        config: session configuration every simulation runs under --
            the daemon-side analogue of constructing one
            :class:`SimulationSession` for all clients.  ``jobs`` sizes
            the worker pool; ``cache_dir`` is ignored (the store
            replaces the per-file JSON cache).
        store: the shared result store to dedup against.
        use_processes: run cold simulations on a process pool (the
            production path).  False uses a thread pool -- identical
            results, cheaper startup -- for tests and single-shot use.
    """

    def __init__(
        self,
        config: SessionConfig,
        store: ResultStore,
        *,
        use_processes: bool = True,
    ) -> None:
        self.config = config
        self.store = store
        self.use_processes = use_processes
        self.stats = SessionStats()
        self._inflight: dict[str, asyncio.Future] = {}
        self._executor: Executor | None = None
        self._server: asyncio.AbstractServer | None = None

    # -- request resolution ------------------------------------------------

    def key_of(self, request: SimRequest) -> str:
        """Canonical key of a request under the daemon's configuration."""
        return canonical_key(
            request,
            self.config.sample_strips,
            self.config.sample_steps,
            self.config.sim_seed,
            self.config.memory_engine,
        )

    def _pool(self) -> Executor:
        """The lazily-created persistent worker pool."""
        if self._executor is None:
            if self.use_processes:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.jobs
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.jobs,
                    thread_name_prefix="repro-serve",
                )
        return self._executor

    async def _run(self, key: str, request: SimRequest):
        """Execute one cold simulation on the pool and persist it."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._pool(),
                execute_request,
                request,
                self.config.sample_strips,
                self.config.sample_steps,
                self.config.sim_seed,
                self.config.memory_engine,
                self.config.workload_cache_spec,
            )
            self.stats.simulations += 1
            self.store.store(key, result)
            return result
        finally:
            self._inflight.pop(key, None)

    async def resolve(self, request: SimRequest, wait: bool = True) -> dict:
        """Answer one request with ``hit|miss|pending`` provenance.

        Args:
            request: the validated simulation request.
            wait: block until the result exists (False turns an
                unfinished computation into a ``pending`` answer).

        Returns:
            One response entry: ``status``/``key`` always, plus
            ``kind``/``result`` when the status is not ``pending``.
        """
        key = self.key_of(request)
        inflight = self._inflight.get(key)
        if inflight is not None:
            if not wait:
                return {"status": "pending", "key": key}
            result = await asyncio.shield(inflight)
            self.stats.hits += 1
            return {"status": "hit", "key": key, **wire.encode_result(result)}
        cached = self.store.load(key)
        if cached is not None:
            self.stats.disk_hits += 1
            return {"status": "hit", "key": key, **wire.encode_result(cached)}
        future = asyncio.ensure_future(self._run(key, request))
        self._inflight[key] = future
        if not wait:
            return {"status": "pending", "key": key}
        result = await asyncio.shield(future)
        return {"status": "miss", "key": key, **wire.encode_result(result)}

    async def resolve_sweep(
        self, requests: list[SimRequest], wait: bool = True
    ) -> dict:
        """Answer a batched sweep, deduplicating within the batch.

        Every unique canonical key resolves exactly once (concurrently);
        duplicate entries share the answer and report ``hit``.

        Args:
            requests: validated requests, envelope order preserved.
            wait: as in :meth:`resolve`.

        Returns:
            The ``/sweep`` response body: per-entry ``results`` plus a
            batch-level ``stats`` tally of hit/miss/pending counts.
        """
        unique: dict[str, SimRequest] = {}
        keys = []
        for request in requests:
            key = self.key_of(request)
            keys.append(key)
            unique.setdefault(key, request)
        answers = await asyncio.gather(
            *(
                self.resolve(request, wait=wait)
                for request in unique.values()
            )
        )
        by_key = dict(zip(unique.keys(), answers))
        entries = []
        tally = {"hit": 0, "miss": 0, "pending": 0}
        seen: set[str] = set()
        for key in keys:
            answer = by_key[key]
            if key in seen and answer["status"] == "miss":
                # A duplicate within the batch rode along on the first
                # occurrence's simulation: that's a hit, not a miss.
                answer = {**answer, "status": "hit"}
            seen.add(key)
            entries.append(answer)
            tally[answer["status"]] += 1
        return {
            "schema": wire.ENVELOPE_SCHEMA,
            "results": entries,
            "stats": tally,
        }

    def stats_body(self) -> dict:
        """The ``/stats`` response body."""
        return {
            "schema": wire.ENVELOPE_SCHEMA,
            "stats": {
                "hits": self.stats.hits,
                "disk_hits": self.stats.disk_hits,
                "simulations": self.stats.simulations,
            },
            "store": self.store.stats(),
            "inflight": len(self._inflight),
            "config": self.config.to_dict(),
            "versions": {
                "cache_version": CACHE_VERSION,
                "wire_schema": WIRE_SCHEMA_VERSION,
                "envelope_schema": wire.ENVELOPE_SCHEMA,
            },
        }

    # -- HTTP plumbing -----------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Route one HTTP request to its endpoint."""
        if path == "/healthz":
            if method != "GET":
                return 405, wire.error_body("use GET for /healthz")
            return 200, {"schema": wire.ENVELOPE_SCHEMA, "ok": True}
        if path == "/stats":
            if method != "GET":
                return 405, wire.error_body("use GET for /stats")
            return 200, self.stats_body()
        if path == "/simulate":
            if method != "POST":
                return 405, wire.error_body("use POST for /simulate")
            request, wait = wire.parse_simulate(wire.parse_body(body))
            answer = await self.resolve(request, wait=wait)
            return 200, {"schema": wire.ENVELOPE_SCHEMA, **answer}
        if path == "/sweep":
            if method != "POST":
                return 405, wire.error_body("use POST for /sweep")
            requests, wait = wire.parse_sweep(wire.parse_body(body))
            return 200, await self.resolve_sweep(requests, wait=wait)
        return 404, wire.error_body(
            f"unknown path {path!r}; endpoints: /simulate, /sweep, "
            "/stats, /healthz"
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP/1.1 request (Connection: close semantics)."""
        status, payload = 500, wire.error_body("internal error")
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return  # connection opened and dropped; nothing to answer
            method, raw_path = parts[0].upper(), parts[1]
            path = raw_path.split("?", 1)[0]
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError:
                        length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                status, payload = 413, wire.error_body(
                    f"body must be 0..{MAX_BODY_BYTES} bytes"
                )
            else:
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload = await self._dispatch(method, path, body)
                except wire.WireFormatError as exc:
                    status, payload = 400, wire.error_body(str(exc))
                except Exception as exc:
                    status, payload = 500, wire.error_body(
                        f"internal error: {type(exc).__name__}: {exc}"
                    )
            await self._write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to do
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        """Emit one JSON response and flush."""
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections.

        Args:
            host: interface to bind.
            port: TCP port (0 picks a free one; read :attr:`port` back).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        assert self._server is not None, "daemon not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (call after :meth:`start`)."""
        assert self._server is not None, "daemon not started"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, cancel in-flight work, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for future in list(self._inflight.values()):
            future.cancel()
        self._inflight.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


async def _serve(
    config: SessionConfig,
    store: ResultStore,
    host: str,
    port: int,
    use_processes: bool,
    ready: "queue.Queue[int] | None" = None,
) -> None:
    """Start a daemon and serve until cancelled."""
    daemon = ServiceDaemon(config, store, use_processes=use_processes)
    await daemon.start(host, port)
    print(
        f"repro serve: listening on http://{host}:{daemon.port} "
        f"(store: {store.path}, jobs: {config.jobs}, "
        f"memory_engine: {config.memory_engine})",
        flush=True,
    )
    if ready is not None:
        ready.put(daemon.port)
    try:
        await daemon.serve_forever()
    finally:
        await daemon.aclose()


def run_daemon(
    config: SessionConfig,
    store: ResultStore,
    host: str = "127.0.0.1",
    port: int = 8177,
    use_processes: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Args:
        config: daemon-wide session configuration.
        store: the shared result store.
        host: interface to bind.
        port: TCP port.
        use_processes: thread-pool test mode when False.

    Returns:
        Process exit code (0 on clean shutdown via Ctrl-C).
    """
    try:
        asyncio.run(_serve(config, store, host, port, use_processes))
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
    return 0


@contextlib.contextmanager
def background_daemon(
    config: SessionConfig,
    store: ResultStore,
    host: str = "127.0.0.1",
    *,
    use_processes: bool = False,
):
    """Run a daemon on a background thread (tests, notebooks, smoke).

    Yields:
        ``(daemon base URL, thread)`` once the server is accepting
        connections; the daemon is cancelled and joined on exit.
    """
    ready: "queue.Queue[int]" = queue.Queue()
    loop = asyncio.new_event_loop()

    def _target() -> None:
        asyncio.set_event_loop(loop)
        task = loop.create_task(
            _serve(config, store, host, 0, use_processes, ready)
        )
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=_target, daemon=True, name="repro-serve")
    thread.start()
    bound_port = ready.get(timeout=30)
    try:
        yield f"http://{host}:{bound_port}", thread
    finally:
        def _cancel() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(_cancel)
        thread.join(timeout=30)
