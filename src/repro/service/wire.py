"""Versioned JSON wire schema shared by the daemon and the client.

One schema, two transports: the envelope shapes defined here ride over
HTTP between :mod:`repro.service.daemon` and
:mod:`repro.service.client`, and every request body embeds the *same*
:class:`repro.harness.runner.SimRequest` wire form the in-process API
uses -- the HTTP surface is the Python surface, one layer apart.

Request envelopes (all POST bodies)::

    {"schema": 1, "request": {<SimRequest wire form>}, "wait": true}
    {"schema": 1, "requests": [{...}, {...}], "wait": true}

Response envelopes::

    {"schema": 1, "status": "hit|miss|pending", "key": "...",
     "kind": "workload|scaleout", "result": {...}}          # /simulate
    {"schema": 1, "results": [{...}], "stats": {...}}       # /sweep
    {"schema": 1, "error": "<actionable message>"}          # any 4xx

``status`` provenance: ``hit`` -- served from the shared store or an
in-flight computation another request started; ``miss`` -- this request
triggered a cold simulation; ``pending`` -- the simulation is running
and the caller asked not to wait (``"wait": false``).
"""

from __future__ import annotations

import json

from repro.core.accelerator import WorkloadResult
from repro.harness.runner import SimRequest, WireFormatError

# The envelope schema version (rides next to SimRequest's own
# WIRE_SCHEMA_VERSION; both are 1 until an incompatible change).
ENVELOPE_SCHEMA = 1

# Maximum requests accepted in one /sweep envelope -- a backstop
# against unbounded memory, not a throughput limit (batch again).
MAX_SWEEP_REQUESTS = 4096

__all__ = [
    "ENVELOPE_SCHEMA",
    "MAX_SWEEP_REQUESTS",
    "WireFormatError",
    "decode_result",
    "encode_result",
    "error_body",
    "parse_body",
    "parse_simulate",
    "parse_sweep",
]


def parse_body(raw: bytes) -> dict:
    """Decode and envelope-check one HTTP request body.

    Args:
        raw: the request body bytes.

    Returns:
        The parsed JSON object.

    Raises:
        WireFormatError: when the body is not a JSON object or names an
            unsupported envelope schema.
    """
    try:
        payload = json.loads(raw.decode("utf-8") if raw else "null")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"request body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise WireFormatError(
            "request body must be a JSON object envelope, got "
            f"{type(payload).__name__}"
        )
    schema = payload.get("schema", ENVELOPE_SCHEMA)
    if schema != ENVELOPE_SCHEMA:
        raise WireFormatError(
            f"unsupported envelope schema {schema!r}; this daemon speaks "
            f"schema {ENVELOPE_SCHEMA}"
        )
    return payload


def _parse_wait(payload: dict) -> bool:
    """The envelope's ``wait`` flag (default True)."""
    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        raise WireFormatError(
            f"field 'wait' must be a boolean, got {wait!r}"
        )
    return wait


def parse_simulate(payload: dict) -> tuple[SimRequest, bool]:
    """Validate a ``/simulate`` envelope.

    Args:
        payload: parsed request body.

    Returns:
        ``(request, wait)``.

    Raises:
        WireFormatError: on a missing/malformed ``request`` field.
    """
    if "request" not in payload:
        raise WireFormatError(
            "envelope must carry a 'request' object (the SimRequest "
            "wire form; see docs/SERVICE.md)"
        )
    return SimRequest.from_dict(payload["request"]), _parse_wait(payload)


def parse_sweep(payload: dict) -> tuple[list[SimRequest], bool]:
    """Validate a ``/sweep`` envelope.

    Args:
        payload: parsed request body.

    Returns:
        ``(requests, wait)`` -- requests in envelope order (duplicates
        allowed; the daemon dedups by canonical key).  An empty list is
        a valid (trivial) sweep: the daemon answers it with zero
        results and an all-zero tally rather than an error, mirroring
        ``repro.api.sweep([])``.

    Raises:
        WireFormatError: on a missing/malformed ``requests`` list, an
            oversized sweep, or any invalid entry (the message carries
            the entry's index).
    """
    requests = payload.get("requests")
    if not isinstance(requests, list):
        raise WireFormatError(
            "envelope must carry a 'requests' list of SimRequest wire "
            "forms (an empty list is a valid empty sweep)"
        )
    if len(requests) > MAX_SWEEP_REQUESTS:
        raise WireFormatError(
            f"sweep of {len(requests)} requests exceeds the "
            f"{MAX_SWEEP_REQUESTS}-request envelope limit; batch again"
        )
    parsed = []
    for index, entry in enumerate(requests):
        try:
            parsed.append(SimRequest.from_dict(entry))
        except WireFormatError as exc:
            raise WireFormatError(f"requests[{index}]: {exc}")
    return parsed, _parse_wait(payload)


def encode_result(result) -> dict:
    """Kind-tag and serialize one result for a response envelope.

    The same kind-tagged shape the stores persist, so client-side
    decoding and store decoding share one contract.

    Args:
        result: a :class:`WorkloadResult` or ``ScaleOutResult``.

    Returns:
        ``{"kind": ..., "result": ...}``.
    """
    kind = "workload" if isinstance(result, WorkloadResult) else "scaleout"
    return {"kind": kind, "result": result.to_dict()}


def decode_result(kind: str, data: dict):
    """Deserialize a response envelope's result by its kind tag.

    Args:
        kind: ``"workload"`` or ``"scaleout"``.
        data: the ``result`` object of the envelope.

    Returns:
        The deserialized result object.

    Raises:
        WireFormatError: on an unknown kind tag or malformed payload.
    """
    try:
        if kind == "scaleout":
            from repro.scale.scaleout import ScaleOutResult

            return ScaleOutResult.from_dict(data)
        if kind == "workload":
            return WorkloadResult.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed {kind} result payload: {exc}")
    raise WireFormatError(
        f"unknown result kind {kind!r}; expected 'workload' or 'scaleout'"
    )


def error_body(message: str) -> dict:
    """The error envelope for a 4xx response."""
    return {"schema": ENVELOPE_SCHEMA, "error": message}
