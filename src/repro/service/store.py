"""Sqlite-backed shared result store.

The generalization of :class:`repro.harness.cache.ResultCache` (one
JSON file per key) into a single-file store the ``repro serve`` daemon
can share across many clients and worker restarts:

* **same contract** -- keys are the canonical simulation keys of
  :func:`repro.harness.runner.canonical_key`; values round-trip through
  the same kind-tagged ``to_dict``/``from_dict`` JSON the file cache
  uses, so a loaded result is bit-identical to the simulated one;
* **version-aware** -- every row records the
  :data:`repro.harness.cache.CACHE_VERSION` it was written under;
  rows from other versions read as misses and are swept by
  :meth:`ResultStore.evict_stale` (run automatically on open);
* **single-writer / multi-reader safe** -- WAL journaling plus a busy
  timeout let any number of reader connections coexist with one
  writer; writes are additionally serialized per instance with a lock
  so one store object can be shared across threads;
* **self-healing** -- a row whose payload no longer parses is deleted
  on first read and reported as a miss instead of poisoning the store;
* **importable** -- :meth:`ResultStore.import_legacy` migrates an
  existing ``--cache`` directory of per-file JSON entries in one call,
  preserving results byte-for-byte.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path

from repro.core.accelerator import WorkloadResult
from repro.harness.cache import CACHE_VERSION

# Name of the sqlite file when the store is given a directory.
STORE_FILENAME = "results.sqlite"

# Version of the store's own table layout (independent of the result
# schema, which CACHE_VERSION tracks).  A mismatch means a different
# build wrote the file; the store refuses rather than guessing.
STORE_SCHEMA = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS results (
    key     TEXT PRIMARY KEY,
    version INTEGER NOT NULL,
    kind    TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _encode(result) -> tuple[str, str]:
    """(kind tag, JSON payload) of one result object."""
    kind = "workload" if isinstance(result, WorkloadResult) else "scaleout"
    return kind, json.dumps(result.to_dict())


def _decode(kind: str, payload: str):
    """Deserialize one row's payload by its kind tag.

    Returns:
        The result object, or None when the payload is malformed.
    """
    try:
        data = json.loads(payload)
        if kind == "scaleout":
            from repro.scale.scaleout import ScaleOutResult

            return ScaleOutResult.from_dict(data)
        if kind == "workload":
            return WorkloadResult.from_dict(data)
        return None
    except (KeyError, TypeError, ValueError):
        return None


class StoreError(RuntimeError):
    """The store file exists but cannot be used (layout mismatch)."""


class ResultStore:
    """Shared, versioned result store over one sqlite file.

    Args:
        path: the sqlite file, or a directory (the store then lives at
            ``path/results.sqlite``).  Created on first use.
        evict_stale: sweep rows from other ``CACHE_VERSION``s on open
            (default True; pass False to inspect a stale store).

    Raises:
        StoreError: when the file exists but was written under a
            different store layout.
    """

    def __init__(
        self, path: str | os.PathLike, *, evict_stale: bool = True
    ) -> None:
        given = Path(path)
        if given.suffix == ".sqlite" and not given.is_dir():
            self.path = given
        else:
            self.path = given / STORE_FILENAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        with self._lock:
            try:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA busy_timeout=30000")
                self._conn.executescript(_CREATE)
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE name = 'store_schema'"
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                self._conn.close()
                raise StoreError(
                    f"{self.path} is not a usable result store: {exc}"
                ) from exc
            if row is None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (name, value) "
                    "VALUES ('store_schema', ?)",
                    (str(STORE_SCHEMA),),
                )
                self._conn.commit()
            elif row[0] != str(STORE_SCHEMA):
                raise StoreError(
                    f"{self.path} uses store schema {row[0]}, this build "
                    f"speaks schema {STORE_SCHEMA}"
                )
        if evict_stale:
            self.evict_stale()

    # -- core API ----------------------------------------------------------

    def load(self, key: str):
        """Fetch a stored result, or None on any kind of miss.

        A row written under another ``CACHE_VERSION`` is a miss; a row
        whose payload no longer parses is a miss *and* is deleted so
        the next write replaces it cleanly.

        Args:
            key: canonical simulation key.

        Returns:
            The deserialized :class:`WorkloadResult` /
            ``ScaleOutResult``, or None.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT version, kind, payload FROM results WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        version, kind, payload = row
        if version != CACHE_VERSION:
            return None
        result = _decode(kind, payload)
        if result is None:
            # Malformed row: heal by deleting it.
            with self._lock:
                self._conn.execute(
                    "DELETE FROM results WHERE key = ?", (key,)
                )
                self._conn.commit()
        return result

    def store(self, key: str, result) -> None:
        """Persist one result under its canonical key (upsert).

        Args:
            key: canonical simulation key.
            result: a :class:`WorkloadResult` or ``ScaleOutResult``.
        """
        kind, payload = _encode(result)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, version, kind, payload) VALUES (?, ?, ?, ?)",
                (key, CACHE_VERSION, kind, payload),
            )
            self._conn.commit()

    def contains(self, key: str) -> bool:
        """Whether a current-version row exists for the key."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND version = ?",
                (key, CACHE_VERSION),
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        """Number of current-version rows."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE version = ?",
                (CACHE_VERSION,),
            ).fetchone()
        return int(count)

    # -- maintenance -------------------------------------------------------

    def evict_stale(self) -> int:
        """Delete every row written under another ``CACHE_VERSION``.

        Returns:
            The number of rows evicted.
        """
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE version != ?", (CACHE_VERSION,)
            )
            self._conn.commit()
        return cursor.rowcount

    def import_legacy(self, cache_dir: str | os.PathLike) -> int:
        """Migrate a per-file JSON ``--cache`` directory into the store.

        Reads every ``*.json`` entry the directory-backed
        :class:`repro.harness.cache.ResultCache` wrote, skips entries
        that are unreadable or from another ``CACHE_VERSION``, and
        upserts the rest.  The result payload is carried over verbatim
        (the entry's already-serialized ``result`` object), so a
        migrated result deserializes byte-identical to the original.

        Args:
            cache_dir: directory of a legacy ``ResultCache``.

        Returns:
            The number of entries imported.
        """
        root = Path(cache_dir)
        if not root.is_dir():
            return 0
        imported = 0
        for entry in sorted(root.glob("*.json")):
            try:
                payload = json.loads(entry.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict):
                continue
            if payload.get("version") != CACHE_VERSION:
                continue
            key = payload.get("key")
            result = payload.get("result")
            if not isinstance(key, str) or not isinstance(result, dict):
                continue
            kind = payload.get("kind", "workload")
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(key, version, kind, payload) VALUES (?, ?, ?, ?)",
                    (key, CACHE_VERSION, kind, json.dumps(result)),
                )
            imported += 1
        with self._lock:
            self._conn.commit()
        return imported

    def stats(self) -> dict:
        """Store accounting for ``/stats`` (entries, staleness, location)."""
        with self._lock:
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            (current,) = self._conn.execute(
                "SELECT COUNT(*) FROM results WHERE version = ?",
                (CACHE_VERSION,),
            ).fetchone()
        return {
            "path": str(self.path),
            "entries": int(current),
            "stale_entries": int(total) - int(current),
            "cache_version": CACHE_VERSION,
        }

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()
