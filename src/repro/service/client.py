"""Stdlib HTTP client for a ``repro serve`` daemon.

The client mirrors the in-process API one-for-one: the arguments of
:meth:`ServiceClient.simulate` are the arguments of
:func:`repro.api.simulate`, requests travel as the same
:class:`repro.harness.runner.SimRequest` wire form, and results come
back through the same ``from_dict`` deserialization the result caches
use -- so a service answer is byte-identical to a local run under the
daemon's :class:`repro.harness.runner.SessionConfig`.

Connect with :func:`repro.api.connect`::

    client = repro.api.connect("http://127.0.0.1:8177")
    result = client.simulate("NCF")
    batch = client.sweep([{"model": m} for m in ("NCF", "SNLI")])
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse
from dataclasses import dataclass, field

from repro.core.config import AcceleratorConfig
from repro.harness.runner import SimRequest
from repro.service import wire


class ServiceError(RuntimeError):
    """The daemon answered with an error (or could not be reached).

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceConnectionError(ServiceError):
    """No daemon is listening at the client's URL.

    Raised instead of the raw :class:`OSError` so callers can catch
    "daemon is down" distinctly from a daemon-side error; the message
    names the URL and how to start a daemon there.
    """


class ServiceTimeoutError(ServiceError):
    """The daemon accepted the connection but did not answer in time.

    Distinct from :class:`ServiceConnectionError`: the daemon is *up*
    but slow (usually a cold simulation outrunning the client timeout).
    The message names the URL and the timeout that expired.
    """


@dataclass
class SweepOutcome:
    """One ``/sweep`` call's decoded answer.

    Attributes:
        results: per-entry results, envelope order (None for pending).
        statuses: per-entry ``hit|miss|pending`` provenance.
        stats: the daemon's batch tally (hit/miss/pending counts).
    """

    results: list = field(default_factory=list)
    statuses: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def hit_fraction(self) -> float:
        """Fraction of entries answered from the shared store."""
        if not self.statuses:
            return 0.0
        return self.statuses.count("hit") / len(self.statuses)


def _as_request(entry) -> SimRequest:
    """Coerce a SimRequest / wire dict / model name into a request."""
    if isinstance(entry, SimRequest):
        return entry
    if isinstance(entry, str):
        return SimRequest.make(entry)
    return SimRequest.from_dict(entry)


class ServiceClient:
    """Blocking HTTP client bound to one daemon.

    Args:
        base_url: the daemon's root URL (``http://host:port``).
        timeout: per-request socket timeout in seconds for calls that
            may block on a cold simulation (keep this generous).
        poll_timeout: socket timeout for calls that never block on a
            simulation -- health checks, stats, and ``wait=False``
            polls -- so a dead daemon fails in seconds, not after the
            full cold-run ``timeout``.

    Raises:
        ServiceError: on a malformed or non-HTTP URL.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        poll_timeout: float = 10.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if not base_url.startswith("http://") or not parsed.hostname:
            raise ServiceError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.poll_timeout = poll_timeout

    @property
    def url(self) -> str:
        """The daemon root URL this client is bound to."""
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """One HTTP round trip; raises :class:`ServiceError` on failure.

        Args:
            method: HTTP method.
            path: endpoint path.
            body: JSON body (None for GET).
            timeout: socket timeout override; defaults to the client's
                cold-run ``timeout``.
        """
        connection = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, payload, headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except socket.timeout as exc:
            raise ServiceTimeoutError(
                f"daemon at {self.url} did not answer {method} {path} "
                f"within {connection.timeout:g}s ({exc}); the daemon is "
                "reachable but slow -- raise the client timeout if a "
                "cold simulation is expected to run this long"
            )
        except ConnectionError as exc:
            raise ServiceConnectionError(
                f"cannot reach daemon at {self.url}: {exc}; is a "
                f"`repro serve` daemon running there? (see "
                "docs/SERVICE.md)"
            )
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceConnectionError(
                f"cannot reach daemon at {self.url}: {exc}"
            )
        finally:
            connection.close()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            raise ServiceError(
                f"daemon sent a non-JSON response (HTTP {status})",
                status=status,
            )
        if status >= 400 or not isinstance(data, dict):
            message = (
                data.get("error", f"HTTP {status}")
                if isinstance(data, dict)
                else f"HTTP {status}"
            )
            raise ServiceError(message, status=status)
        return data

    # -- endpoints ---------------------------------------------------------

    def healthy(self) -> bool:
        """Whether the daemon answers ``/healthz``."""
        try:
            ok = self._call(
                "GET", "/healthz", timeout=self.poll_timeout
            ).get("ok")
            return bool(ok)
        except ServiceError:
            return False

    def stats(self) -> dict:
        """The daemon's ``/stats`` body (session, store, versions)."""
        return self._call("GET", "/stats", timeout=self.poll_timeout)

    def submit(self, request, wait: bool = True) -> tuple[str, object]:
        """Low-level ``/simulate``: provenance plus (optional) result.

        Args:
            request: a :class:`SimRequest`, its wire-form dict, or a
                bare model name.
            wait: False returns ``("pending", None)`` while the daemon
                computes; such polls run under the short
                ``poll_timeout`` since the daemon answers immediately.

        Returns:
            ``(status, result)`` where status is ``hit|miss|pending``.
        """
        body = {
            "schema": wire.ENVELOPE_SCHEMA,
            "request": _as_request(request).to_dict(),
            "wait": wait,
        }
        answer = self._call(
            "POST",
            "/simulate",
            body,
            timeout=None if wait else self.poll_timeout,
        )
        if answer.get("status") == "pending":
            return "pending", None
        return (
            answer.get("status", "hit"),
            wire.decode_result(answer.get("kind"), answer.get("result")),
        )

    def simulate(
        self,
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
        nodes: int = 1,
        partition: str = "data",
    ):
        """Simulate (or fetch) one model -- the remote twin of
        :func:`repro.api.simulate`.

        Args:
            model: Table-I model name.
            config: accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.
            acc_profile: optional per-layer accumulator widths.
            phases: training phases to include (None = all three).
            nodes: scale-out node count (1 = single node).
            partition: scale-out partition scheme.

        Returns:
            The deserialized result (blocks until available).
        """
        request = SimRequest.make(
            model, config, progress, seed, acc_profile, phases,
            nodes=nodes, partition=partition,
        )
        _, result = self.submit(request, wait=True)
        return result

    def sweep(self, requests, wait: bool = True) -> SweepOutcome:
        """Batch many requests into one ``/sweep`` call.

        Args:
            requests: iterable of :class:`SimRequest`s, wire-form
                dicts, or bare model names (mixed freely).
            wait: False lets unfinished entries come back ``pending``
                and runs the call under the short ``poll_timeout``.

        Returns:
            The decoded :class:`SweepOutcome` (envelope order).  An
            empty ``requests`` iterable is a valid empty sweep: the
            outcome carries zero results and an all-zero stats tally.
        """
        body = {
            "schema": wire.ENVELOPE_SCHEMA,
            "requests": [_as_request(r).to_dict() for r in requests],
            "wait": wait,
        }
        answer = self._call(
            "POST",
            "/sweep",
            body,
            timeout=None if wait else self.poll_timeout,
        )
        outcome = SweepOutcome(stats=answer.get("stats", {}))
        for entry in answer.get("results", []):
            status = entry.get("status", "hit")
            outcome.statuses.append(status)
            outcome.results.append(
                None
                if status == "pending"
                else wire.decode_result(entry.get("kind"), entry.get("result"))
            )
        return outcome


def connect(url: str, timeout: float = 600.0) -> ServiceClient:
    """Open a client against a running ``repro serve`` daemon.

    Args:
        url: daemon root URL (``http://host:port``).
        timeout: per-request socket timeout in seconds.

    Returns:
        A :class:`ServiceClient`.

    Raises:
        ServiceError: when the URL is malformed or the daemon does not
            answer its health check.
    """
    client = ServiceClient(url, timeout=timeout)
    if not client.healthy():
        raise ServiceError(
            f"no repro serve daemon answering at {url} -- start one with "
            "`repro serve` (see docs/SERVICE.md)"
        )
    return client
