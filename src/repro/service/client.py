"""Stdlib HTTP client for a ``repro serve`` daemon.

The client mirrors the in-process API one-for-one: the arguments of
:meth:`ServiceClient.simulate` are the arguments of
:func:`repro.api.simulate`, requests travel as the same
:class:`repro.harness.runner.SimRequest` wire form, and results come
back through the same ``from_dict`` deserialization the result caches
use -- so a service answer is byte-identical to a local run under the
daemon's :class:`repro.harness.runner.SessionConfig`.

Connect with :func:`repro.api.connect`::

    client = repro.api.connect("http://127.0.0.1:8177")
    result = client.simulate("NCF")
    batch = client.sweep([{"model": m} for m in ("NCF", "SNLI")])
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from dataclasses import dataclass, field

from repro.core.config import AcceleratorConfig
from repro.harness.runner import SimRequest
from repro.service import wire


class ServiceError(RuntimeError):
    """The daemon answered with an error (or could not be reached).

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class SweepOutcome:
    """One ``/sweep`` call's decoded answer.

    Attributes:
        results: per-entry results, envelope order (None for pending).
        statuses: per-entry ``hit|miss|pending`` provenance.
        stats: the daemon's batch tally (hit/miss/pending counts).
    """

    results: list = field(default_factory=list)
    statuses: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def hit_fraction(self) -> float:
        """Fraction of entries answered from the shared store."""
        if not self.statuses:
            return 0.0
        return self.statuses.count("hit") / len(self.statuses)


def _as_request(entry) -> SimRequest:
    """Coerce a SimRequest / wire dict / model name into a request."""
    if isinstance(entry, SimRequest):
        return entry
    if isinstance(entry, str):
        return SimRequest.make(entry)
    return SimRequest.from_dict(entry)


class ServiceClient:
    """Blocking HTTP client bound to one daemon.

    Args:
        base_url: the daemon's root URL (``http://host:port``).
        timeout: per-request socket timeout in seconds (cold
            simulations answer only after the simulation finishes, so
            keep this generous).

    Raises:
        ServiceError: on a malformed or non-HTTP URL.
    """

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if not base_url.startswith("http://") or not parsed.hostname:
            raise ServiceError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        """One HTTP round trip; raises :class:`ServiceError` on failure."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, payload, headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach daemon at http://{self.host}:{self.port}: "
                f"{exc}"
            )
        finally:
            connection.close()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            raise ServiceError(
                f"daemon sent a non-JSON response (HTTP {status})",
                status=status,
            )
        if status >= 400 or not isinstance(data, dict):
            message = (
                data.get("error", f"HTTP {status}")
                if isinstance(data, dict)
                else f"HTTP {status}"
            )
            raise ServiceError(message, status=status)
        return data

    # -- endpoints ---------------------------------------------------------

    def healthy(self) -> bool:
        """Whether the daemon answers ``/healthz``."""
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def stats(self) -> dict:
        """The daemon's ``/stats`` body (session, store, versions)."""
        return self._call("GET", "/stats")

    def submit(self, request, wait: bool = True) -> tuple[str, object]:
        """Low-level ``/simulate``: provenance plus (optional) result.

        Args:
            request: a :class:`SimRequest`, its wire-form dict, or a
                bare model name.
            wait: False returns ``("pending", None)`` while the daemon
                computes.

        Returns:
            ``(status, result)`` where status is ``hit|miss|pending``.
        """
        body = {
            "schema": wire.ENVELOPE_SCHEMA,
            "request": _as_request(request).to_dict(),
            "wait": wait,
        }
        answer = self._call("POST", "/simulate", body)
        if answer.get("status") == "pending":
            return "pending", None
        return (
            answer.get("status", "hit"),
            wire.decode_result(answer.get("kind"), answer.get("result")),
        )

    def simulate(
        self,
        model: str,
        config: AcceleratorConfig | None = None,
        progress: float = 0.5,
        seed: int = 0,
        acc_profile: dict[str, int] | None = None,
        phases: tuple[str, ...] | None = None,
        nodes: int = 1,
        partition: str = "data",
    ):
        """Simulate (or fetch) one model -- the remote twin of
        :func:`repro.api.simulate`.

        Args:
            model: Table-I model name.
            config: accelerator config (None = paper FPRaker).
            progress: training progress in [0, 1].
            seed: workload RNG seed.
            acc_profile: optional per-layer accumulator widths.
            phases: training phases to include (None = all three).
            nodes: scale-out node count (1 = single node).
            partition: scale-out partition scheme.

        Returns:
            The deserialized result (blocks until available).
        """
        request = SimRequest.make(
            model, config, progress, seed, acc_profile, phases,
            nodes=nodes, partition=partition,
        )
        _, result = self.submit(request, wait=True)
        return result

    def sweep(self, requests, wait: bool = True) -> SweepOutcome:
        """Batch many requests into one ``/sweep`` call.

        Args:
            requests: iterable of :class:`SimRequest`s, wire-form
                dicts, or bare model names (mixed freely).
            wait: False lets unfinished entries come back ``pending``.

        Returns:
            The decoded :class:`SweepOutcome` (envelope order).
        """
        body = {
            "schema": wire.ENVELOPE_SCHEMA,
            "requests": [_as_request(r).to_dict() for r in requests],
            "wait": wait,
        }
        answer = self._call("POST", "/sweep", body)
        outcome = SweepOutcome(stats=answer.get("stats", {}))
        for entry in answer.get("results", []):
            status = entry.get("status", "hit")
            outcome.statuses.append(status)
            outcome.results.append(
                None
                if status == "pending"
                else wire.decode_result(entry.get("kind"), entry.get("result"))
            )
        return outcome


def connect(url: str, timeout: float = 600.0) -> ServiceClient:
    """Open a client against a running ``repro serve`` daemon.

    Args:
        url: daemon root URL (``http://host:port``).
        timeout: per-request socket timeout in seconds.

    Returns:
        A :class:`ServiceClient`.

    Raises:
        ServiceError: when the URL is malformed or the daemon does not
            answer its health check.
    """
    client = ServiceClient(url, timeout=timeout)
    if not client.healthy():
        raise ServiceError(
            f"no repro serve daemon answering at {url} -- start one with "
            "`repro serve` (see docs/SERVICE.md)"
        )
    return client
