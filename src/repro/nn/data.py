"""Deterministic synthetic datasets.

The paper's accuracy study trains on CIFAR-10/100; no datasets ship in
this offline environment, so we substitute a generated image
classification task with the properties that matter for the study: a
non-trivial decision surface that takes many epochs of real gradient
descent to fit, inputs with the dynamic range of normalized images, and
enough samples that the three arithmetic modes can be told apart only
if one of them actually corrupts training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyntheticDataset:
    """A train/test split of a synthetic classification task.

    Attributes:
        train_x: training inputs.
        train_y: training labels.
        test_x: test inputs.
        test_y: test labels.
        classes: number of classes.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    classes: int

    def batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches of the training split.

        Args:
            batch_size: samples per batch.
            rng: shuffling RNG.

        Returns:
            List of (inputs, labels) batches.
        """
        order = rng.permutation(len(self.train_y))
        return [
            (self.train_x[order[i : i + batch_size]], self.train_y[order[i : i + batch_size]])
            for i in range(0, len(order), batch_size)
        ]


def synthetic_images(
    classes: int = 4,
    samples_per_class: int = 200,
    size: int = 8,
    channels: int = 1,
    noise: float = 0.35,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate a CIFAR-stand-in image classification task.

    Each class is a smooth random template (low-frequency pattern);
    samples are the template under random gain, shift and additive
    noise, normalized like standard image preprocessing.

    Args:
        classes: number of classes.
        samples_per_class: samples generated per class.
        size: image height/width.
        channels: image channels.
        noise: additive noise standard deviation.
        test_fraction: share of samples held out.
        seed: RNG seed (the dataset is fully deterministic).

    Returns:
        The :class:`SyntheticDataset`.
    """
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size))
    templates = []
    for _ in range(classes):
        freq_x, freq_y = rng.uniform(1.0, 3.0, 2)
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, 2)
        base = np.sin(2 * np.pi * freq_x * xx + phase_x) * np.cos(
            2 * np.pi * freq_y * yy + phase_y
        )
        blob_x, blob_y = rng.uniform(0.2, 0.8, 2)
        blob = np.exp(-(((xx - blob_x) ** 2 + (yy - blob_y) ** 2) / 0.05))
        template = base + rng.uniform(0.5, 1.5) * blob
        templates.append(np.stack([template] * channels))
    inputs = []
    labels = []
    for label, template in enumerate(templates):
        for _ in range(samples_per_class):
            gain = rng.uniform(0.7, 1.3)
            shift = rng.uniform(-0.2, 0.2)
            sample = gain * template + shift + rng.normal(0, noise, template.shape)
            inputs.append(sample)
            labels.append(label)
    x = np.stack(inputs)
    y = np.asarray(labels, dtype=np.int64)
    # Standardize like image preprocessing.
    x = (x - x.mean()) / (x.std() + 1e-8)
    order = rng.permutation(len(y))
    x, y = x[order], y[order]
    n_test = int(len(y) * test_fraction)
    return SyntheticDataset(
        train_x=x[n_test:],
        train_y=y[n_test:],
        test_x=x[:n_test],
        test_y=y[:n_test],
        classes=classes,
    )
