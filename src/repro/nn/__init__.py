"""A from-scratch numpy neural-network training framework.

This substrate replaces the paper's PyTorch+GPU trace collection and its
PlaidML ``mad()``-override accuracy study.  Every multiply-accumulate of
every layer (forward, input-gradient and weight-gradient passes) routes
through a :class:`repro.nn.fpmath.MatmulEngine`, which can run in three
arithmetic modes:

* ``fp32``  -- native single precision (the paper's "Native_FP32");
* ``bf16``  -- bfloat16 operands with the extended-precision chunk-based
  accumulator (the paper's "Baseline_BF16");
* ``fpraker`` -- the same accumulator fed by the FPRaker PE's term-serial
  arithmetic with out-of-bounds term skipping (the paper's
  "FPRaker_BF16").

Layers expose their input/weight/gradient tensors so training runs
double as trace generators for the sparsity, exponent and performance
studies.
"""

from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import (
    Layer,
    Dense,
    Conv2d,
    ReLU,
    MaxPool2d,
    Flatten,
    Dropout,
    BatchNorm2d,
)
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.training import Trainer, TrainingHistory, TraceRecorder
from repro.nn.data import synthetic_images, SyntheticDataset
from repro.nn.recurrent import LSTM, synthetic_sequences
from repro.nn.attention import MultiHeadSelfAttention, MeanPool
from repro.nn.quantize import PactQuantizer
from repro.nn.prune import MagnitudePruner
from repro.nn.sakr import sakr_accumulator_profile

__all__ = [
    "EngineConfig",
    "MatmulEngine",
    "Layer",
    "Dense",
    "Conv2d",
    "ReLU",
    "MaxPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm2d",
    "Sequential",
    "LSTM",
    "synthetic_sequences",
    "MultiHeadSelfAttention",
    "MeanPool",
    "SGD",
    "Trainer",
    "TrainingHistory",
    "TraceRecorder",
    "synthetic_images",
    "SyntheticDataset",
    "PactQuantizer",
    "MagnitudePruner",
    "sakr_accumulator_profile",
]
