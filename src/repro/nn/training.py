"""Training loop, metrics history, and trace capture.

The :class:`TraceRecorder` plays the role of the paper's PyTorch
forward/backward hooks: it snapshots every MAC layer's input, weight and
output-gradient tensors at chosen epochs, quantized to bfloat16 as they
would be stored in the accelerator's memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fp.bfloat16 import bf16_quantize
from repro.nn.data import SyntheticDataset
from repro.nn.functional import accuracy, cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import SGD


@dataclass
class TrainingHistory:
    """Per-epoch metrics of one training run.

    Attributes:
        train_loss: mean training loss per epoch.
        train_accuracy: training accuracy per epoch.
        test_accuracy: held-out accuracy per epoch.
    """

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Last epoch's held-out accuracy."""
        return self.test_accuracy[-1] if self.test_accuracy else 0.0

    @property
    def best_test_accuracy(self) -> float:
        """Best held-out accuracy over the run."""
        return max(self.test_accuracy) if self.test_accuracy else 0.0


@dataclass
class TraceRecorder:
    """Capture per-layer I/W/G tensors at chosen epochs.

    Attributes:
        epochs: epochs to capture (empty: capture nothing).
        snapshots: ``epoch -> layer -> tensor-name -> bfloat16 values``.
    """

    epochs: tuple[int, ...] = ()
    snapshots: dict[int, dict[str, dict[str, np.ndarray]]] = field(
        default_factory=dict
    )

    def maybe_capture(self, epoch: int, network: Sequential) -> None:
        """Capture the network's traced tensors if this epoch is watched.

        Args:
            epoch: current epoch index.
            network: the network, right after a backward pass.
        """
        if epoch not in self.epochs:
            return
        snapshot: dict[str, dict[str, np.ndarray]] = {}
        for layer_name, tensors in network.traced_tensors().items():
            snapshot[layer_name] = {
                name: bf16_quantize(values) for name, values in tensors.items()
            }
        self.snapshots[epoch] = snapshot

    def tensor_across_layers(self, epoch: int, name: str) -> np.ndarray:
        """Concatenate one tensor kind over all layers of a snapshot.

        Args:
            epoch: captured epoch.
            name: ``"I"``, ``"W"`` or ``"G"``.

        Returns:
            1-d array of all captured values of that kind.
        """
        parts = [
            tensors[name].ravel()
            for tensors in self.snapshots[epoch].values()
            if name in tensors
        ]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)


class Trainer:
    """Mini-batch SGD training driver.

    Args:
        network: the model.
        optimizer: parameter updater.
        batch_size: mini-batch size.
        seed: RNG seed for batch shuffling (deterministic runs).
    """

    def __init__(
        self,
        network: Sequential,
        optimizer: SGD,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    def evaluate(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on a dataset split.

        Args:
            inputs: input tensor.
            labels: int labels.

        Returns:
            Top-1 accuracy.
        """
        logits = self.network.forward(inputs, training=False)
        return accuracy(logits, labels)

    def fit(
        self,
        dataset: SyntheticDataset,
        epochs: int,
        recorder: TraceRecorder | None = None,
        hooks: list | None = None,
    ) -> TrainingHistory:
        """Train for a number of epochs.

        Args:
            dataset: train/test data.
            epochs: epochs to run.
            recorder: optional trace capture.
            hooks: optional callables ``hook(epoch, network)`` run after
                each epoch (quantizers, pruners).

        Returns:
            The :class:`TrainingHistory`.
        """
        history = TrainingHistory()
        for epoch in range(epochs):
            losses = []
            accuracies = []
            for batch_x, batch_y in dataset.batches(self.batch_size, self.rng):
                logits = self.network.forward(batch_x, training=True)
                loss, grad = cross_entropy(logits, batch_y)
                self.network.backward(grad)
                self.optimizer.step(self.network.parameters())
                losses.append(loss)
                accuracies.append(accuracy(logits, batch_y))
            if recorder is not None:
                recorder.maybe_capture(epoch, self.network)
            for hook in hooks or []:
                hook(epoch, self.network)
            history.train_loss.append(float(np.mean(losses)))
            history.train_accuracy.append(float(np.mean(accuracies)))
            history.test_accuracy.append(
                self.evaluate(dataset.test_x, dataset.test_y)
            )
        return history
