"""Recurrent layers: an LSTM with explicit backpropagation through time.

SNLI and Image2Text in the paper are LSTM models; their MAC work is the
gate projections ``x_t W_x + h_{t-1} W_h`` repeated per timestep, which
is exactly the weight-reuse pattern that makes batching matter for the
accelerator.  Every gate matmul routes through the shared arithmetic
engine, so LSTM training runs under emulated FPRaker arithmetic too.
"""

from __future__ import annotations

import numpy as np

from repro.nn.fpmath import MatmulEngine
from repro.nn.layers import Layer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class LSTM(Layer):
    """A single-layer LSTM over full sequences, last hidden state out.

    Input is ``(batch, time, features)``; output is the final hidden
    state ``(batch, hidden)`` (the encoder use of SNLI).  Gates follow
    the standard order i, f, g, o; the forget gate starts with a +1
    bias, the usual trick for stable training.

    Args:
        in_features: input feature width.
        hidden: hidden state width.
        engine: shared arithmetic engine.
        rng: initializer RNG.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        engine: MatmulEngine,
        rng: np.random.Generator,
        name: str = "lstm",
    ) -> None:
        self.name = name
        self.engine = engine
        self.in_features = in_features
        self.hidden = hidden
        scale_x = np.sqrt(1.0 / in_features)
        scale_h = np.sqrt(1.0 / hidden)
        self.w_x = rng.normal(0.0, scale_x, (in_features, 4 * hidden))
        self.w_h = rng.normal(0.0, scale_h, (hidden, 4 * hidden))
        self.bias = np.zeros(4 * hidden)
        self.bias[hidden : 2 * hidden] = 1.0  # forget-gate bias
        self.w_x_grad = np.zeros_like(self.w_x)
        self.w_h_grad = np.zeros_like(self.w_h)
        self.bias_grad = np.zeros_like(self.bias)
        self._cache: list[tuple] = []
        self._x_steps: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"expected (batch, time, {self.in_features}), got {x.shape}"
            )
        batch, time, _ = x.shape
        h = np.zeros((batch, self.hidden))
        c = np.zeros((batch, self.hidden))
        self._cache = []
        self._x_steps = []
        w_x = self.engine.quantize_tensor(self.w_x)
        w_h = self.engine.quantize_tensor(self.w_h)
        for t in range(time):
            x_t = self.engine.quantize_tensor(x[:, t, :])
            gates = (
                self.engine.matmul(x_t, w_x)
                + self.engine.matmul(h, w_h)
                + self.bias
            )
            i = _sigmoid(gates[:, : self.hidden])
            f = _sigmoid(gates[:, self.hidden : 2 * self.hidden])
            g = np.tanh(gates[:, 2 * self.hidden : 3 * self.hidden])
            o = _sigmoid(gates[:, 3 * self.hidden :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            if training:
                self._cache.append((h.copy(), c.copy(), i, f, g, o, c_new))
                self._x_steps.append(x_t)
            h, c = h_new, c_new
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward before forward")
        time = len(self._cache)
        batch = grad_out.shape[0]
        w_x = self.engine.quantize_tensor(self.w_x)
        w_h = self.engine.quantize_tensor(self.w_h)
        self.w_x_grad = np.zeros_like(self.w_x)
        self.w_h_grad = np.zeros_like(self.w_h)
        self.bias_grad = np.zeros_like(self.bias)
        grad_x = np.zeros((batch, time, self.in_features))
        dh = grad_out.copy()
        dc = np.zeros((batch, self.hidden))
        for t in reversed(range(time)):
            h_prev, c_prev, i, f, g, o, c_new = self._cache[t]
            tanh_c = np.tanh(c_new)
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            d_gates = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            d_gates = self.engine.quantize_tensor(d_gates)
            # Weight gradients (A x G) and the two input gradients
            # (G x W) -- all through the engine.
            self.w_x_grad += self.engine.matmul(self._x_steps[t].T, d_gates)
            self.w_h_grad += self.engine.matmul(h_prev.T, d_gates)
            self.bias_grad += d_gates.sum(axis=0)
            grad_x[:, t, :] = self.engine.matmul(d_gates, w_x.T)
            dh = self.engine.matmul(d_gates, w_h.T)
            dc = dc * f
        return grad_x

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [
            (self.w_x, self.w_x_grad),
            (self.w_h, self.w_h_grad),
            (self.bias, self.bias_grad),
        ]

    def traced_tensors(self) -> dict[str, np.ndarray]:
        traced = {"W": np.concatenate([self.w_x.ravel(), self.w_h.ravel()])}
        if self._x_steps:
            traced["I"] = np.concatenate([x.ravel() for x in self._x_steps])
        return traced


def synthetic_sequences(
    classes: int = 3,
    samples_per_class: int = 120,
    time: int = 10,
    features: int = 8,
    noise: float = 0.4,
    test_fraction: float = 0.25,
    seed: int = 0,
):
    """A sequence-classification task for the recurrent substrate.

    Each class is a distinct smooth temporal pattern; samples add phase
    jitter and noise.  Returns the same :class:`SyntheticDataset`
    container the image tasks use (inputs shaped ``(n, time, features)``).

    Args:
        classes: number of classes.
        samples_per_class: samples per class.
        time: sequence length.
        features: features per timestep.
        noise: additive noise std.
        test_fraction: held-out share.
        seed: RNG seed.
    """
    from repro.nn.data import SyntheticDataset

    rng = np.random.default_rng(seed)
    t_axis = np.linspace(0, 1, time)[:, None]
    f_axis = np.linspace(0, 1, features)[None, :]
    templates = [
        np.sin(2 * np.pi * rng.uniform(0.8, 2.5) * t_axis + rng.uniform(0, 6))
        * np.cos(2 * np.pi * rng.uniform(0.5, 2.0) * f_axis)
        for _ in range(classes)
    ]
    inputs, labels = [], []
    for label, template in enumerate(templates):
        for _ in range(samples_per_class):
            gain = rng.uniform(0.7, 1.3)
            sample = gain * template + rng.normal(0, noise, template.shape)
            inputs.append(sample)
            labels.append(label)
    x = np.stack(inputs)
    y = np.asarray(labels, dtype=np.int64)
    x = (x - x.mean()) / (x.std() + 1e-8)
    order = rng.permutation(len(y))
    x, y = x[order], y[order]
    n_test = int(len(y) * test_fraction)
    return SyntheticDataset(
        train_x=x[n_test:],
        train_y=y[n_test:],
        test_x=x[:n_test],
        test_y=y[:n_test],
        classes=classes,
    )
