"""Multi-head self-attention with explicit backpropagation.

BERT in the paper is attention MACs: the Q/K/V projections, the
attention-weighted value mix, and the output projection.  All of them
route through the shared arithmetic engine, so transformer-style
training also runs under emulated FPRaker arithmetic -- completing the
substrate coverage of Table I's model families (conv, fc, LSTM,
attention).

The layer consumes ``(batch, time, features)`` and returns the same
shape (one encoder block's attention sub-layer, without the residual /
norm wrappers, which are element-wise).
"""

from __future__ import annotations

import numpy as np

from repro.nn.fpmath import MatmulEngine
from repro.nn.functional import softmax
from repro.nn.layers import Layer


class MultiHeadSelfAttention(Layer):
    """Scaled dot-product self-attention with ``heads`` heads.

    Args:
        features: model width (must divide by ``heads``).
        heads: attention heads.
        engine: shared arithmetic engine.
        rng: initializer RNG.
    """

    def __init__(
        self,
        features: int,
        heads: int,
        engine: MatmulEngine,
        rng: np.random.Generator,
        name: str = "attention",
    ) -> None:
        if features % heads:
            raise ValueError(f"{features} features not divisible by {heads} heads")
        self.name = name
        self.engine = engine
        self.features = features
        self.heads = heads
        self.head_dim = features // heads
        scale = np.sqrt(1.0 / features)
        self.w_qkv = rng.normal(0.0, scale, (features, 3 * features))
        self.w_out = rng.normal(0.0, scale, (features, features))
        self.w_qkv_grad = np.zeros_like(self.w_qkv)
        self.w_out_grad = np.zeros_like(self.w_out)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch*time, features) -> (batch, heads, time, head_dim)."""
        batch, time = self._bt
        return x.reshape(batch, time, self.heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, time, head_dim) -> (batch*time, features)."""
        batch, time = self._bt
        return x.transpose(0, 2, 1, 3).reshape(batch * time, self.features)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.features:
            raise ValueError(
                f"expected (batch, time, {self.features}), got {x.shape}"
            )
        batch, time, _ = x.shape
        self._bt = (batch, time)
        x_flat = self.engine.quantize_tensor(x.reshape(batch * time, -1))
        w_qkv = self.engine.quantize_tensor(self.w_qkv)
        qkv = self.engine.matmul(x_flat, w_qkv)
        q, k, v = np.split(qkv, 3, axis=1)
        q_h = self._split_heads(q)
        k_h = self._split_heads(k)
        v_h = self._split_heads(v)
        # Attention scores head by head through the engine.
        scores = np.empty((batch, self.heads, time, time))
        for b in range(batch):
            for h in range(self.heads):
                scores[b, h] = self.engine.matmul(q_h[b, h], k_h[b, h].T)
        scores /= np.sqrt(self.head_dim)
        weights = softmax(scores.reshape(-1, time)).reshape(scores.shape)
        mixed = np.empty_like(q_h)
        for b in range(batch):
            for h in range(self.heads):
                mixed[b, h] = self.engine.matmul(weights[b, h], v_h[b, h])
        mixed_flat = self._merge_heads(mixed)
        w_out = self.engine.quantize_tensor(self.w_out)
        out = self.engine.matmul(mixed_flat, w_out)
        if training:
            self._cache = (x_flat, q_h, k_h, v_h, weights, mixed_flat)
        return out.reshape(batch, time, self.features)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        batch, time = self._bt
        x_flat, q_h, k_h, v_h, weights, mixed_flat = self._cache
        grad_flat = self.engine.quantize_tensor(
            grad_out.reshape(batch * time, self.features)
        )
        w_out = self.engine.quantize_tensor(self.w_out)
        self.w_out_grad = self.engine.matmul(mixed_flat.T, grad_flat)
        d_mixed = self._split_heads(self.engine.matmul(grad_flat, w_out.T))
        d_q = np.empty_like(q_h)
        d_k = np.empty_like(k_h)
        d_v = np.empty_like(v_h)
        inv_sqrt = 1.0 / np.sqrt(self.head_dim)
        for b in range(batch):
            for h in range(self.heads):
                d_weights = self.engine.matmul(d_mixed[b, h], v_h[b, h].T)
                d_v[b, h] = self.engine.matmul(weights[b, h].T, d_mixed[b, h])
                # Softmax Jacobian, row-wise.
                w_row = weights[b, h]
                d_scores = w_row * (
                    d_weights - (d_weights * w_row).sum(axis=1, keepdims=True)
                )
                d_scores *= inv_sqrt
                d_q[b, h] = self.engine.matmul(d_scores, k_h[b, h])
                d_k[b, h] = self.engine.matmul(d_scores.T, q_h[b, h])
        d_qkv = np.concatenate(
            [self._merge_heads(d) for d in (d_q, d_k, d_v)], axis=1
        )
        w_qkv = self.engine.quantize_tensor(self.w_qkv)
        self.w_qkv_grad = self.engine.matmul(x_flat.T, d_qkv)
        grad_x = self.engine.matmul(d_qkv, w_qkv.T)
        return grad_x.reshape(batch, time, self.features)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.w_qkv, self.w_qkv_grad), (self.w_out, self.w_out_grad)]

    def traced_tensors(self) -> dict[str, np.ndarray]:
        traced = {
            "W": np.concatenate([self.w_qkv.ravel(), self.w_out.ravel()])
        }
        if self._cache is not None:
            traced["I"] = self._cache[0].copy()
        return traced


class MeanPool(Layer):
    """Mean over the time axis: ``(batch, time, f) -> (batch, f)``."""

    name = "meanpool"

    def __init__(self) -> None:
        self._time = 0

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._time = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        expanded = np.repeat(grad_out[:, None, :], self._time, axis=1)
        return expanded / self._time
