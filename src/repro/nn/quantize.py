"""PACT-style training-time quantization.

ResNet18-Q in the paper is trained with PACT (Choi et al.): activations
clip to a learned bound ``alpha`` and quantize uniformly to ``n`` bits;
weights quantize symmetrically.  The effect FPRaker exploits is that
4-bit-quantized values carried in a bfloat16 container have mantissas
with a short suffix of zeros -- very few CSD terms -- so ResNet18-Q
shows the highest term sparsity of the studied convnets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2d, Dense
from repro.nn.network import Sequential


def pact_quantize_activations(
    x: np.ndarray, alpha: float, bits: int
) -> np.ndarray:
    """PACT forward transform: clip to [0, alpha], quantize to ``bits``.

    Args:
        x: pre-activation tensor (post-ReLU semantics: negatives clip).
        alpha: learned clipping bound.
        bits: quantization bits.

    Returns:
        Quantized tensor (still float, on the quantization grid).
    """
    levels = (1 << bits) - 1
    clipped = np.clip(x, 0.0, alpha)
    return np.round(clipped * levels / alpha) * (alpha / levels)


def quantize_weights_symmetric(w: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform weight quantization.

    Args:
        w: weight tensor.
        bits: quantization bits (one consumed by the sign).

    Returns:
        Quantized weights on a symmetric grid.
    """
    levels = (1 << (bits - 1)) - 1
    scale = np.abs(w).max()
    if scale == 0.0:
        return w.copy()
    return np.round(w * levels / scale) * (scale / levels)


@dataclass
class PactQuantizer:
    """Epoch hook quantizing a network's weights PACT-style.

    Used both to emulate ResNet18-Q trace statistics and to demonstrate
    FPRaker's benefit on quantization-trained models (no specialized
    hardware needed -- the short mantissas alone speed it up).

    Attributes:
        bits: target bits (paper: 4).
        start_epoch: first epoch at which quantization applies (PACT's
            clipping bound needs a few epochs to settle; the paper sees
            ResNet18-Q's speedup rise after epoch 30).
    """

    bits: int = 4
    start_epoch: int = 0

    def __call__(self, epoch: int, network: Sequential) -> None:
        """Quantize all MAC-layer weights in place (epoch hook)."""
        if epoch < self.start_epoch:
            return
        for layer in network.layers:
            if isinstance(layer, (Dense, Conv2d)):
                layer.weight[...] = quantize_weights_symmetric(
                    layer.weight, self.bits
                )
