"""Optimizers for the training framework."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with classical momentum.

    Parameter updates happen in the master precision (float64 here,
    standing in for the fp32 master weights mixed-precision training
    keeps), matching how the paper's baselines train.

    Args:
        lr: learning rate.
        momentum: momentum coefficient (0 disables).
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0
    ) -> None:
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one update to every (parameter, gradient) pair in place.

        Args:
            parameters: pairs from ``Sequential.parameters()``.
        """
        for param, grad in parameters:
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            if self.momentum:
                key = id(param)
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + update
                self._velocity[key] = velocity
                update = velocity
            param -= self.lr * update
