"""Training-time pruning (dynamic sparse reparameterization stand-in).

ResNet50-S2 in the paper trains with dynamic sparse reparameterization
(Mostafa & Wang): a target weight sparsity is *maintained throughout
training* by pruning small weights and regrowing elsewhere.  For trace
purposes what matters is that the weight tensor keeps a high, roughly
constant zero fraction at every epoch, which this magnitude
prune-and-regrow hook provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Conv2d, Dense
from repro.nn.network import Sequential


def prune_by_magnitude(w: np.ndarray, sparsity: float) -> np.ndarray:
    """Zero the smallest-magnitude fraction of a tensor.

    Args:
        w: weight tensor.
        sparsity: target zero fraction in [0, 1).

    Returns:
        Boolean keep-mask of the same shape.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return np.ones_like(w, dtype=bool)
    k = int(w.size * sparsity)
    if k == 0:
        return np.ones_like(w, dtype=bool)
    threshold = np.partition(np.abs(w).ravel(), k - 1)[k - 1]
    return np.abs(w) > threshold


@dataclass
class MagnitudePruner:
    """Epoch hook maintaining weight sparsity during training.

    Attributes:
        sparsity: zero fraction to maintain.
        regrow_fraction: fraction of pruned slots randomly released each
            epoch (the "reparameterization" part -- weights may migrate).
        seed: RNG seed for regrowth.
    """

    sparsity: float = 0.5
    regrow_fraction: float = 0.05
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, epoch: int, network: Sequential) -> None:
        """Prune-and-regrow all MAC-layer weights in place (epoch hook)."""
        for layer in network.layers:
            if not isinstance(layer, (Dense, Conv2d)):
                continue
            keep = prune_by_magnitude(layer.weight, self.sparsity)
            if self.regrow_fraction > 0.0:
                release = self._rng.random(keep.shape) < self.regrow_fraction
                keep |= release
            layer.weight[...] = layer.weight * keep

    def measured_sparsity(self, network: Sequential) -> float:
        """Current zero fraction over all MAC-layer weights."""
        zeros = 0
        total = 0
        for layer in network.layers:
            if isinstance(layer, (Dense, Conv2d)):
                zeros += int((layer.weight == 0.0).sum())
                total += layer.weight.size
        return zeros / total if total else 0.0
