"""Network container: a sequential stack of layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class Sequential:
    """A feed-forward stack of layers sharing one arithmetic engine.

    Args:
        layers: layers in execution order.
    """

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the forward pass.

        Args:
            x: network input.
            training: keep caches for backward.

        Returns:
            Network output (logits).
        """
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Run the backward pass, filling every layer's gradients.

        Args:
            grad: loss gradient w.r.t. the network output.

        Returns:
            Gradient w.r.t. the network input.
        """
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """All (parameter, gradient) pairs in layer order."""
        params = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def traced_tensors(self) -> dict[str, dict[str, np.ndarray]]:
        """Per-layer I/W/G tensors captured during the last step.

        Returns:
            Mapping ``layer_name -> {"I"|"W"|"G" -> tensor}`` for layers
            that trace (MAC layers).
        """
        traces: dict[str, dict[str, np.ndarray]] = {}
        for index, layer in enumerate(self.layers):
            tensors = layer.traced_tensors()
            if tensors:
                traces[f"{index}:{layer.name}"] = tensors
        return traces
