"""Per-layer accumulator width profiling (Sakr et al., paper Fig 21).

Sakr et al. derive, per dot product, the fewest accumulation mantissa
bits that keep the variance of the swamping error negligible relative
to the gradient noise floor.  The working rule their analysis yields is
that the accumulation width must grow with the log of the reduction
length and with the operands' variance ratio; short layers need far
fewer than the worst-case bits.

FPRaker benefits automatically: a narrower accumulator moves the
out-of-bounds threshold up, so more trailing terms skip -- no datapath
change needed (the bfloat16 container simply carries a suffix of
zeros).  The paper reports ResNet18 speedup rising from 1.13x with the
fixed 12-bit accumulator to 1.56x with profiled per-layer widths.
"""

from __future__ import annotations

import math

import numpy as np


def sakr_accumulator_bits(
    reduction_length: int,
    margin_bits: int = 2,
    minimum: int = 4,
    maximum: int = 12,
) -> int:
    """Accumulation fractional bits sufficient for one reduction length.

    Implements the variance-based rule of Sakr et al.: the accumulator
    must cover the ``log2(sqrt(n))`` growth of a length-``n`` random-walk
    sum plus a safety margin; anything beyond that cannot change the
    converged model (the paper's 0.5 % criterion).

    Args:
        reduction_length: dot-product length of the layer.
        margin_bits: safety margin on top of the variance bound.
        minimum: floor on the returned width.
        maximum: cap (the hardware accumulator's 12 fractional bits).

    Returns:
        Fractional accumulator bits for the layer.
    """
    if reduction_length < 1:
        raise ValueError(f"reduction_length must be >= 1, got {reduction_length}")
    variance_bits = 0.5 * math.log2(reduction_length)
    needed = math.ceil(variance_bits) + margin_bits
    return int(np.clip(needed, minimum, maximum))


def sakr_accumulator_profile(
    reduction_lengths: dict[str, int],
    margin_bits: int = 2,
) -> dict[str, int]:
    """Per-layer accumulator widths from reduction lengths.

    Args:
        reduction_lengths: ``layer name -> reduction length``.
        margin_bits: safety margin passed through.

    Returns:
        ``layer name -> fractional accumulator bits``.
    """
    return {
        name: sakr_accumulator_bits(length, margin_bits=margin_bits)
        for name, length in reduction_lengths.items()
    }
