"""Layers with explicit forward/backward passes.

Every layer that multiplies routes its three training operations through
the shared :class:`repro.nn.fpmath.MatmulEngine`:

* forward      (paper eq. 1, the ``A x W`` phase),
* input grad   (paper eq. 2, the ``G x W`` phase),
* weight grad  (paper eq. 3, the ``A x G`` phase),

and exposes the tensors involved (input ``I``, weights ``W``, gradient
``G``) so training runs double as trace generators.
"""

from __future__ import annotations

import numpy as np

from repro.nn.fpmath import MatmulEngine
from repro.nn.functional import col2im, im2col


class Layer:
    """Base layer: forward/backward plus parameter and trace access."""

    name: str = "layer"

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output.

        Args:
            x: input tensor.
            training: whether caches for backward should be kept.

        Returns:
            Output tensor.
        """
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate, storing parameter gradients.

        Args:
            grad_out: gradient of the loss w.r.t. this layer's output.

        Returns:
            Gradient w.r.t. this layer's input.
        """
        raise NotImplementedError

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for the optimizer."""
        return []

    def traced_tensors(self) -> dict[str, np.ndarray]:
        """Last-step I/W/G tensors for trace capture (may be empty)."""
        return {}


class Dense(Layer):
    """Fully connected layer ``y = x W + b``.

    Args:
        in_features: input width.
        out_features: output width.
        engine: shared arithmetic engine.
        rng: initializer RNG.
        bias: include a bias vector.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        engine: MatmulEngine,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "dense",
    ) -> None:
        self.name = name
        self.engine = engine
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, (in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros(out_features) if bias else None
        self._x: np.ndarray | None = None
        self._grad_out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        w = self.engine.quantize_tensor(self.weight)
        x = self.engine.quantize_tensor(x)
        if training:
            self._x = x
        out = self.engine.matmul(x, w, pre_quantized=True)
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        grad_out = self.engine.quantize_tensor(grad_out)
        self._grad_out = grad_out
        w = self.engine.quantize_tensor(self.weight)
        # Weight gradient (A x G) and input gradient (G x W).
        self.weight_grad = self.engine.matmul(self._x.T, grad_out, pre_quantized=True)
        if self.bias is not None:
            self.bias_grad = grad_out.sum(axis=0)
        return self.engine.matmul(grad_out, w.T, pre_quantized=True)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        params = [(self.weight, self.weight_grad)]
        if self.bias is not None:
            params.append((self.bias, self.bias_grad))
        return params

    def traced_tensors(self) -> dict[str, np.ndarray]:
        traced = {"W": self.weight.copy()}
        if self._x is not None:
            traced["I"] = self._x.copy()
        if self._grad_out is not None:
            traced["G"] = self._grad_out.copy()
        return traced


class Conv2d(Layer):
    """2-d convolution lowered to matmul through im2col.

    Args:
        in_channels: input channels.
        out_channels: filters.
        kernel: square kernel size.
        engine: shared arithmetic engine.
        rng: initializer RNG.
        stride: stride.
        padding: zero padding.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        engine: MatmulEngine,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
    ) -> None:
        self.name = name
        self.engine = engine
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, (fan_in, out_channels))
        self.bias = np.zeros(out_channels)
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] = (0, 0)
        self._grad_out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = self.engine.quantize_tensor(x)
        cols, out_h, out_w = im2col(x, self.kernel, self.stride, self.padding)
        w = self.engine.quantize_tensor(self.weight)
        out = self.engine.matmul(cols, w, pre_quantized=True) + self.bias
        batch = x.shape[0]
        if training:
            self._cols = cols
            self._x_shape = x.shape
            self._out_hw = (out_h, out_w)
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch = grad_out.shape[0]
        out_h, out_w = self._out_hw
        grad_mat = self.engine.quantize_tensor(
            grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        )
        self._grad_out = grad_mat
        w = self.engine.quantize_tensor(self.weight)
        self.weight_grad = self.engine.matmul(self._cols.T, grad_mat, pre_quantized=True)
        self.bias_grad = grad_mat.sum(axis=0)
        grad_cols = self.engine.matmul(grad_mat, w.T, pre_quantized=True)
        return col2im(
            grad_cols, self._x_shape, self.kernel, self.stride, self.padding
        )

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.weight, self.weight_grad), (self.bias, self.bias_grad)]

    def traced_tensors(self) -> dict[str, np.ndarray]:
        traced = {"W": self.weight.copy()}
        if self._cols is not None:
            traced["I"] = self._cols.copy()
        if self._grad_out is not None:
            traced["G"] = self._grad_out.copy()
        return traced


class ReLU(Layer):
    """Rectified linear unit -- the source of natural activation sparsity."""

    name = "relu"

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0.0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad_out * self._mask


class MaxPool2d(Layer):
    """Max pooling with square window and matching stride."""

    name = "maxpool"

    def __init__(self, window: int = 2) -> None:
        self.window = window
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        batch, channels, height, width = x.shape
        w = self.window
        if height % w or width % w:
            raise ValueError(f"input {x.shape} not divisible by window {w}")
        view = x.reshape(batch, channels, height // w, w, width // w, w)
        flat = view.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // w, width // w, w * w
        )
        arg = flat.argmax(axis=-1)
        if training:
            self._argmax = arg
            self._x_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, channels, height, width = self._x_shape
        w = self.window
        grad_flat = np.zeros(
            (batch, channels, height // w, width // w, w * w)
        )
        b, c, i, j = np.indices(self._argmax.shape)
        grad_flat[b, c, i, j, self._argmax] = grad_out
        grad = grad_flat.reshape(
            batch, channels, height // w, width // w, w, w
        ).transpose(0, 1, 2, 4, 3, 5)
        return grad.reshape(batch, channels, height, width)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    name = "flatten"

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout.

    Args:
        rate: drop probability.
        rng: mask RNG (deterministic training runs).
    """

    name = "dropout"

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class BatchNorm2d(Layer):
    """Batch normalization over NCHW channels (fp32 internals).

    Normalization is element-wise (not MAC-bound), so it runs at full
    precision like the paper's frameworks do.

    Args:
        channels: channel count.
        momentum: running-stat momentum.
        eps: variance epsilon.
    """

    name = "batchnorm"

    def __init__(
        self, channels: int, momentum: float = 0.9, eps: float = 1e-5
    ) -> None:
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.gamma_grad = np.zeros(channels)
        self.beta_grad = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = (0, 2, 3)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if training:
            self._cache = (x_hat, inv_std, x)
        return self.gamma[None, :, None, None] * x_hat + self.beta[
            None, :, None, None
        ]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_hat, inv_std, x = self._cache
        axes = (0, 2, 3)
        count = x.shape[0] * x.shape[2] * x.shape[3]
        self.gamma_grad = (grad_out * x_hat).sum(axis=axes)
        self.beta_grad = grad_out.sum(axis=axes)
        g = grad_out * self.gamma[None, :, None, None]
        mean_g = g.mean(axis=axes)
        mean_gx = (g * x_hat).mean(axis=axes)
        return (
            g
            - mean_g[None, :, None, None]
            - x_hat * mean_gx[None, :, None, None]
        ) * inv_std[None, :, None, None]

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.gamma, self.gamma_grad), (self.beta, self.beta_grad)]
