"""Arithmetic-mode matmul engine: fp32, bf16 baseline, FPRaker emulation.

The ``bf16`` and ``fpraker`` modes implement, vectorized over whole
matrices, exactly the arithmetic of the golden accumulator and of the
FPRaker PE functional model:

1. operands quantize to bfloat16 (RNE, no denormals);
2. the reduction proceeds in groups of 8 exact products;
3. per group, the round's maximum exponent ``emax`` is the largest
   product exponent ``Ae+Be`` or the accumulator's exponent;
4. every participant aligns (RNE) onto the grid ``2^(emax - 12)``, the
   aligned values add, and the accumulator renormalizes to its 12
   fractional bits with RNE;
5. every 64 MACs the accumulator flushes into an fp32 outer sum
   (chunk-based accumulation, Sakr et al.).

``fpraker`` differs from ``bf16`` in one place only, mirroring the
hardware: each product's serial-side significand is the sum of its CSD
terms, and terms whose aligned position falls below the accumulator's
reach are *dropped* (out-of-bounds skipping) before the lane's value is
rounded onto the grid.  The emulation uses a partial-CSD lookup table,
so it is exact with respect to the PE functional model -- the test
suite checks both modes against the scalar references element by
element.

All float64 intermediates are exact: bfloat16 products need 16
significand bits and the aligned sums under 20, far inside float64's 52.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import KERNEL_BACKENDS, resolve_backend
from repro.encoding.booth import _LUT_PARTIAL_SIGNED16_FLAT, partial_csd_sum
from repro.fp.bfloat16 import bf16_fields, bf16_quantize
from repro.fp.softfloat import round_significand

_MODES = ("fp64", "fp32", "bf16", "fpraker")
_ZERO_OPERAND_EXP = -127
_PRODUCT_FRAC_BITS = 14
# Accumulator exponent sentinel for zero: far below any product.
_EACC_ZERO = -(1 << 24)


@dataclass(frozen=True)
class EngineConfig:
    """Matmul arithmetic configuration.

    Attributes:
        mode: ``"fp64"`` (exact reference), ``"fp32"``, ``"bf16"`` or
            ``"fpraker"``.
        acc_frac_bits: accumulator fractional bits (paper: 12); also the
            out-of-bounds threshold in ``fpraker`` mode.
        chunk_size: MACs per chunk before flushing to fp32 (paper: 64).
        group: MACs per accumulation round (paper: 8, one PE group).
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry the
            chunk-vectorized group loop runs through; bit-identical by
            contract, so the knob never changes results.
    """

    mode: str = "fp32"
    acc_frac_bits: int = 12
    chunk_size: int = 64
    group: int = 8
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {_MODES}")
        if self.chunk_size % self.group:
            raise ValueError("chunk_size must be a multiple of group")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )


class MatmulEngine:
    """Performs every MAC of the training framework under one mode.

    Args:
        config: arithmetic configuration (default: native fp32).
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()

    @property
    def mode(self) -> str:
        """Active arithmetic mode."""
        return self.config.mode

    def quantize_tensor(self, values: np.ndarray) -> np.ndarray:
        """Quantize a tensor as it would be written to memory.

        bf16/fpraker modes store activations, weights and gradients in
        bfloat16; fp32 mode stores float32.

        Args:
            values: tensor of any shape.

        Returns:
            Quantized float64 array.
        """
        if self.config.mode == "fp64":
            return np.asarray(values, dtype=np.float64)
        if self.config.mode == "fp32":
            return np.asarray(values, dtype=np.float32).astype(np.float64)
        return bf16_quantize(values)

    def matmul(
        self, a: np.ndarray, b: np.ndarray, pre_quantized: bool = False
    ) -> np.ndarray:
        """Matrix product ``a @ b`` under the configured arithmetic.

        Args:
            a: left matrix ``[M, K]``.
            b: right matrix ``[K, N]``.
            pre_quantized: caller guarantees both operands are already
                exactly representable in the mode's storage format
                (e.g. they came through :meth:`quantize_tensor`), so
                the emulation skips its re-quantization -- quantization
                is idempotent, making this a pure fast path.

        Returns:
            float64 array ``[M, N]`` of mode-accurate results.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad matmul shapes: {a.shape} @ {b.shape}")
        if self.config.mode == "fp64":
            return a @ b
        if self.config.mode == "fp32":
            return (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
        return self._matmul_emulated(
            a,
            b,
            fpraker=self.config.mode == "fpraker",
            pre_quantized=pre_quantized,
        )

    def _matmul_emulated(
        self,
        a: np.ndarray,
        b: np.ndarray,
        fpraker: bool,
        pre_quantized: bool = False,
    ) -> np.ndarray:
        """Chunk-vectorized emulation of the extended accumulation.

        The accumulator is serial along the reduction *within* one
        64-MAC chunk, but every chunk starts from a flushed (zero)
        register -- chunks are independent until their fp32 outer sums
        fold together in order.  So the group loop runs over the 8
        groups of a chunk only, with every full chunk advancing in
        lockstep along a chunk axis ([M, chunks, group, N] operands),
        and the sub-chunk tail runs as a single trailing chunk.  For the
        weight-gradient matmuls (reduction = batch x spatial, hundreds
        of groups) this turns hundreds of tiny-array iterations into
        eight wide ones.  Bit-identical to the serial reference
        (:meth:`_matmul_emulated_reference`, cross-checked in the test
        suite): every per-group operation is elementwise or a
        same-order reduction over the group axis, and the fp32 folds
        happen in the original chunk order.
        """
        cfg = self.config
        aq = a if pre_quantized else bf16_quantize(a)
        bq = b if pre_quantized else bf16_quantize(b)
        m_rows, k_dim = aq.shape
        n_cols = bq.shape[1]
        # Bit fields, computed once: significands with hidden bit,
        # hardware-visible exponents (-127 for zeros), sign masks.
        a_sign, a_exp, a_man, a_zero = bf16_fields(aq)
        b_sign, b_exp, b_man, b_zero = bf16_fields(bq)
        a_exp = np.where(a_zero, _ZERO_OPERAND_EXP, a_exp)
        b_exp = np.where(b_zero, _ZERO_OPERAND_EXP, b_exp)
        a_fields = (a_sign, a_exp, a_man, aq)
        b_fields = (b_sign, b_exp, b_man, bq)
        full = (k_dim // cfg.chunk_size) * cfg.chunk_size
        outer = np.zeros((m_rows, n_cols), dtype=np.float64)
        acc_tail = np.zeros((m_rows, n_cols), dtype=np.float64)
        if full:
            acc = self._accumulate_chunks(
                a_fields, b_fields, 0, full, full // cfg.chunk_size, fpraker
            )
            # Fold the chunk sums into the fp32 outer register in
            # reduction order, exactly like the serial flush points.
            for index in range(acc.shape[1]):
                outer = (
                    (outer + acc[:, index]).astype(np.float32).astype(np.float64)
                )
        if k_dim > full:
            acc_tail = self._accumulate_chunks(
                a_fields, b_fields, full, k_dim, 1, fpraker
            )[:, 0]
        return (outer + acc_tail).astype(np.float32).astype(np.float64)

    def _accumulate_chunks(
        self,
        a_fields: tuple,
        b_fields: tuple,
        k0: int,
        k1: int,
        chunks: int,
        fpraker: bool,
    ) -> np.ndarray:
        """Accumulate ``chunks`` equal reduction slices concurrently.

        Args:
            a_fields: ``(sign, exp, man, quantized)`` of the left matrix.
            b_fields: same for the right matrix.
            k0: first reduction index.
            k1: one past the last reduction index.
            chunks: equal chunks splitting ``[k0, k1)``.
            fpraker: drop out-of-bounds CSD terms of the serial side.

        Returns:
            float64 ``[M, chunks, N]`` chunk-final accumulator values.
        """
        cfg = self.config
        a_sign, a_exp, a_man, aq = a_fields
        b_sign, b_exp, b_man, bq = b_fields
        m_rows = aq.shape[0]
        n_cols = bq.shape[1]
        span = (k1 - k0) // chunks

        def a_slice(field):
            return field[:, k0:k1].reshape(m_rows, chunks, span)

        def b_slice(field):
            return field[k0:k1].reshape(chunks, span, n_cols)

        # Narrow working set, exact by construction: every heavy
        # [M, chunks, group, N] pass runs in int16 / float32 on this
        # sign-magnitude decomposition --
        #
        # * product exponents |ABe| <= 256 and accumulator exponents
        #   |e| < 1100 fit int16 (sentinel far below);
        # * the significand product +-man_a * man_b * 2^-14 carries at
        #   most 16 significand bits, exact in float32 and, unlike the
        #   full product value, never over- or underflows;
        # * a grid-snapped term is an integer with |t| < 2^(frac + 2)
        #   (ldexp to a subnormal only happens below 0.5, where rint
        #   yields the same 0), so a round's group-sum stays strictly
        #   below group * 2^(frac + 2) and is exact in float32 while
        #   that bound fits its 2^24 integer ceiling.  The gate below
        #   checks exactly that -- the paper's group of 8 runs float32
        #   through frac_bits 19; wider accumulators or larger rounds
        #   (Pragmatic-style configs, coarse grouping sweeps) run the
        #   identical pipeline in float64.
        #
        # The serial reference keeps the float64 formulation; the
        # property suite pins this path against it bit for bit.
        frac = cfg.acc_frac_bits
        man_dtype = (
            np.float32
            if cfg.group * (1 << (frac + 2)) <= (1 << 24)
            else np.float64
        )
        a_exp_r = a_slice(a_exp.astype(np.int16))
        b_exp_r = b_slice(b_exp.astype(np.int16))
        if fpraker:
            # The flattened signed-partial LUT index (row stride 11)
            # folds the serial side's sign and the gather's row offset
            # into one int16 add per group.
            a_idx_r = a_slice(((a_man + (a_sign << 8)) * 11).astype(np.int16))
        else:
            a_sgnman_r = a_slice(
                np.where(a_sign == 1, -a_man, a_man).astype(man_dtype)
            )
        b_signed_r = b_slice(
            np.ldexp(
                np.where(b_sign == 1, -b_man, b_man).astype(man_dtype),
                -_PRODUCT_FRAC_BITS,
            )
        )
        backend = resolve_backend(cfg.kernel_backend)
        return backend.accumulate_chunks(
            a_exp_r,
            b_exp_r,
            a_idx_r if fpraker else a_sgnman_r,
            b_signed_r,
            _LUT_PARTIAL_SIGNED16_FLAT,
            frac,
            cfg.group,
            fpraker,
            man_dtype,
        )

    def _matmul_emulated_reference(
        self, a: np.ndarray, b: np.ndarray, fpraker: bool
    ) -> np.ndarray:
        """Serial group-loop reference of :meth:`_matmul_emulated`.

        Kept (like the serial tile engine) as the bit-exactness anchor
        the chunk-vectorized path is property-tested against.
        """
        cfg = self.config
        aq = bf16_quantize(a)
        bq = bf16_quantize(b)
        m_rows, k_dim = aq.shape
        n_cols = bq.shape[1]
        a_sign, a_exp, a_man, a_zero = bf16_fields(aq)
        b_sign, b_exp, b_man, b_zero = bf16_fields(bq)
        a_exp = np.where(a_zero, _ZERO_OPERAND_EXP, a_exp)
        b_exp = np.where(b_zero, _ZERO_OPERAND_EXP, b_exp)
        outer = np.zeros((m_rows, n_cols), dtype=np.float64)
        acc = np.zeros((m_rows, n_cols), dtype=np.float64)
        macs_in_chunk = 0
        for k0 in range(0, k_dim, cfg.group):
            k1 = min(k0 + cfg.group, k_dim)
            abe = a_exp[:, k0:k1, None] + b_exp[None, k0:k1, :]
            acc_exp = _leading_exponent(acc)
            emax = np.maximum(abe.max(axis=1), acc_exp)
            grid = np.ldexp(1.0, (emax - cfg.acc_frac_bits).astype(np.int64))
            if fpraker:
                products = self._kept_products(
                    a_sign[:, k0:k1],
                    a_man[:, k0:k1],
                    b_sign[k0:k1],
                    b_man[k0:k1],
                    abe,
                    emax,
                )
            else:
                products = aq[:, k0:k1, None] * bq[None, k0:k1, :]
            aligned = np.rint(products / grid[:, None, :]) * grid[:, None, :]
            acc_aligned = np.rint(acc / grid) * grid
            acc = round_significand(
                aligned.sum(axis=1) + acc_aligned, cfg.acc_frac_bits
            )
            macs_in_chunk += k1 - k0
            if macs_in_chunk >= cfg.chunk_size:
                outer = (outer + acc).astype(np.float32).astype(np.float64)
                acc = np.zeros_like(acc)
                macs_in_chunk = 0
        return (outer + acc).astype(np.float32).astype(np.float64)

    def _kept_products(
        self,
        a_sign: np.ndarray,
        a_man: np.ndarray,
        b_sign: np.ndarray,
        b_man: np.ndarray,
        abe: np.ndarray,
        emax: np.ndarray,
    ) -> np.ndarray:
        """Products with out-of-bounds CSD terms of the A side dropped.

        A term at digit position ``p`` of the serial significand has
        alignment offset ``k = (emax - ABe) + (7 - p)``; the PE skips it
        when ``k`` exceeds the accumulator's fractional width, i.e. when
        ``p < (emax - ABe) - (acc_frac_bits - 7 - (7 - ...))`` -- for the
        paper's 12-bit accumulator, ``p < s - 5`` with ``s = emax - ABe``.
        """
        s = emax[:, None, :] - abe
        pmin = s - (self.config.acc_frac_bits - _BF16_FRAC)
        kept_man = partial_csd_sum(
            np.broadcast_to(a_man[:, :, None], s.shape), pmin
        )
        sign = np.where(a_sign[:, :, None] ^ b_sign[None, :, :], -1.0, 1.0)
        magnitude = kept_man.astype(np.float64) * b_man[None, :, :].astype(
            np.float64
        )
        return sign * np.ldexp(magnitude, abe - _PRODUCT_FRAC_BITS)


_BF16_FRAC = 7


def _leading_exponent(values: np.ndarray) -> np.ndarray:
    """Leading binary exponent per element (zero -> far-below sentinel)."""
    magnitude = np.abs(values)
    _, exp = np.frexp(magnitude)
    return np.where(magnitude > 0.0, exp.astype(np.int64) - 1, _EACC_ZERO)


# int16 accumulator-exponent sentinel for the narrow-dtype engine: the
# reference's -2^24 only ever loses a max() against product exponents
# >= -508, which -2^13 does just as well inside int16.
_EACC_ZERO16 = np.int16(-(1 << 13))


def _round_finite(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """:func:`round_significand` for guaranteed-finite accumulators.

    The chunk engine's accumulator is always finite (grid-snapped
    integers times bounded powers of two), so the general routine's
    non-finite restore and errstate guard are dead weight here.  Zeros
    come out as +0 exactly like the reference: frexp(0) is (0, 0) and
    numpy's sign(+-0) is +0.
    """
    man, exp = np.frexp(np.abs(values))
    rounded = np.rint(np.ldexp(man, frac_bits + 1))
    return np.ldexp(rounded, exp - 1 - frac_bits) * np.sign(values)


def _leading_exponent16(values: np.ndarray) -> np.ndarray:
    """int16 :func:`_leading_exponent` via the float64 bit pattern.

    Accumulator values are grid-snapped integers times 2^gexp with
    ``gexp > -600``, so nonzero entries are always normal and the
    exponent field is exact; int16 holds the whole reachable range.
    """
    bits = values.view(np.uint64)
    field = ((bits >> np.uint64(52)) & np.uint64(0x7FF)).astype(np.int16)
    return np.where(values != 0.0, field - np.int16(1023), _EACC_ZERO16)
