"""Arithmetic-mode matmul engine: fp32, bf16 baseline, FPRaker emulation.

The ``bf16`` and ``fpraker`` modes implement, vectorized over whole
matrices, exactly the arithmetic of the golden accumulator and of the
FPRaker PE functional model:

1. operands quantize to bfloat16 (RNE, no denormals);
2. the reduction proceeds in groups of 8 exact products;
3. per group, the round's maximum exponent ``emax`` is the largest
   product exponent ``Ae+Be`` or the accumulator's exponent;
4. every participant aligns (RNE) onto the grid ``2^(emax - 12)``, the
   aligned values add, and the accumulator renormalizes to its 12
   fractional bits with RNE;
5. every 64 MACs the accumulator flushes into an fp32 outer sum
   (chunk-based accumulation, Sakr et al.).

``fpraker`` differs from ``bf16`` in one place only, mirroring the
hardware: each product's serial-side significand is the sum of its CSD
terms, and terms whose aligned position falls below the accumulator's
reach are *dropped* (out-of-bounds skipping) before the lane's value is
rounded onto the grid.  The emulation uses a partial-CSD lookup table,
so it is exact with respect to the PE functional model -- the test
suite checks both modes against the scalar references element by
element.

All float64 intermediates are exact: bfloat16 products need 16
significand bits and the aligned sums under 20, far inside float64's 52.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.booth import partial_csd_sum
from repro.fp.bfloat16 import bf16_fields, bf16_quantize
from repro.fp.softfloat import round_significand

_MODES = ("fp64", "fp32", "bf16", "fpraker")
_ZERO_OPERAND_EXP = -127
_PRODUCT_FRAC_BITS = 14
# Accumulator exponent sentinel for zero: far below any product.
_EACC_ZERO = -(1 << 24)


@dataclass(frozen=True)
class EngineConfig:
    """Matmul arithmetic configuration.

    Attributes:
        mode: ``"fp64"`` (exact reference), ``"fp32"``, ``"bf16"`` or
            ``"fpraker"``.
        acc_frac_bits: accumulator fractional bits (paper: 12); also the
            out-of-bounds threshold in ``fpraker`` mode.
        chunk_size: MACs per chunk before flushing to fp32 (paper: 64).
        group: MACs per accumulation round (paper: 8, one PE group).
    """

    mode: str = "fp32"
    acc_frac_bits: int = 12
    chunk_size: int = 64
    group: int = 8

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {_MODES}")
        if self.chunk_size % self.group:
            raise ValueError("chunk_size must be a multiple of group")


class MatmulEngine:
    """Performs every MAC of the training framework under one mode.

    Args:
        config: arithmetic configuration (default: native fp32).
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()

    @property
    def mode(self) -> str:
        """Active arithmetic mode."""
        return self.config.mode

    def quantize_tensor(self, values: np.ndarray) -> np.ndarray:
        """Quantize a tensor as it would be written to memory.

        bf16/fpraker modes store activations, weights and gradients in
        bfloat16; fp32 mode stores float32.

        Args:
            values: tensor of any shape.

        Returns:
            Quantized float64 array.
        """
        if self.config.mode == "fp64":
            return np.asarray(values, dtype=np.float64)
        if self.config.mode == "fp32":
            return np.asarray(values, dtype=np.float32).astype(np.float64)
        return bf16_quantize(values)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` under the configured arithmetic.

        Args:
            a: left matrix ``[M, K]``.
            b: right matrix ``[K, N]``.

        Returns:
            float64 array ``[M, N]`` of mode-accurate results.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad matmul shapes: {a.shape} @ {b.shape}")
        if self.config.mode == "fp64":
            return a @ b
        if self.config.mode == "fp32":
            return (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
        return self._matmul_emulated(a, b, fpraker=self.config.mode == "fpraker")

    def _matmul_emulated(
        self, a: np.ndarray, b: np.ndarray, fpraker: bool
    ) -> np.ndarray:
        """Group-wise emulation of the extended-precision accumulation."""
        cfg = self.config
        aq = bf16_quantize(a)
        bq = bf16_quantize(b)
        m_rows, k_dim = aq.shape
        n_cols = bq.shape[1]
        # Bit fields, computed once: significands with hidden bit,
        # hardware-visible exponents (-127 for zeros), sign masks.
        a_sign, a_exp, a_man, a_zero = bf16_fields(aq)
        b_sign, b_exp, b_man, b_zero = bf16_fields(bq)
        a_exp = np.where(a_zero, _ZERO_OPERAND_EXP, a_exp)
        b_exp = np.where(b_zero, _ZERO_OPERAND_EXP, b_exp)
        outer = np.zeros((m_rows, n_cols), dtype=np.float64)
        acc = np.zeros((m_rows, n_cols), dtype=np.float64)
        macs_in_chunk = 0
        for k0 in range(0, k_dim, cfg.group):
            k1 = min(k0 + cfg.group, k_dim)
            abe = a_exp[:, k0:k1, None] + b_exp[None, k0:k1, :]
            acc_exp = _leading_exponent(acc)
            emax = np.maximum(abe.max(axis=1), acc_exp)
            grid = np.ldexp(1.0, (emax - cfg.acc_frac_bits).astype(np.int64))
            if fpraker:
                products = self._kept_products(
                    a_sign[:, k0:k1],
                    a_man[:, k0:k1],
                    b_sign[k0:k1],
                    b_man[k0:k1],
                    abe,
                    emax,
                )
            else:
                products = aq[:, k0:k1, None] * bq[None, k0:k1, :]
            aligned = np.rint(products / grid[:, None, :]) * grid[:, None, :]
            acc_aligned = np.rint(acc / grid) * grid
            acc = round_significand(
                aligned.sum(axis=1) + acc_aligned, cfg.acc_frac_bits
            )
            macs_in_chunk += k1 - k0
            if macs_in_chunk >= cfg.chunk_size:
                outer = (outer + acc).astype(np.float32).astype(np.float64)
                acc = np.zeros_like(acc)
                macs_in_chunk = 0
        return (outer + acc).astype(np.float32).astype(np.float64)

    def _kept_products(
        self,
        a_sign: np.ndarray,
        a_man: np.ndarray,
        b_sign: np.ndarray,
        b_man: np.ndarray,
        abe: np.ndarray,
        emax: np.ndarray,
    ) -> np.ndarray:
        """Products with out-of-bounds CSD terms of the A side dropped.

        A term at digit position ``p`` of the serial significand has
        alignment offset ``k = (emax - ABe) + (7 - p)``; the PE skips it
        when ``k`` exceeds the accumulator's fractional width, i.e. when
        ``p < (emax - ABe) - (acc_frac_bits - 7 - (7 - ...))`` -- for the
        paper's 12-bit accumulator, ``p < s - 5`` with ``s = emax - ABe``.
        """
        s = emax[:, None, :] - abe
        pmin = s - (self.config.acc_frac_bits - _BF16_FRAC)
        kept_man = partial_csd_sum(
            np.broadcast_to(a_man[:, :, None], s.shape), pmin
        )
        sign = np.where(a_sign[:, :, None] ^ b_sign[None, :, :], -1.0, 1.0)
        magnitude = kept_man.astype(np.float64) * b_man[None, :, :].astype(
            np.float64
        )
        return sign * np.ldexp(magnitude, abe - _PRODUCT_FRAC_BITS)


_BF16_FRAC = 7


def _leading_exponent(values: np.ndarray) -> np.ndarray:
    """Leading binary exponent per element (zero -> far-below sentinel)."""
    magnitude = np.abs(values)
    _, exp = np.frexp(magnitude)
    return np.where(magnitude > 0.0, exp.astype(np.int64) - 1, _EACC_ZERO)
