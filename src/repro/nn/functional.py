"""Stateless tensor functions: im2col, softmax, cross-entropy.

Convolutions lower to matrix multiplication through im2col so that every
MAC of the network flows through the arithmetic engine, exactly like the
paper's PlaidML ``mad()`` override.
"""

from __future__ import annotations

import numpy as np


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input patches into a matrix.

    Args:
        x: input of shape ``(batch, channels, height, width)``.
        kernel: square kernel size.
        stride: convolution stride.
        padding: zero padding on each side.

    Returns:
        ``(columns, out_h, out_w)`` where ``columns`` has shape
        ``(batch * out_h * out_w, channels * kernel * kernel)``.
    """
    batch, channels, height, width = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (batch, out_h, out_w, channels*kernel*kernel)
    columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(columns), out_h, out_w


def col2im(
    columns: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold patch-gradient columns back onto the input (im2col adjoint).

    Args:
        columns: gradient matrix shaped like :func:`im2col` output.
        x_shape: original input shape ``(batch, channels, height, width)``.
        kernel: square kernel size.
        stride: convolution stride.
        padding: zero padding used in the forward pass.

    Returns:
        Input gradient of shape ``x_shape``.
    """
    batch, channels, height, width = x_shape
    padded_h = height + 2 * padding
    padded_w = width + 2 * padding
    out_h = (padded_h - kernel) // stride + 1
    out_w = (padded_w - kernel) // stride + 1
    grad = np.zeros((batch, channels, padded_h, padded_w))
    cols = columns.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for i in range(kernel):
        for j in range(kernel):
            grad[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding:
        grad = grad[:, :, padding:-padding, padding:-padding]
    return grad


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction stabilization.

    Args:
        logits: array ``(batch, classes)``.

    Returns:
        Probabilities of the same shape.
    """
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    Args:
        logits: array ``(batch, classes)``.
        labels: int array ``(batch,)`` of class indices.

    Returns:
        ``(loss, grad)`` where ``grad`` has the logits' shape.
    """
    batch = logits.shape[0]
    probs = softmax(logits)
    clipped = np.clip(probs[np.arange(batch), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy.

    Args:
        logits: array ``(batch, classes)``.
        labels: int array ``(batch,)``.

    Returns:
        Fraction of correct predictions.
    """
    return float(np.mean(logits.argmax(axis=1) == labels))
