"""The stable public API of the FPRaker reproduction.

One facade, three front ends: the functions here are the supported
entry points for Python callers, the ``repro`` CLI routes through the
same machinery, and a ``repro serve`` daemon exposes the identical
surface over HTTP (:func:`connect` returns a client whose ``simulate``
and ``sweep`` mirror the functions below argument-for-argument).  The
contract underneath is shared: every request -- local or remote -- is
normalized to a :class:`SimRequest` and a canonical key, so the same
``(model, config, progress, seed)`` tuple yields byte-identical results
on every path.

Typical use::

    import repro.api as api

    result = api.simulate("NCF")                      # one simulation
    batch = api.sweep([{"model": m} for m in ("NCF", "SNLI")])
    remote = api.connect("http://127.0.0.1:8177")     # repro serve
    remote.simulate("NCF")                            # same answer

Everything exported here is covered by the wire-schema versioning rules
in ``docs/SERVICE.md``; the lint gate (RPR007) pins this module's
``__all__`` to the documented surface.
"""

from __future__ import annotations

from repro.core.config import AcceleratorConfig
from repro.harness.runner import (
    SessionConfig,
    SessionStats,
    SimRequest,
    SimulationSession,
    WireFormatError,
)
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.service.client import connect as _connect

__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeoutError",
    "SessionConfig",
    "SessionStats",
    "SimRequest",
    "SimulationSession",
    "WireFormatError",
    "connect",
    "scaleout",
    "session",
    "simulate",
    "sweep",
]


def session(
    config: SessionConfig | None = None, **knobs
) -> SimulationSession:
    """Open a memoizing simulation session.

    The supported way to construct a session: pass a ready
    :class:`SessionConfig`, or the config's fields as keywords (they
    build one) -- ``api.session(jobs=4)`` is
    ``SimulationSession(config=SessionConfig(jobs=4))`` without the
    deprecation shim of the legacy constructor.

    Args:
        config: a ready session configuration.
        **knobs: :class:`SessionConfig` fields, when ``config`` is None.

    Returns:
        A fresh :class:`SimulationSession`.

    Raises:
        TypeError: when both ``config`` and field keywords are given.
    """
    if config is not None:
        if knobs:
            raise TypeError(
                "pass either config= or SessionConfig field keywords, "
                "not both: got config= and " + ", ".join(sorted(knobs))
            )
        return SimulationSession(config=config)
    return SimulationSession(config=SessionConfig(**knobs))


def _resolve_session(
    session_obj: SimulationSession | None,
    config: SessionConfig | None,
) -> SimulationSession:
    """The session an API call runs under (private one by default)."""
    if session_obj is not None:
        if config is not None:
            raise TypeError("pass either session= or session_config=, not both")
        return session_obj
    return SimulationSession(config=config if config is not None else None)


def simulate(
    model: str,
    config: AcceleratorConfig | None = None,
    progress: float = 0.5,
    seed: int = 0,
    acc_profile: dict[str, int] | None = None,
    phases: tuple[str, ...] | None = None,
    *,
    session: SimulationSession | None = None,
    session_config: SessionConfig | None = None,
):
    """Simulate (or fetch) one model under one accelerator config.

    Args:
        model: Table-I model name.
        config: accelerator configuration (None = the paper's FPRaker
            config; use :func:`repro.core.config.baseline_paper_config`
            et al. for the comparison points).
        progress: training progress in [0, 1].
        seed: workload RNG seed.
        acc_profile: optional per-layer accumulator fractional widths.
        phases: training phases to include (None = all three).
        session: reuse an existing session's memo/cache.
        session_config: configuration for the private session opened
            when ``session`` is not given.

    Returns:
        The (possibly cached) :class:`repro.core.accelerator.WorkloadResult`.
    """
    runner = _resolve_session(session, session_config)
    return runner.simulate(model, config, progress, seed, acc_profile, phases)


def sweep(
    requests,
    *,
    session: SimulationSession | None = None,
    session_config: SessionConfig | None = None,
) -> list:
    """Run a batch of simulation requests through one session.

    The in-process twin of the daemon's ``/sweep`` endpoint: requests
    are deduplicated by canonical key, prefetched together (fanning out
    over worker processes when the session's ``jobs`` allows), and
    returned in input order.

    Args:
        requests: iterable of :class:`SimRequest`s, wire-form dicts
            (see :meth:`SimRequest.from_dict`), or bare model names.
        session: reuse an existing session's memo/cache.
        session_config: configuration for the private session opened
            when ``session`` is not given.

    Returns:
        Results in request order (duplicates share one simulation).
    """
    resolved = []
    for entry in requests:
        if isinstance(entry, SimRequest):
            resolved.append(entry)
        elif isinstance(entry, str):
            resolved.append(SimRequest.make(entry))
        else:
            resolved.append(SimRequest.from_dict(entry))
    runner = _resolve_session(session, session_config)
    runner.prefetch(resolved)
    return [runner.resolve(request) for request in resolved]


def scaleout(
    model: str,
    nodes: int,
    partition: str = "data",
    config: AcceleratorConfig | None = None,
    progress: float = 0.5,
    seed: int = 0,
    *,
    session: SimulationSession | None = None,
    session_config: SessionConfig | None = None,
):
    """Simulate a multi-node scale-out run.

    Args:
        model: Table-I model name.
        nodes: compute-node count (>= 1).
        partition: ``"data"``, ``"model"`` or ``"pipeline"``.
        config: per-node accelerator config (None = paper FPRaker).
        progress: training progress in [0, 1].
        seed: workload RNG seed.
        session: reuse an existing session's memo/cache.
        session_config: configuration for the private session opened
            when ``session`` is not given.

    Returns:
        A :class:`repro.scale.ScaleOutResult` for ``nodes > 1``; the
        plain single-node result at ``nodes == 1`` (shared cache key
        with :func:`simulate`).
    """
    runner = _resolve_session(session, session_config)
    return runner.scaleout(model, nodes, partition, config, progress, seed)


def connect(url: str, timeout: float = 600.0) -> ServiceClient:
    """Open a client against a running ``repro serve`` daemon.

    Args:
        url: the daemon's root URL (``http://host:port``).
        timeout: per-request socket timeout in seconds.

    Returns:
        A health-checked :class:`ServiceClient`.
    """
    return _connect(url, timeout=timeout)
