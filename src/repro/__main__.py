"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # regenerate one artifact
    python -m repro run fig14 --models VGG16 SNLI
    python -m repro run all              # everything (minutes)
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments
from repro.harness.extensions import (
    run_inference_extension,
    run_precision_schedule,
)

EXPERIMENTS = {
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "fig1": experiments.run_fig1_sparsity,
    "fig2": experiments.run_fig2_potential,
    "fig6": experiments.run_fig6_exponents,
    "fig10": experiments.run_fig10_compression,
    "fig11": experiments.run_fig11_speedup,
    "fig12": experiments.run_fig12_energy,
    "fig13": experiments.run_fig13_skipped,
    "fig14": experiments.run_fig14_phases,
    "fig15": experiments.run_fig15_stalls,
    "fig16": experiments.run_fig16_obs_sync,
    "fig17": experiments.run_fig17_accuracy,
    "fig18": experiments.run_fig18_over_time,
    "fig19-20": experiments.run_fig19_20_rows,
    "fig21": experiments.run_fig21_accwidth,
    "pragmatic": experiments.run_pragmatic_comparison,
    "ext-precision": run_precision_schedule,
    "ext-inference": run_inference_extension,
}

# Experiments that accept a `models` keyword.
_MODEL_AWARE = {
    "fig1", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig18", "fig19-20", "pragmatic", "ext-inference",
}


def _show(result) -> None:
    tables = result if isinstance(result, tuple) else (result,)
    for table in tables:
        table.show()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the FPRaker paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id, or 'all'")
    runner.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="restrict model-sweep experiments to these Table-I models",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; try: {', '.join(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        func = EXPERIMENTS[name]
        kwargs = {}
        if args.models and name in _MODEL_AWARE:
            kwargs["models"] = tuple(args.models)
        _show(func(**kwargs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
