"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # regenerate one artifact
    python -m repro run fig14 --models VGG16 SNLI
    python -m repro run all --jobs 4     # everything, 4 worker processes
    python -m repro run fig11 --format json --out results/
    python -m repro run all --cache .repro-cache   # warm reruns
    python -m repro run memory_profile             # traffic-engine profile
    python -m repro run fig15 --memory-engine hierarchy
    python -m repro lint src/repro                 # static contract checks
    python -m repro serve --cache .repro-cache     # simulation daemon

``lint`` runs the :mod:`repro.lint` static checker (the RPR rule set:
determinism, cache-key completeness, serialization parity, dispatch
exhaustiveness, artifact stability, docstring coverage) and exits 0
on a clean tree, 1 when findings survive, 2 on usage errors.

All simulation-driven experiments share one
:class:`repro.harness.runner.SimulationSession`, so ``run all`` performs
each unique ``(model, config, progress, seed, acc_profile)`` simulation
exactly once; ``--jobs`` fans cache misses out over worker processes and
``--cache`` persists results on disk across invocations.
``--memory-engine hierarchy`` prices off-chip traffic with the
event-level memory hierarchy (container bursts, bank conflicts,
transposer occupancy) instead of the flat roofline.

``serve`` runs the same simulation machinery as a long-lived HTTP
daemon over a shared sqlite result store (see ``docs/SERVICE.md``); it
takes the same ``--jobs/--cache/--workload-cache/--memory-engine``
session flags as ``run`` -- a ``--cache`` directory warmed by prior
``repro run`` invocations is migrated into the store on startup.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

from repro.harness import experiments
from repro.harness.extensions import (
    run_inference_extension,
    run_precision_schedule,
)
from repro.harness.runner import SessionConfig, SimulationSession
from repro.lint.cli import configure_lint_parser, run_lint
from repro.models.zoo import MODEL_ZOO

EXPERIMENTS = {
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
    "table3": experiments.run_table3,
    "fig1": experiments.run_fig1_sparsity,
    "fig2": experiments.run_fig2_potential,
    "fig6": experiments.run_fig6_exponents,
    "fig10": experiments.run_fig10_compression,
    "fig11": experiments.run_fig11_speedup,
    "fig12": experiments.run_fig12_energy,
    "fig13": experiments.run_fig13_skipped,
    "fig14": experiments.run_fig14_phases,
    "fig15": experiments.run_fig15_stalls,
    "fig16": experiments.run_fig16_obs_sync,
    "fig17": experiments.run_fig17_accuracy,
    "fig18": experiments.run_fig18_over_time,
    "fig19-20": experiments.run_fig19_20_rows,
    "fig21": experiments.run_fig21_accwidth,
    "memory_profile": experiments.run_memory_profile,
    "scaleout": experiments.run_scaleout,
    "pragmatic": experiments.run_pragmatic_comparison,
    "ext-precision": run_precision_schedule,
    "ext-inference": run_inference_extension,
}

# Experiments that accept a `models` keyword.
_MODEL_AWARE = {
    "fig1", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig18", "fig19-20", "memory_profile", "scaleout",
    "pragmatic", "ext-inference",
}


def _accepts_session(func) -> bool:
    """Whether an experiment routes simulation through a session."""
    return "session" in inspect.signature(func).parameters


def _accepts_kernel_backend(func) -> bool:
    """Whether an experiment runs MatmulEngine arithmetic directly
    (session-driven experiments get the knob via the session instead)."""
    return "kernel_backend" in inspect.signature(func).parameters


def _tables(result) -> tuple:
    """Normalize an experiment's return value to a tuple of tables."""
    return result if isinstance(result, tuple) else (result,)


def _show(result) -> None:
    for table in _tables(result):
        table.show()


def _payload(result):
    """One experiment's tables as a JSON-ready object."""
    dicts = [table.to_dict() for table in _tables(result)]
    return dicts[0] if len(dicts) == 1 else dicts


def _render(result, fmt: str) -> str:
    """One experiment's artifact as text or a JSON document."""
    if fmt == "json":
        return json.dumps(_payload(result), indent=2)
    return "\n\n".join(table.render() for table in _tables(result)) + "\n"


def _validate_models(models: list[str] | None) -> list[str]:
    """Unknown model names from a ``--models`` argument (empty = valid)."""
    if not models:
        return []
    return [name for name in models if name not in MODEL_ZOO]


def _positive_int(text: str) -> int:
    """Argparse type for a strictly positive integer."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _session_flags() -> argparse.ArgumentParser:
    """Parent parser of the session flags ``run`` and ``serve`` share.

    One definition keeps the two subcommands' ``--jobs``, ``--cache``,
    ``--workload-cache`` and ``--memory-engine`` flags identical in
    name, type, default and help text.

    Returns:
        An ``add_help=False`` parser for use via ``parents=[...]``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulations (default: 1)",
    )
    parent.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persist simulation results under DIR (warm reruns; "
        "`serve` migrates DIR's entries into its shared store)",
    )
    parent.add_argument(
        "--workload-cache",
        metavar="DIR",
        default=None,
        help="persist generated workload tensors under DIR (defaults "
        "to CACHE/workloads when --cache is set; in-memory reuse is "
        "always on)",
    )
    parent.add_argument(
        "--memory-engine",
        choices=("roofline", "hierarchy"),
        default="roofline",
        help="memory model for FPRaker simulations (default: roofline)",
    )
    parent.add_argument(
        "--kernel-backend",
        choices=("numpy", "numba"),
        default="numpy",
        help="compiled kernel backend for the hot simulation loops "
        "(bit-identical results; 'numba' needs the [backends] extra "
        "and falls back to numpy with a warning when missing)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argument parser.

    Exposed separately so ``docs/CLI.md`` can be generated from (and
    sync-tested against) the real parser tree.

    Returns:
        The configured :class:`argparse.ArgumentParser`.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the FPRaker paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    profiler = sub.add_parser(
        "profile",
        help="emit a per-stage pipeline timing breakdown as JSON",
    )
    profiler.add_argument(
        "--model",
        default="NCF",
        help="Table-I model to profile (default: NCF)",
    )
    profiler.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="wall-clock measurements per stage, best kept (default: 2)",
    )
    profiler.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write the JSON document to DIR/profile.json",
    )
    configure_lint_parser(sub)
    session_flags = _session_flags()
    runner = sub.add_parser(
        "run",
        help="run one experiment (or 'all')",
        parents=[session_flags],
    )
    runner.add_argument("experiment", help="experiment id, or 'all'")
    runner.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="restrict model-sweep experiments to these Table-I models",
    )
    runner.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="artifact format printed to stdout / written to --out",
    )
    runner.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each artifact to DIR/<experiment>.{txt,json}",
    )
    runner.add_argument(
        "--nodes",
        nargs="+",
        type=_positive_int,
        default=None,
        metavar="N",
        help="scale-out node counts for the scaleout experiment "
        "(default: 1 2 4 8)",
    )
    runner.add_argument(
        "--partition",
        choices=("data", "model", "pipeline"),
        default=None,
        help="scale-out partition scheme (default: data)",
    )
    server = sub.add_parser(
        "serve",
        help="run the simulation daemon over a shared result store",
        parents=[session_flags],
    )
    server.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    server.add_argument(
        "--port",
        type=int,
        default=8177,
        help="TCP port to listen on (default: 8177)",
    )
    server.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="result-store location: a directory or a .sqlite file "
        "(default: --cache when given, else .repro-store)",
    )
    return parser


def _serve(args) -> int:
    """The ``repro serve`` handler: open the store, run the daemon.

    The daemon shares ``run``'s session flags; a ``--cache`` directory
    warmed by prior CLI runs is migrated into the store before serving.

    Args:
        args: parsed ``serve`` arguments.

    Returns:
        Process exit code.
    """
    from repro.service.daemon import run_daemon
    from repro.service.store import ResultStore, StoreError

    store_path = args.store or args.cache or ".repro-store"
    config = SessionConfig(
        jobs=args.jobs,
        memory_engine=args.memory_engine,
        kernel_backend=args.kernel_backend,
        workload_cache=(
            args.workload_cache if args.workload_cache is not None else True
        ),
    )
    try:
        store = ResultStore(store_path)
    except StoreError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    if args.cache is not None:
        imported = store.import_legacy(args.cache)
        if imported:
            print(
                f"repro serve: imported {imported} entries from "
                f"{args.cache}",
                flush=True,
            )
    try:
        return run_daemon(config, store, host=args.host, port=args.port)
    finally:
        store.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "lint":
        return run_lint(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "profile":
        from repro.harness.profiling import profile_pipeline, render_profile

        unknown = _validate_models([args.model])
        if unknown:
            print(
                "unknown model(s): " + ", ".join(repr(m) for m in unknown)
                + "\nknown models: " + ", ".join(sorted(MODEL_ZOO)),
                file=sys.stderr,
            )
            return 2
        document = render_profile(
            profile_pipeline(model=args.model, repeats=args.repeats)
        )
        if args.out is not None:
            out_dir = Path(args.out)
            if out_dir.exists() and not out_dir.is_dir():
                print(f"--out {args.out!r} is not a directory", file=sys.stderr)
                return 2
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / "profile.json").write_text(document + "\n")
        print(document)
        return 0
    unknown = _validate_models(args.models)
    if unknown:
        print(
            "unknown model(s): " + ", ".join(repr(m) for m in unknown)
            + "\nknown models: " + ", ".join(sorted(MODEL_ZOO)),
            file=sys.stderr,
        )
        return 2
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; try: {', '.join(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
    for flag, value in (
        ("--cache", args.cache),
        ("--out", args.out),
        ("--workload-cache", args.workload_cache),
    ):
        if value is not None and Path(value).exists() and not Path(value).is_dir():
            print(f"{flag} {value!r} is not a directory", file=sys.stderr)
            return 2
    session = SimulationSession(
        config=SessionConfig(
            jobs=args.jobs,
            cache_dir=args.cache,
            memory_engine=args.memory_engine,
            kernel_backend=args.kernel_backend,
            workload_cache=(
                args.workload_cache if args.workload_cache is not None else True
            ),
        )
    )
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    suffix = "json" if args.format == "json" else "txt"
    json_out = {}
    for name in names:
        func = EXPERIMENTS[name]
        kwargs = {}
        if args.models and name in _MODEL_AWARE:
            kwargs["models"] = tuple(args.models)
        if name == "scaleout":
            if args.nodes:
                kwargs["nodes"] = tuple(args.nodes)
            if args.partition:
                kwargs["partition"] = args.partition
        if _accepts_session(func):
            kwargs["session"] = session
        if _accepts_kernel_backend(func):
            kwargs["kernel_backend"] = args.kernel_backend
        result = func(**kwargs)
        if args.format == "json":
            json_out[name] = _payload(result)
        else:
            _show(result)
        if out_dir is not None:
            path = out_dir / f"{name}.{suffix}"
            path.write_text(_render(result, args.format))
    if args.format == "json":
        # One parseable document: the bare artifact for a single
        # experiment, an object keyed by experiment id for several.
        single = json_out[names[0]] if len(names) == 1 else json_out
        print(json.dumps(single, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
