"""Area/energy models derived from the paper's post-layout numbers.

Table III of the paper (65 nm, 600 MHz, per tile):

==========  ==========  =============  =========  ==========
design      PE array    term encoders  total      normalized
==========  ==========  =============  =========  ==========
FPRaker     304,118     12,950         317,068    0.22x
Baseline    1,421,579   n/a            1,421,579  1x
==========  ==========  =============  =========  ==========

Power: FPRaker 104 + 5.5 = 109.5 mW; baseline 475 mW (0.23x).  Per-tile
core energy efficiency: 1.75x.

From these we derive per-event energies: the baseline burns a fixed
energy per bit-parallel MAC; FPRaker burns per-cycle control and
accumulation energy plus per-term compute energy, which is how its
efficiency scales with term sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import SimCounters


@dataclass(frozen=True)
class _Table3:
    """The paper's Table III constants (areas in um^2, power in mW)."""

    fpraker_pe_array_area: float = 304_118.0
    fpraker_encoder_area: float = 12_950.0
    baseline_tile_area: float = 1_421_579.0
    fpraker_pe_array_power: float = 104.0
    fpraker_encoder_power: float = 5.5
    baseline_tile_power: float = 475.0
    clock_mhz: float = 600.0
    # Pragmatic-FP's PE is 2.5x smaller than the bit-parallel PE (Sec. I).
    pragmatic_area_ratio: float = 1.0 / 2.5
    # Global buffer partition areas in mm^2 (Section V-B).
    gb_area_activations_mm2: float = 344.0
    gb_area_weights_mm2: float = 93.6
    gb_area_gradients_mm2: float = 334.0

    @property
    def fpraker_tile_area(self) -> float:
        """Total FPRaker tile compute area."""
        return self.fpraker_pe_array_area + self.fpraker_encoder_area

    @property
    def fpraker_tile_power(self) -> float:
        """Total FPRaker tile power."""
        return self.fpraker_pe_array_power + self.fpraker_encoder_power

    @property
    def area_ratio(self) -> float:
        """FPRaker tile area normalized to the baseline tile (0.22x)."""
        return self.fpraker_tile_area / self.baseline_tile_area


TABLE3 = _Table3()


@dataclass(frozen=True)
class AreaModel:
    """Iso-compute-area accounting between designs.

    Args:
        table: silicon constants (defaults to the paper's Table III).
    """

    table: _Table3 = TABLE3

    def iso_area_tiles(self, baseline_tiles: int = 8) -> int:
        """FPRaker tiles fitting in a baseline accelerator's compute area.

        Args:
            baseline_tiles: baseline tile count (paper: 8).

        Returns:
            Tile count, rounded to the nearest integer (paper: 36).
        """
        budget = baseline_tiles * self.table.baseline_tile_area
        return round(budget / self.table.fpraker_tile_area)

    def iso_area_pragmatic_tiles(self, baseline_tiles: int = 8) -> int:
        """Pragmatic-FP tiles at iso compute area (paper: 20).

        Args:
            baseline_tiles: baseline tile count.

        Returns:
            Pragmatic-FP tile count.
        """
        tile_area = self.table.baseline_tile_area * self.table.pragmatic_area_ratio
        budget = baseline_tiles * self.table.baseline_tile_area
        return round(budget / tile_area)


@dataclass
class CoreEnergy:
    """Core (datapath) energy split, in nanojoules (paper Fig 12's core).

    Attributes:
        compute: PE stages 1-2 (exponent block, shifters, adder tree).
        control: PE control units and shared term encoders.
        accumulation: PE stage 3 (accumulator register and normalizer).
    """

    compute: float = 0.0
    control: float = 0.0
    accumulation: float = 0.0

    @property
    def total(self) -> float:
        """Total core energy in nJ."""
        return self.compute + self.control + self.accumulation

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "compute": self.compute,
            "control": self.control,
            "accumulation": self.accumulation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreEnergy":
        """Rebuild a split from :meth:`to_dict` output."""
        return cls(
            compute=float(data["compute"]),
            control=float(data["control"]),
            accumulation=float(data["accumulation"]),
        )


@dataclass
class EnergyBreakdown:
    """Whole-accelerator energy split in nanojoules (paper Fig 12).

    Attributes:
        core: datapath energy split.
        on_chip: global buffer and scratchpad access energy.
        off_chip: DRAM transfer energy.
    """

    core: CoreEnergy
    on_chip: float = 0.0
    off_chip: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in nJ."""
        return self.core.total + self.on_chip + self.off_chip

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown in place."""
        self.core.compute += other.core.compute
        self.core.control += other.core.control
        self.core.accumulation += other.core.accumulation
        self.on_chip += other.on_chip
        self.off_chip += other.off_chip

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "core": self.core.to_dict(),
            "on_chip": self.on_chip,
            "off_chip": self.off_chip,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(
            core=CoreEnergy.from_dict(data["core"]),
            on_chip=float(data["on_chip"]),
            off_chip=float(data["off_chip"]),
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies derived from Table III.

    The baseline constant comes directly from its measured power: 475 mW
    at 600 MHz over 512 MACs/cycle = 1.546 pJ/MAC.  FPRaker's constants
    are chosen so a tile running the paper's average term mix (about 2.5
    terms per serial operand, 2.5-3 cycles per group) dissipates its
    measured 109.5 mW -- the tests pin both calibrations.

    All per-event attributes are in picojoules.
    """

    # Baseline: one fused bfloat16 MAC, bit-parallel.
    baseline_mac_pj: float = 1.546
    # FPRaker per-event energies, calibrated so a tile running the
    # paper's average mix (~3 cycles/group) dissipates its measured
    # 109.5 mW and the workload-average core efficiency lands near the
    # paper's 1.4x.
    term_pj: float = 0.21  # one term through shift + adder tree (compute)
    exponent_group_pj: float = 2.1  # exponent block, once per group (compute)
    accumulate_cycle_pj: float = 1.22  # stage 3, per PE per active cycle
    control_cycle_pj: float = 0.61  # PE control, per PE per cycle
    encode_value_pj: float = 0.18  # term encoder, per serial value encoded
    # Memory access energies.
    global_buffer_pj_per_byte: float = 2.5
    scratchpad_pj_per_byte: float = 0.3
    dram_pj_per_bit: float = 4.0

    def fpraker_core_energy(self, counters: SimCounters, lanes: int = 8) -> CoreEnergy:
        """Core energy of an FPRaker run from its activity counters.

        Args:
            counters: simulator counters (whole-accelerator scale).
            lanes: MAC lanes per PE.

        Returns:
            The core energy split in nJ.
        """
        pe_cycles = counters.lanes.total() / lanes if lanes else 0.0
        terms = counters.terms.processed
        groups = counters.groups
        compute = terms * self.term_pj + groups * self.exponent_group_pj
        control = (
            pe_cycles * self.control_cycle_pj + groups * lanes * self.encode_value_pj
        )
        accumulation = counters.accumulator_updates * self.accumulate_cycle_pj + (
            pe_cycles - counters.accumulator_updates
        ) * (self.accumulate_cycle_pj * 0.25)
        return CoreEnergy(
            compute=compute / 1e3,
            control=control / 1e3,
            accumulation=max(accumulation, 0.0) / 1e3,
        )

    def baseline_core_energy(self, macs: float) -> CoreEnergy:
        """Core energy of the bit-parallel baseline for ``macs`` MACs.

        Args:
            macs: MAC operations retired.

        Returns:
            Core energy (all under ``compute``; the fused MAC is one
            block in the baseline).
        """
        return CoreEnergy(compute=macs * self.baseline_mac_pj / 1e3)

    def on_chip_energy(self, nbytes: float) -> float:
        """Global-buffer access energy in nJ.

        Args:
            nbytes: bytes moved through the global buffer.
        """
        return nbytes * self.global_buffer_pj_per_byte / 1e3

    def scratchpad_energy(self, nbytes: float) -> float:
        """Per-tile scratchpad access energy in nJ.

        Scratchpad fills are tracked by the hierarchy memory engine
        (:mod:`repro.memory.traffic`); the roofline engine moves no
        bytes through here.

        Args:
            nbytes: bytes staged through the scratchpads.
        """
        return nbytes * self.scratchpad_pj_per_byte / 1e3

    def off_chip_energy(self, nbytes: float) -> float:
        """DRAM transfer energy in nJ.

        Args:
            nbytes: bytes transferred off-chip.
        """
        return nbytes * 8.0 * self.dram_pj_per_bit / 1e3
