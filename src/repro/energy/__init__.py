"""Area and energy models calibrated to the paper's Table III.

The paper synthesized both designs at 65 nm (Synopsys DC + Cadence
Innovus) and reports post-layout per-tile area and power.  We reuse
those measurements as model constants and derive per-event energies from
them, so every relative comparison (the paper's actual claims) is
preserved without re-running synthesis.
"""

from repro.energy.model import (
    AreaModel,
    EnergyModel,
    CoreEnergy,
    EnergyBreakdown,
    TABLE3,
)

__all__ = [
    "AreaModel",
    "EnergyModel",
    "CoreEnergy",
    "EnergyBreakdown",
    "TABLE3",
]
