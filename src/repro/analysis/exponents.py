"""Exponent-distribution analysis (paper Fig 6).

Fig 6 shows that the exponents of all three tensors of a training layer
occupy a narrow band of the 8-bit exponent's [-127, 128] range -- the
observation that justifies both the limited per-cycle shift window of
the PE and the base-delta exponent compression.
"""

from __future__ import annotations

import numpy as np

from repro.fp.bfloat16 import bf16_fields


def exponent_histogram(
    values: np.ndarray,
    lo: int = -64,
    hi: int = 48,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized histogram of unbiased exponents of nonzero values.

    Args:
        values: bfloat16-representable array.
        lo: lowest exponent bin edge.
        hi: highest exponent bin edge (exclusive).

    Returns:
        ``(bins, density)``: bin left edges and the fraction of nonzero
        values per bin (sums to <= 1; out-of-range values excluded).
    """
    _, exp, _, is_zero = bf16_fields(np.asarray(values).ravel())
    exps = exp[~is_zero]
    bins = np.arange(lo, hi + 1)
    if exps.size == 0:
        return bins[:-1], np.zeros(bins.size - 1)
    counts, _ = np.histogram(exps, bins=bins)
    return bins[:-1], counts / exps.size


def exponent_range_covered(values: np.ndarray, mass: float = 0.99) -> int:
    """Width of the exponent band holding a probability mass.

    The paper's point: this is a couple dozen values, not the format's
    256 -- which is why small per-group exponent deltas suffice.

    Args:
        values: bfloat16-representable array.
        mass: probability mass the band must hold.

    Returns:
        The band width in exponent steps.
    """
    _, exp, _, is_zero = bf16_fields(np.asarray(values).ravel())
    exps = np.sort(exp[~is_zero])
    if exps.size == 0:
        return 0
    tail = (1.0 - mass) / 2.0
    lo = exps[int(tail * (exps.size - 1))]
    hi = exps[int((1.0 - tail) * (exps.size - 1))]
    return int(hi - lo + 1)
