"""Ideal work-reduction potential of term skipping (paper Fig 2, eq. 4).

The potential speedup of a phase is the ratio of bit-parallel work (8
significand positions per MAC) to the terms actually present in the
phase's serial-side tensor.  FPRaker picks the serial side per layer
and phase, so the potential uses whichever participating tensor has
fewer average terms.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.encoding.booth import term_count
from repro.encoding.terms import TERM_SLOTS
from repro.traces.calibration import get_calibration
from repro.traces.synthetic import generate_tensor
from repro.traces.workloads import PHASE_TENSORS


def phase_potential_speedup(
    model_name: str,
    phase: str,
    sample_size: int = 65536,
    seed: int = 0,
) -> float:
    """Ideal speedup of one training phase from term skipping alone.

    Args:
        model_name: Table I model name.
        phase: ``"AxW"``, ``"GxW"`` or ``"AxG"``.
        sample_size: values sampled per tensor.
        seed: RNG seed.

    Returns:
        ``8 / mean_terms`` of the better (serial) tensor -- the paper's
        eq. 4 with the zero and out-of-range terms removed.
    """
    calibration = get_calibration(model_name)
    means = []
    for tensor in PHASE_TENSORS[phase]:
        tag = f"potential/{model_name}/{phase}/{tensor}".encode()
        rng = np.random.default_rng((seed, zlib.crc32(tag)))
        values = generate_tensor(calibration.for_tensor(tensor), sample_size, rng)
        means.append(float(term_count(values).mean()))
    serial_mean = min(means)
    if serial_mean <= 0.0:
        return float("inf")
    return TERM_SLOTS / serial_mean


def model_potential_speedups(
    model_name: str, sample_size: int = 65536, seed: int = 0
) -> dict[str, float]:
    """Potential speedup of all three phases of a model.

    Args:
        model_name: Table I model name.
        sample_size: values sampled per tensor.
        seed: RNG seed.

    Returns:
        ``phase -> potential speedup``.
    """
    return {
        phase: phase_potential_speedup(
            model_name, phase, sample_size=sample_size, seed=seed
        )
        for phase in ("AxG", "GxW", "AxW")
    }
