"""Value analyses behind the paper's motivation figures (Figs 1, 2, 6)."""

from repro.analysis.sparsity import (
    SparsityReport,
    model_sparsity_report,
    all_models_sparsity,
)
from repro.analysis.potential import (
    phase_potential_speedup,
    model_potential_speedups,
)
from repro.analysis.exponents import exponent_histogram, exponent_range_covered

__all__ = [
    "SparsityReport",
    "model_sparsity_report",
    "all_models_sparsity",
    "phase_potential_speedup",
    "model_potential_speedups",
    "exponent_histogram",
    "exponent_range_covered",
]
