"""Value and term sparsity measurement (paper Figs 1a and 1b).

The paper weights each tensor's sparsity by its frequency of use; here
each model's per-tensor statistics are measured over MAC-weighted layer
samples, which is the same weighting.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.encoding.booth import term_sparsity, value_sparsity
from repro.models.zoo import get_model
from repro.traces.calibration import get_calibration
from repro.traces.synthetic import generate_tensor

TENSORS = ("G", "W", "A")


@dataclass
class SparsityReport:
    """Per-tensor sparsity of one model.

    Attributes:
        model: model name.
        value: ``tensor letter -> zero fraction`` (Fig 1a).
        term: ``tensor letter -> term sparsity`` (Fig 1b).
    """

    model: str
    value: dict[str, float]
    term: dict[str, float]


def model_sparsity_report(
    model_name: str, sample_size: int = 65536, seed: int = 0
) -> SparsityReport:
    """Measure a model's per-tensor value and term sparsity.

    Args:
        model_name: Table I model name.
        sample_size: values sampled per tensor.
        seed: RNG seed.

    Returns:
        The :class:`SparsityReport`.
    """
    get_model(model_name)  # validate the name against the zoo
    calibration = get_calibration(model_name)
    value: dict[str, float] = {}
    term: dict[str, float] = {}
    for tensor in TENSORS:
        tag = f"sparsity/{model_name}/{tensor}".encode()
        rng = np.random.default_rng((seed, zlib.crc32(tag)))
        values = generate_tensor(calibration.for_tensor(tensor), sample_size, rng)
        value[tensor] = value_sparsity(values)
        term[tensor] = term_sparsity(values)
    return SparsityReport(model=model_name, value=value, term=term)


def all_models_sparsity(
    models: tuple[str, ...],
    sample_size: int = 65536,
    seed: int = 0,
) -> list[SparsityReport]:
    """Sparsity reports for a list of models.

    Args:
        models: model names.
        sample_size: values sampled per tensor.
        seed: RNG seed.

    Returns:
        One report per model, in order.
    """
    return [
        model_sparsity_report(name, sample_size=sample_size, seed=seed)
        for name in models
    ]
