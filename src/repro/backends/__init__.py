"""Compiled kernel backends behind a bit-exact dispatch contract.

The three hottest loops of the simulation pipeline -- the compacting
schedule cycle loop (:func:`repro.core.schedule.schedule_from_weights_compact`),
the batched column timeline of :meth:`repro.core.tile.TileSimulator.simulate_strips`,
and the chunked matmul emulation of :class:`repro.nn.fpmath.MatmulEngine` --
dispatch through the small :class:`KernelBackend` interface defined
here instead of hard-coding their numpy bodies.  Two backends register
out of the box:

* ``numpy`` (the default): the existing vectorized loops, moved here
  verbatim -- always available, and the reference every other backend
  is pinned against;
* ``numba``: ``@njit``-compiled per-group/per-cell loops, available
  when the optional :mod:`numba` package is installed (the
  ``[backends]`` extra); requesting it without numba falls back to
  numpy with a one-time warning.

**The dispatch contract is bit-exactness**: every backend must produce
byte-identical results to the serial references retained in
``core/schedule.py`` / ``core/tile.py`` / ``nn/fpmath.py`` -- the same
hypothesis property suites that pin ``strip_engine="batched"`` pin each
backend (``tests/backends/``).  That is why the ``kernel_backend`` knob
deliberately does NOT enter canonical cache keys: a cached result is
valid under every backend.

The registry is open: a Cython or Array-API backend slots in by
extending :data:`KERNEL_BACKENDS` (the lint-pinned literal set, rule
RPR004) and registering a loader with :func:`register_backend`.
"""

from __future__ import annotations

import functools
import warnings
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

# Registered kernel-backend names.  THE source of truth for the
# ``kernel_backend`` dispatch knob: the lint rule RPR004 pins every
# membership test, comparison and CLI ``choices=`` tuple to this set,
# so adding a backend starts here and the lint run then enumerates the
# dispatch sites that still need extending.
KERNEL_BACKENDS = ("numpy", "numba")

__all__ = [
    "KERNEL_BACKENDS",
    "BackendUnavailableError",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]


class BackendUnavailableError(RuntimeError):
    """A registered backend's runtime dependency is not installed."""


class KernelBackend(ABC):
    """The three hot-kernel entry points every backend implements.

    Each method is required to be **bit-identical** to the numpy
    reference implementation for every input the callers can produce;
    the cross-backend property suites in ``tests/backends/`` enforce
    the contract the same way the batched/serial strip engines are
    pinned against each other.
    """

    #: Registry name of the backend (matches a KERNEL_BACKENDS entry).
    name: str = ""

    @abstractmethod
    def compact_cycle_loop(
        self,
        k: np.ndarray,
        kept: np.ndarray,
        window: int,
        sentinel: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the compacting schedule cycle loop over a group batch.

        Args:
            k: ``[groups, lanes, terms]`` ascending alignment offsets,
                sentinel-padded, int16 or int64.
            kept: ``[groups, lanes]`` surviving term counts (int64).
            window: the PE shift window.
            sentinel: the "no term" offset value of ``k``'s dtype.

        Returns:
            ``(cycles, useful, shift_stall, no_term)`` int64 arrays --
            ``cycles`` of shape ``[groups]``, the rest
            ``[groups, lanes]`` -- exactly as the reference loop in
            :func:`repro.core.schedule.schedule_from_weights` produces
            for each group.
        """

    @abstractmethod
    def column_timeline(
        self, col_cycles: np.ndarray, depth: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequence batched column steps under the B-buffer constraint.

        Args:
            col_cycles: ``[strip, cols, steps]`` per-column group
                durations (int64).
            depth: B-broadcast buffer depth (set ``s`` is released once
                every column consumed set ``s - depth``).

        Returns:
            ``(finish, cross_idle)`` int64 arrays of ``col_cycles``'s
            shape: completion time of every column step, and the idle
            cycles each column spent waiting on held-back B sets.
        """

    @abstractmethod
    def accumulate_chunks(
        self,
        a_exp: np.ndarray,
        b_exp: np.ndarray,
        a_mag: np.ndarray,
        b_signed: np.ndarray,
        lut: np.ndarray,
        frac: int,
        group: int,
        fpraker: bool,
        man_dtype: type,
    ) -> np.ndarray:
        """Run the group loop of the chunked matmul emulation.

        Args:
            a_exp: ``[M, chunks, span]`` int16 serial-side exponents.
            b_exp: ``[chunks, span, N]`` int16 parallel-side exponents.
            a_mag: serial-side magnitudes ``[M, chunks, span]`` -- the
                flattened signed-partial LUT indices (int16) in
                ``fpraker`` mode, else signed significands in
                ``man_dtype``.
            b_signed: ``[chunks, span, N]`` signed parallel
                significands scaled by ``2^-14``, in ``man_dtype``.
            lut: the flattened signed-partial CSD table
                (:data:`repro.encoding.booth._LUT_PARTIAL_SIGNED16_FLAT`);
                only read in ``fpraker`` mode.
            frac: accumulator fractional bits.
            group: MACs per accumulation round.
            fpraker: drop out-of-bounds CSD terms of the serial side.
            man_dtype: ``np.float32`` or ``np.float64`` -- the
                significand work dtype (exact either way by the caller's
                range guarantee, so both give identical bytes).

        Returns:
            float64 ``[M, chunks, N]`` chunk-final accumulator values.
        """


# name -> zero-argument loader returning a KernelBackend instance.
_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}


def register_backend(
    name: str,
) -> Callable[[Callable[[], KernelBackend]], Callable[[], KernelBackend]]:
    """Register a backend loader under a :data:`KERNEL_BACKENDS` name.

    Args:
        name: the backend's registry name.

    Returns:
        A decorator storing the loader; the loader runs lazily on the
        first :func:`get_backend` call and may raise
        :class:`BackendUnavailableError` when its dependency is absent.
    """

    def decorate(
        loader: Callable[[], KernelBackend],
    ) -> Callable[[], KernelBackend]:
        _REGISTRY[name] = loader
        return loader

    return decorate


@register_backend("numpy")
def _load_numpy() -> KernelBackend:
    """The always-available numpy reference backend."""
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


@register_backend("numba")
def _load_numba() -> KernelBackend:
    """The optional ``@njit``-compiled backend (``[backends]`` extra)."""
    try:
        from repro.backends.numba_backend import NumbaBackend
    except ImportError as exc:
        raise BackendUnavailableError(
            "kernel backend 'numba' needs the optional numba package "
            f"(pip install repro[backends]): {exc}"
        )
    return NumbaBackend()


@functools.lru_cache(maxsize=None)
def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name``, instantiated once.

    Args:
        name: a :data:`KERNEL_BACKENDS` entry.

    Returns:
        The cached :class:`KernelBackend` instance.

    Raises:
        ValueError: on an unregistered name.
        BackendUnavailableError: when the backend's dependency is
            missing (use :func:`resolve_backend` for the falling-back
            variant).
    """
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{KERNEL_BACKENDS}"
        )
    return _REGISTRY[name]()


@functools.lru_cache(maxsize=None)
def resolve_backend(name: str) -> KernelBackend:
    """:func:`get_backend` with graceful fallback to numpy.

    Every backend is bit-identical by contract, so falling back changes
    speed, never results; the warning fires once per process so sweeps
    do not spam it.

    Args:
        name: a :data:`KERNEL_BACKENDS` entry.

    Returns:
        The requested backend, or the numpy backend when the requested
        one is unavailable.

    Raises:
        ValueError: on an unregistered name.
    """
    try:
        return get_backend(name)
    except BackendUnavailableError as exc:
        warnings.warn(
            f"{exc} -- falling back to the numpy backend "
            "(results are bit-identical by contract, only slower)",
            RuntimeWarning,
            stacklevel=2,
        )
        return get_backend("numpy")


def available_backends() -> tuple[str, ...]:
    """The registered backends whose dependencies import cleanly."""
    names = []
    for name in KERNEL_BACKENDS:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)
