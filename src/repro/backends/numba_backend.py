"""Optional numba-compiled kernel backend (the ``[backends]`` extra).

Importing this module requires :mod:`numba`; the registry loader in
:mod:`repro.backends` turns the ImportError into a
:class:`repro.backends.BackendUnavailableError` so callers fall back to
numpy gracefully.

Every kernel is a straight scalar transliteration of the numpy
reference in :mod:`repro.backends.numpy_backend`, and bit-identity is
by construction, not luck:

* the schedule and timeline kernels are pure integer programs -- the
  same comparisons over the same int64 values in a different loop
  order;
* the matmul kernel's floats are all *exact*: significand products
  carry at most 17 bits, grid-snapped terms are integers strictly
  below ``2^(frac + 2)``, and the caller's ``man_dtype`` gate
  guarantees every group-sum fits float32's 2^24 integer ceiling -- so
  float64 scalar accumulation here and float32 vector accumulation in
  the numpy backend compute the identical integer, and the shared
  round-to-nearest-even snap (``np.rint`` / ``math.frexp`` /
  ``math.ldexp``) does the rest.

The cross-backend property suites in ``tests/backends/`` enforce this
whenever numba is installed.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

from repro.backends import KernelBackend

# Accumulator-exponent sentinel for a zero accumulator; mirrors
# fpmath._EACC_ZERO16: it only ever loses a max() against product
# exponents >= -508.
_EACC_ZERO = -8192

# Digit positions of the serial significand's partial-CSD table: row
# stride of the flattened LUT and the largest in-row cut offset.
_LUT_STRIDE_MAX = 10

# Serial-side CSD cut constant: pmin = (emax - frac + 7) - ABe.
_BF16_FRAC = 7


@njit(cache=True)
def _compact_cycle_loop(k, kept, window, sentinel):
    """Per-group serial form of the compacting schedule cycle loop."""
    groups, lanes, n_terms = k.shape
    last_slot = n_terms - 1
    cycles = np.zeros(groups, dtype=np.int64)
    useful = np.zeros((groups, lanes), dtype=np.int64)
    shift_stall = np.zeros((groups, lanes), dtype=np.int64)
    no_term = np.zeros((groups, lanes), dtype=np.int64)
    index = np.zeros(lanes, dtype=np.int64)
    sent = np.int64(sentinel)
    win = np.int64(window)
    for g in range(groups):
        for lane in range(lanes):
            index[lane] = 0
        while True:
            base = sent
            any_pending = False
            for lane in range(lanes):
                if index[lane] < np.int64(kept[g, lane]):
                    any_pending = True
                    slot = index[lane]
                    if slot > last_slot:
                        slot = last_slot
                    current = np.int64(k[g, lane, slot])
                    if current < base:
                        base = current
            if not any_pending:
                break
            cycles[g] += 1
            for lane in range(lanes):
                if index[lane] < np.int64(kept[g, lane]):
                    slot = index[lane]
                    if slot > last_slot:
                        slot = last_slot
                    current = np.int64(k[g, lane, slot])
                    if current - base <= win:
                        useful[g, lane] += 1
                        index[lane] += 1
                    else:
                        shift_stall[g, lane] += 1
                else:
                    no_term[g, lane] += 1
    return cycles, useful, shift_stall, no_term


@njit(cache=True)
def _column_timeline(col_cycles, depth):
    """Per-strip serial form of the batched column-step timeline."""
    strips, cols, steps = col_cycles.shape
    finish = np.zeros((strips, cols, steps), dtype=np.int64)
    cross_idle = np.zeros((strips, cols, steps), dtype=np.int64)
    for x in range(strips):
        for s in range(steps):
            # B set s is released once every column consumed set
            # s-depth.
            gate = np.int64(0)
            if s >= depth:
                for c in range(cols):
                    if finish[x, c, s - depth] > gate:
                        gate = finish[x, c, s - depth]
            for c in range(cols):
                prev = finish[x, c, s - 1] if s > 0 else np.int64(0)
                start = prev if prev > gate else gate
                cross_idle[x, c, s] = start - prev
                finish[x, c, s] = start + col_cycles[x, c, s]
    return finish, cross_idle


@njit(cache=True)
def _round_finite_scalar(value, frac):
    """Scalar twin of ``fpmath._round_finite`` (RNE significand snap)."""
    if value == 0.0:
        return 0.0
    man, exp = math.frexp(abs(value))
    rounded = np.rint(math.ldexp(man, frac + 1))
    magnitude = math.ldexp(rounded, exp - 1 - frac)
    return magnitude if value > 0.0 else -magnitude


@njit(cache=True)
def _accumulate_chunks_fpraker(a_exp, b_exp, a_idx, b_signed, lut, frac, group):
    """Chunked matmul group loop, fpraker mode (CSD term dropping)."""
    m_rows, chunks, span = a_exp.shape
    n_cols = b_exp.shape[2]
    out = np.zeros((m_rows, chunks, n_cols), dtype=np.float64)
    for m in range(m_rows):
        for c in range(chunks):
            for n in range(n_cols):
                acc = 0.0
                for lo in range(0, span, group):
                    hi = min(lo + group, span)
                    if acc != 0.0:
                        _, exp = math.frexp(abs(acc))
                        emax = np.int64(exp - 1)
                    else:
                        emax = np.int64(_EACC_ZERO)
                    for j in range(lo, hi):
                        abe = np.int64(a_exp[m, c, j]) + np.int64(
                            b_exp[c, j, n]
                        )
                        if abe > emax:
                            emax = abe
                    gexp = emax - frac
                    total = np.rint(math.ldexp(acc, -gexp))
                    for j in range(lo, hi):
                        abe = np.int64(a_exp[m, c, j]) + np.int64(
                            b_exp[c, j, n]
                        )
                        cut = emax - np.int64(frac - _BF16_FRAC) - abe
                        if cut < 0:
                            cut = 0
                        elif cut > _LUT_STRIDE_MAX:
                            cut = _LUT_STRIDE_MAX
                        prod = np.float64(
                            lut[np.int64(a_idx[m, c, j]) + cut]
                        ) * np.float64(b_signed[c, j, n])
                        total += np.rint(math.ldexp(prod, abe - gexp))
                    acc = _round_finite_scalar(
                        math.ldexp(total, gexp), frac
                    )
                out[m, c, n] = acc
    return out


@njit(cache=True)
def _accumulate_chunks_plain(a_exp, b_exp, a_sgnman, b_signed, frac, group):
    """Chunked matmul group loop, bf16 mode (full significands)."""
    m_rows, chunks, span = a_exp.shape
    n_cols = b_exp.shape[2]
    out = np.zeros((m_rows, chunks, n_cols), dtype=np.float64)
    for m in range(m_rows):
        for c in range(chunks):
            for n in range(n_cols):
                acc = 0.0
                for lo in range(0, span, group):
                    hi = min(lo + group, span)
                    if acc != 0.0:
                        _, exp = math.frexp(abs(acc))
                        emax = np.int64(exp - 1)
                    else:
                        emax = np.int64(_EACC_ZERO)
                    for j in range(lo, hi):
                        abe = np.int64(a_exp[m, c, j]) + np.int64(
                            b_exp[c, j, n]
                        )
                        if abe > emax:
                            emax = abe
                    gexp = emax - frac
                    total = np.rint(math.ldexp(acc, -gexp))
                    for j in range(lo, hi):
                        abe = np.int64(a_exp[m, c, j]) + np.int64(
                            b_exp[c, j, n]
                        )
                        prod = np.float64(
                            a_sgnman[m, c, j]
                        ) * np.float64(b_signed[c, j, n])
                        total += np.rint(math.ldexp(prod, abe - gexp))
                    acc = _round_finite_scalar(
                        math.ldexp(total, gexp), frac
                    )
                out[m, c, n] = acc
    return out


class NumbaBackend(KernelBackend):
    """``@njit``-compiled implementation of the three hot kernels."""

    name = "numba"

    def compact_cycle_loop(
        self,
        k: np.ndarray,
        kept: np.ndarray,
        window: int,
        sentinel: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The compacting schedule loop (see :class:`KernelBackend`)."""
        return _compact_cycle_loop(
            np.ascontiguousarray(k),
            np.ascontiguousarray(kept),
            np.int64(window),
            np.int64(sentinel),
        )

    def column_timeline(
        self, col_cycles: np.ndarray, depth: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The batched column-step timeline (see :class:`KernelBackend`)."""
        return _column_timeline(
            np.ascontiguousarray(col_cycles), np.int64(depth)
        )

    def accumulate_chunks(
        self,
        a_exp: np.ndarray,
        b_exp: np.ndarray,
        a_mag: np.ndarray,
        b_signed: np.ndarray,
        lut: np.ndarray,
        frac: int,
        group: int,
        fpraker: bool,
        man_dtype: type,
    ) -> np.ndarray:
        """The chunked matmul group loop (see :class:`KernelBackend`).

        ``man_dtype`` is unused: the scalar kernels accumulate in
        float64, which is bit-identical to the vectorized ``man_dtype``
        sums because every intermediate is an exact integer (the same
        range guarantee that lets the numpy backend narrow to float32).
        """
        args = (
            np.ascontiguousarray(a_exp),
            np.ascontiguousarray(b_exp),
            np.ascontiguousarray(a_mag),
            np.ascontiguousarray(b_signed),
        )
        if fpraker:
            return _accumulate_chunks_fpraker(
                *args, np.ascontiguousarray(lut),
                np.int64(frac), np.int64(group),
            )
        return _accumulate_chunks_plain(
            *args, np.int64(frac), np.int64(group)
        )
