"""The default (and reference) numpy kernel backend.

These are the exact loop bodies that previously lived inline in
``core/schedule.py``, ``core/tile.py`` and ``nn/fpmath.py`` -- moved
here unchanged so every other backend has a always-importable
bit-exact reference to be pinned against.  Keep them boring: any
"optimization" here must re-prove bit-identity against the serial
references those modules retain.
"""

from __future__ import annotations

import numpy as np

from repro.backends import KernelBackend
from repro.nn.fpmath import _BF16_FRAC, _leading_exponent16, _round_finite


class NumpyBackend(KernelBackend):
    """Vectorized numpy implementation of the three hot kernels."""

    name = "numpy"

    def compact_cycle_loop(
        self,
        k: np.ndarray,
        kept: np.ndarray,
        window: int,
        sentinel: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The compacting schedule loop (see :class:`KernelBackend`)."""
        groups, lanes, n_terms = k.shape
        last_slot = n_terms - 1
        cycles = np.zeros(groups, dtype=np.int64)
        useful = np.zeros((groups, lanes), dtype=np.int64)
        shift_stall = np.zeros((groups, lanes), dtype=np.int64)
        no_term = np.zeros((groups, lanes), dtype=np.int64)
        k_live = np.ascontiguousarray(k)
        kept_live = kept
        live = np.arange(groups)
        index = np.zeros((groups, lanes), dtype=np.int64)
        cycles_live = np.zeros(groups, dtype=np.int64)
        useful_live = np.zeros((groups, lanes), dtype=np.int64)
        shift_live = np.zeros((groups, lanes), dtype=np.int64)
        no_term_live = np.zeros((groups, lanes), dtype=np.int64)
        # Flat gather base for the current-term lookup (cheaper than
        # take_along_axis in the hot loop); rebuilt after each
        # compaction.
        flat_base = (
            np.arange(groups)[:, None] * lanes + np.arange(lanes)
        ) * n_terms
        k_flat = k_live.reshape(-1)
        while live.size:
            pending = index < kept_live
            alive = pending.any(axis=1)
            n_alive = int(alive.sum())
            if n_alive * 5 < live.size * 3:
                # Enough groups retired (> 40%): write their ledgers
                # home and shrink the working set.  Compacting lazily
                # keeps the per-iteration cost of the scatter/gather
                # well below the ufunc work it saves; retired groups
                # that linger until the next sweep accumulate nothing
                # (every add below is gated).
                done = ~alive
                home = live[done]
                cycles[home] = cycles_live[done]
                useful[home] = useful_live[done]
                shift_stall[home] = shift_live[done]
                no_term[home] = no_term_live[done]
                live = live[alive]
                if not live.size:
                    break
                k_live = np.ascontiguousarray(k_live[alive])
                kept_live = kept_live[alive]
                index = index[alive]
                pending = pending[alive]
                cycles_live = cycles_live[alive]
                useful_live = useful_live[alive]
                shift_live = shift_live[alive]
                no_term_live = no_term_live[alive]
                flat_base = flat_base[: live.size]
                k_flat = k_live.reshape(-1)
                alive = None  # every group in the set is now alive
            current = k_flat[flat_base + np.minimum(index, last_slot)]
            current = np.where(pending, current, sentinel)
            base = current.min(axis=1)
            fire = pending & (current - base[:, None] <= window)
            useful_live += fire
            index += fire
            shift_live += pending & ~fire
            if alive is None:
                no_term_live += ~pending
                cycles_live += 1
            else:
                no_term_live += (~pending) & alive[:, None]
                cycles_live += alive
        return cycles, useful, shift_stall, no_term

    def column_timeline(
        self, col_cycles: np.ndarray, depth: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The batched column-step timeline (see :class:`KernelBackend`).

        The step loop is unavoidable (each step's release gate depends
        on earlier finishes) but runs once for the whole batch, with
        every strip advancing in lockstep.
        """
        strips, cols, steps = col_cycles.shape
        finish = np.zeros((strips, cols, steps), dtype=np.int64)
        cross_idle = np.zeros((strips, cols, steps), dtype=np.int64)
        prev_finish = np.zeros((strips, cols), dtype=np.int64)
        zero_gate = np.zeros((strips, 1), dtype=np.int64)
        for s in range(steps):
            # B set s is released once every column consumed set
            # s-depth.
            if s >= depth:
                gate = finish[:, :, s - depth].max(axis=1, keepdims=True)
            else:
                gate = zero_gate
            start = np.maximum(prev_finish, gate)
            cross_idle[:, :, s] = start - prev_finish
            prev_finish = start + col_cycles[:, :, s]
            finish[:, :, s] = prev_finish
        return finish, cross_idle

    def accumulate_chunks(
        self,
        a_exp: np.ndarray,
        b_exp: np.ndarray,
        a_mag: np.ndarray,
        b_signed: np.ndarray,
        lut: np.ndarray,
        frac: int,
        group: int,
        fpraker: bool,
        man_dtype: type,
    ) -> np.ndarray:
        """The chunked matmul group loop (see :class:`KernelBackend`)."""
        m_rows, chunks, span = a_exp.shape
        n_cols = b_exp.shape[2]
        acc = np.zeros((m_rows, chunks, n_cols), dtype=np.float64)
        for lo in range(0, span, group):
            hi = min(lo + group, span)
            # [M, chunks, group, N] product exponents.
            abe = a_exp[:, :, lo:hi, None] + b_exp[None, :, lo:hi, :]
            acc_exp = _leading_exponent16(acc)
            emax = np.maximum(abe.max(axis=2), acc_exp)
            gexp = emax - np.int16(frac)
            if fpraker:
                # pmin = (emax - ABe) - (frac - 7), with the constant
                # folded into the small emax-shaped term.
                pmin = (emax - np.int16(frac - _BF16_FRAC))[
                    :, :, None, :
                ] - abe
                cut = np.clip(pmin, 0, 10)
                manprod = (
                    lut[a_mag[:, :, lo:hi, None] + cut]
                    * b_signed[None, :, lo:hi, :]
                )
            else:
                manprod = (
                    a_mag[:, :, lo:hi, None]
                    * b_signed[None, :, lo:hi, :]
                )
            # Scale the significand product straight onto the snapping
            # grid: value = manprod * 2^(ABe + frac - emax).
            snapped = np.rint(
                np.ldexp(manprod, abe - gexp[:, :, None, :])
            )
            total = snapped.sum(axis=2, dtype=man_dtype).astype(
                np.float64
            ) + np.rint(np.ldexp(acc, -gexp.astype(np.int64)))
            acc = _round_finite(
                np.ldexp(total, gexp.astype(np.int64)), frac
            )
        return acc
