"""Term datatypes for the signed-power-of-two encoding.

A *term* is one signed power of two of a CSD-encoded significand.  For a
bfloat16 significand ``1.xxxxxxx`` (8 bits including the hidden one,
i.e. the integer ``man`` in ``[128, 255]`` standing for ``man * 2^-7``),
CSD digits occupy powers ``p`` in ``[0, 8]`` of the ``2^-7``-scaled
integer, so the term's value relative to the significand's binary point
is ``sign * 2^(p - 7)`` with ``p - 7`` in ``[-7, +1]``.

CSD guarantees no two adjacent nonzero digits, so an 8-bit significand
produces at most :data:`MAX_TERMS` = 5 terms.  A bit-parallel unit, by
contrast, always pays for all :data:`TERM_SLOTS` = 8 bit positions; the
difference is the "term sparsity" FPRaker converts into time.
"""

from __future__ import annotations

from dataclasses import dataclass

# Maximum number of CSD terms of an 8-bit significand (verified
# exhaustively in the tests).
MAX_TERMS = 5

# Bit positions a bit-parallel multiplier processes per bfloat16
# significand (7 stored bits + the hidden one).  Term-sparsity figures
# are reported relative to this.
TERM_SLOTS = 8


@dataclass(frozen=True, order=True)
class Term:
    """One signed power of two of an encoded significand.

    Attributes:
        power: digit position ``p`` of the ``2^-7``-scaled significand
            integer; the term's value is ``sign * 2^(power - 7)`` relative
            to the significand's binary point.
        sign: +1 or -1.
    """

    power: int
    sign: int

    @property
    def exponent_offset(self) -> int:
        """Term exponent relative to the significand's binary point."""
        return self.power - 7

    def value(self) -> float:
        """Numeric value of the term relative to the binary point."""
        return self.sign * 2.0**self.exponent_offset
