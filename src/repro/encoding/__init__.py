"""Canonical signed-power-of-two (Booth) encoding of significands.

FPRaker processes the serial-side operand of each MAC as a stream of
signed powers of two ("terms").  The conversion is performed on the fly
by term encoders shared along tile columns; values stay in bfloat16 in
memory.  This package implements the canonical signed-digit (CSD)
encoding the paper uses, both scalar (for the bit-faithful PE model) and
vectorized through lookup tables (for the performance model and the
sparsity analyses).
"""

from repro.encoding.terms import Term, MAX_TERMS, TERM_SLOTS
from repro.encoding.booth import (
    csd_encode,
    csd_decode,
    terms_of_value,
    term_count,
    term_positions,
    term_sparsity,
)

__all__ = [
    "Term",
    "MAX_TERMS",
    "TERM_SLOTS",
    "csd_encode",
    "csd_decode",
    "terms_of_value",
    "term_count",
    "term_positions",
    "term_sparsity",
]
