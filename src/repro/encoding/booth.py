"""Canonical signed-digit (CSD) encoding, scalar and vectorized.

The scalar :func:`csd_encode` is the specification; the vectorized paths
index precomputed lookup tables over all 256 possible 8-bit significands
(bfloat16's hidden bit plus 7 stored bits), which is how the shared term
encoders of an FPRaker tile column are modelled at speed.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.terms import MAX_TERMS, TERM_SLOTS, Term
from repro.fp.bfloat16 import bf16_fields


def csd_encode(value: int) -> list[Term]:
    """Encode a non-negative integer into canonical signed-digit terms.

    The canonical (non-adjacent) form has no two consecutive nonzero
    digits and the minimal number of nonzero digits among all signed
    binary representations.

    Args:
        value: non-negative integer (for bfloat16 significands,
            ``[0, 255]``).

    Returns:
        Terms in MSB-first order (descending power).
    """
    if value < 0:
        raise ValueError(f"csd_encode expects a non-negative value, got {value}")
    terms: list[Term] = []
    x = value
    power = 0
    while x != 0:
        if x & 1:
            # Choose the digit in {-1, +1} that zeroes two trailing bits.
            if (x & 3) == 3:
                terms.append(Term(power=power, sign=-1))
                x += 1
            else:
                terms.append(Term(power=power, sign=+1))
                x -= 1
        x >>= 1
        power += 1
    terms.reverse()
    return terms


def csd_decode(terms: list[Term]) -> int:
    """Inverse of :func:`csd_encode`.

    Args:
        terms: any list of terms.

    Returns:
        The integer the terms sum to.
    """
    return sum(t.sign * (1 << t.power) for t in terms)


def terms_of_value(x: float) -> list[Term]:
    """CSD terms of a bfloat16-representable scalar's significand.

    Args:
        x: a value representable in bfloat16.

    Returns:
        Terms of the 8-bit significand, MSB-first; empty for zero.
    """
    _, _, man, is_zero = bf16_fields(x)
    if bool(is_zero):
        return []
    return csd_encode(int(man))


def _build_luts() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (count, power, sign) lookup tables over all 8-bit values."""
    count = np.zeros(256, dtype=np.int64)
    power = np.full((256, MAX_TERMS), -1, dtype=np.int64)
    sign = np.zeros((256, MAX_TERMS), dtype=np.int64)
    for v in range(256):
        terms = csd_encode(v)
        if len(terms) > MAX_TERMS:
            raise AssertionError(
                f"CSD of {v} has {len(terms)} terms; MAX_TERMS={MAX_TERMS} is wrong"
            )
        count[v] = len(terms)
        for i, t in enumerate(terms):
            power[v, i] = t.power
            sign[v, i] = t.sign
    return count, power, sign


_LUT_COUNT, _LUT_POWER, _LUT_SIGN = _build_luts()


def _man_index(values: np.ndarray) -> np.ndarray:
    """LUT index of each value's significand: ``[128, 255]``, 0 for zero.

    Reads the stored 7 significand bits straight out of the float32 bit
    pattern (bfloat16 is its upper half) and restores the hidden bit --
    exactly the significand :func:`repro.fp.softfloat.decompose`
    reconstructs for bfloat16-exact, denormal-free inputs, at a fraction
    of the frexp-based cost.  Zero values (all-zero exponent field) map
    to index 0, whose LUT rows are empty/padding.
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    man = ((bits >> np.uint32(16)) & np.uint32(0x7F)) + np.uint32(128)
    nonzero = (bits >> np.uint32(23)) & np.uint32(0xFF) != 0
    return np.where(nonzero, man, np.uint32(0)).astype(np.int64)


# Alignment positions q = 7 - power per LUT slot, precomputed in int16
# for the tile schedule's hot path (padding slots carry q = 8, one past
# any real position, so a padded limit loses every comparison a real
# term could win).
_LUT_Q16 = (7 - _LUT_POWER).astype(np.int16)


def bf16_strip_fields(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Serial-side operand fields for the tile schedule, one bit pass.

    Shares a single float32 bit-pattern extraction between the exponent
    adders' view of the operand and its CSD term expansion.

    Args:
        values: bfloat16-representable array, any shape ``S``.

    Returns:
        ``(exp16, is_zero, count, q16)``: int16 exponents as the adders
        read them (zeros -> -127), the zero mask, int64 term counts,
        and int16 alignment positions ``7 - power`` (8 past ``count``).
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    field = (bits >> np.uint32(23)) & np.uint32(0xFF)
    is_zero = field == 0
    exp16 = field.astype(np.int16) - np.int16(127)
    man = ((bits >> np.uint32(16)) & np.uint32(0x7F)) + np.uint32(128)
    man_idx = np.where(is_zero, np.uint32(0), man).astype(np.int64)
    return exp16, is_zero, _LUT_COUNT[man_idx], _LUT_Q16[man_idx]


def bf16_exponents16(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """int16 operand exponents (zeros -> -127) plus the zero mask."""
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    field = (bits >> np.uint32(23)) & np.uint32(0xFF)
    return field.astype(np.int16) - np.int16(127), field == 0


def term_count(values: np.ndarray) -> np.ndarray:
    """Number of CSD terms per element of a bfloat16-representable array.

    Zero values have zero terms.

    Args:
        values: array representable in bfloat16.

    Returns:
        int64 array of the same shape.
    """
    return _LUT_COUNT[_man_index(values)]


def term_count_powers(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Lean :func:`term_positions`: counts and digit positions only.

    For timing-model callers that mask padded slots themselves (via the
    count), the sign expansion and the zero-value blanking pass of
    :func:`term_positions` are pure overhead -- this variant skips both.
    Slots at or beyond ``count`` carry the LUT's ``-1`` padding (zero
    values have ``count`` 0, so every slot of theirs is padding).

    Args:
        values: array representable in bfloat16, any shape ``S``.

    Returns:
        ``(count, power)``: int64 of shapes ``S`` and
        ``S + (MAX_TERMS,)``.
    """
    man_idx = _man_index(values)
    return _LUT_COUNT[man_idx], _LUT_POWER[man_idx]


def term_positions(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized CSD expansion of an array of bfloat16 values.

    Args:
        values: array representable in bfloat16, any shape ``S``.

    Returns:
        Tuple ``(count, power, sign)``:

        * ``count``: int64 of shape ``S`` -- terms per value (0 for zero);
        * ``power``: int64 of shape ``S + (MAX_TERMS,)`` -- digit
          positions, MSB-first, -1 padding past ``count``;
        * ``sign``: int64 of shape ``S + (MAX_TERMS,)`` -- +1/-1, with 0
          padding past ``count``.
    """
    _, _, man, is_zero = bf16_fields(values)
    man_idx = np.where(is_zero, 0, man)
    count = np.where(is_zero, 0, _LUT_COUNT[man_idx])
    power = _LUT_POWER[man_idx].copy()
    sign = _LUT_SIGN[man_idx].copy()
    # Blank out terms of zero values.
    zero_expand = np.broadcast_to(is_zero[..., None], power.shape)
    power[zero_expand] = -1
    sign[zero_expand] = 0
    return count, power, sign


def _build_partial_lut() -> np.ndarray:
    """Partial CSD sums: ``lut[v, pmin]`` = sum of terms with power >= pmin.

    ``pmin`` ranges 0..10; at 0 the full value is reconstructed, beyond
    the top digit position nothing survives.  The out-of-bounds skipping
    of the FPRaker PE drops exactly the terms below a per-product power
    cutoff, so this table vectorizes its numerical effect.
    """
    lut = np.zeros((256, 11), dtype=np.int64)
    for v in range(256):
        for t in csd_encode(v):
            lut[v, : t.power + 1] += t.sign * (1 << t.power)
    return lut


_LUT_PARTIAL = _build_partial_lut()

# Signed variant: rows 256..511 hold the negated sums, so an index of
# ``man + (sign << 8)`` yields the sign-applied partial directly --
# one gather replaces a gather, a sign select, and a multiply in the
# matmul emulation's hot loop.
_LUT_PARTIAL_SIGNED = np.concatenate([_LUT_PARTIAL, -_LUT_PARTIAL])

# Flat int16 view for the narrow-dtype matmul emulation: partial sums
# fit comfortably (|sum| <= 255), and a precomputed row-stride-11 index
# turns the 2-D gather into one flat gather.
_LUT_PARTIAL_SIGNED16_FLAT = _LUT_PARTIAL_SIGNED.astype(np.int16).ravel()


def partial_csd_sum_signed(
    signed_man: np.ndarray, pmin: np.ndarray
) -> np.ndarray:
    """Sign-applied :func:`partial_csd_sum`.

    Args:
        signed_man: ``man + (sign << 8)`` indices (sign 0/1), any shape.
        pmin: power cutoffs, same shape; clipped to [0, 10].

    Returns:
        int64 array of ``(-1)^sign`` times the partial sums.
    """
    cut = np.clip(np.asarray(pmin, dtype=np.int64), 0, 10)
    return _LUT_PARTIAL_SIGNED[np.asarray(signed_man, dtype=np.int64), cut]


def partial_csd_sum(man: np.ndarray, pmin: np.ndarray) -> np.ndarray:
    """Sum of the CSD terms of ``man`` whose power is at least ``pmin``.

    Args:
        man: 8-bit significand integers (0..255), any shape.
        pmin: power cutoffs, same shape; values are clipped to [0, 10].

    Returns:
        int64 array of partial sums (terms below the cutoff dropped).
    """
    man = np.asarray(man, dtype=np.int64)
    cut = np.clip(np.asarray(pmin, dtype=np.int64), 0, 10)
    return _LUT_PARTIAL[man, cut]


def term_sparsity(values: np.ndarray) -> float:
    """Fraction of bit-parallel work that term encoding exposes as skippable.

    Defined relative to the :data:`TERM_SLOTS` = 8 bit positions a
    bit-parallel significand datapath always processes:
    ``1 - total_terms / (8 * n_values)``.

    Args:
        values: array representable in bfloat16.

    Returns:
        Term sparsity in ``[0, 1]``.
    """
    flat = np.asarray(values).ravel()
    if flat.size == 0:
        return 0.0
    total_terms = int(term_count(flat).sum())
    return 1.0 - total_terms / (TERM_SLOTS * flat.size)


def value_sparsity(values: np.ndarray) -> float:
    """Fraction of exactly-zero elements.

    Args:
        values: any numeric array.

    Returns:
        Zero fraction in ``[0, 1]``.
    """
    flat = np.asarray(values).ravel()
    if flat.size == 0:
        return 0.0
    return float(np.mean(flat == 0.0))
