"""Multi-node scale-out simulation: partition, per-node sim, aggregate.

One :class:`ScaleOutSimulator` answers "how does this accelerator scale
to a pod?": it splits a model's :class:`PhaseWorkload` list across N
:class:`ComputeNode`\\ s with :func:`repro.scale.partition.partition_workloads`,
runs each node through the *unchanged* single-accelerator simulators
(the batched strip engine and both memory engines work as-is), prices
each node's inter-node traffic with the link/NoC model of
:mod:`repro.scale.interconnect`, and aggregates everything into one
:class:`ScaleOutResult`.

Contracts, mirrored from the repo's engine-dispatch pattern:

* **N=1 is bit-exact**: under every scheme, a one-node scale-out run's
  aggregate cycles, counters, and energy equal the plain
  ``simulate_workload`` result exactly (the partition hands over the
  original workload objects, communication is identically zero, and
  aggregation adds with weight 1.0).  Conformance and hypothesis
  property suites in ``tests/scale/`` pin this.
* **symmetric shards simulate once**: data- and model-parallel nodes
  are identical by construction, so node 0's simulation stands in for
  all N -- an N-node sweep costs one node simulation, not N.
* results serialize exactly (``to_dict``/``from_dict`` float
  round-trip), so scale-out runs ride the same session memo and disk
  cache as single-node runs.

The pipeline makespan uses the standard GPipe schedule: with M
micro-batches over S active stages, the step takes
``(M + S - 1) / M`` times the slowest stage's full-batch time (fill and
drain amortized over the micro-batches).  With one node that factor is
exactly 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.accelerator import AcceleratorSimulator, WorkloadResult
from repro.core.baseline import BaselineAccelerator
from repro.core.config import AcceleratorConfig, fpraker_paper_config
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.core.stats import SimCounters
from repro.core.workload import PhaseWorkload
from repro.energy.model import CoreEnergy, EnergyBreakdown, EnergyModel
from repro.memory.dram import DRAMModel
from repro.scale.interconnect import CommStats, LinkModel, price_comm
from repro.scale.partition import NodePlan, partition_workloads


@dataclass
class ComputeNode:
    """One compute node: a node id plus its simulator and shard.

    Attributes:
        node_id: node index in [0, nodes).
        simulator: the single-accelerator simulator this node runs
            (FPRaker, baseline, or Pragmatic-FP -- unchanged engines).
        workloads: the node's layer-phase shard (empty = idle stage).
    """

    node_id: int
    simulator: object
    workloads: list[PhaseWorkload]

    def run(self, model: str) -> WorkloadResult:
        """Simulate this node's shard (an empty shard costs nothing).

        Args:
            model: model name for the report.

        Returns:
            The node's :class:`WorkloadResult`.
        """
        if not self.workloads:
            return WorkloadResult(
                name=self.simulator.config.name, model=model
            )
        return self.simulator.simulate_workload(self.workloads, model=model)


@dataclass
class NodeSummary:
    """Aggregated outcome of one compute node.

    Attributes:
        node_id: node index.
        layer_phases: layer-phase shards the node simulated.
        macs: MACs the node retired.
        cycles: the node's compute-side cycles (max of compute and
            memory per phase, summed).
        compute_cycles: compute-bound cycles summed over phases.
        dram_cycles: memory-bound cycles summed over phases.
        counters: the node's merged activity counters.
        energy: the node's energy breakdown.
        comm: the node's priced inter-node communication.
    """

    node_id: int
    layer_phases: int
    macs: float
    cycles: float
    compute_cycles: float
    dram_cycles: float
    counters: SimCounters
    energy: EnergyBreakdown
    comm: CommStats

    @property
    def step_cycles(self) -> float:
        """Compute plus communication time of the node for one step."""
        return self.cycles + self.comm.cycles

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "node_id": self.node_id,
            "layer_phases": self.layer_phases,
            "macs": self.macs,
            "cycles": self.cycles,
            "compute_cycles": self.compute_cycles,
            "dram_cycles": self.dram_cycles,
            "counters": self.counters.to_dict(),
            "energy": self.energy.to_dict(),
            "comm": self.comm.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            node_id=int(data["node_id"]),
            layer_phases=int(data["layer_phases"]),
            macs=float(data["macs"]),
            cycles=float(data["cycles"]),
            compute_cycles=float(data["compute_cycles"]),
            dram_cycles=float(data["dram_cycles"]),
            counters=SimCounters.from_dict(data["counters"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            comm=CommStats.from_dict(data["comm"]),
        )


def _summarize_node(
    plan: NodePlan, result: WorkloadResult, comm: CommStats
) -> NodeSummary:
    """Fold one node's simulation result into a :class:`NodeSummary`."""
    return NodeSummary(
        node_id=plan.node_id,
        layer_phases=len(plan.workloads),
        macs=float(result.macs),
        cycles=result.cycles,
        compute_cycles=sum(p.compute_cycles for p in result.phases),
        dram_cycles=sum(p.dram_cycles for p in result.phases),
        counters=result.counters_total(),
        energy=result.energy_total(),
        comm=comm,
    )


@dataclass
class ScaleOutResult:
    """Aggregated outcome of one scale-out simulation.

    Attributes:
        name: configuration name (e.g. "fpraker").
        model: model name.
        scheme: partition scheme used.
        nodes: compute-node count.
        microbatches: micro-batches of the pipeline schedule (equals
            ``nodes`` unless overridden; irrelevant to other schemes).
        node_summaries: one :class:`NodeSummary` per node.
        cycles: aggregate makespan of one training step.
        node_cycles: slowest node's compute time (no communication).
        comm_cycles: slowest node's communication time.
        counters: activity counters summed over nodes.
        energy: node energies summed (links excluded).
        link_energy_nj: inter-node link energy in nanojoules.
    """

    name: str
    model: str
    scheme: str
    nodes: int
    microbatches: int
    node_summaries: list[NodeSummary] = field(default_factory=list)
    cycles: float = 0.0
    node_cycles: float = 0.0
    comm_cycles: float = 0.0
    counters: SimCounters = field(default_factory=SimCounters)
    energy: EnergyBreakdown = field(
        default_factory=lambda: EnergyBreakdown(core=CoreEnergy())
    )
    link_energy_nj: float = 0.0

    @property
    def macs(self) -> float:
        """MACs retired across all nodes (>= the model's, by padding)."""
        return sum(s.macs for s in self.node_summaries)

    @property
    def total_energy_nj(self) -> float:
        """Node energy plus link energy, in nanojoules."""
        return self.energy.total + self.link_energy_nj

    @property
    def comm_wire_bytes(self) -> float:
        """Bytes put on the links across all nodes, per step."""
        return sum(s.comm.wire_bytes for s in self.node_summaries)

    def speedup_vs(self, other: "ScaleOutResult") -> float:
        """Makespan speedup of this run relative to ``other``."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {
            "name": self.name,
            "model": self.model,
            "scheme": self.scheme,
            "nodes": self.nodes,
            "microbatches": self.microbatches,
            "node_summaries": [s.to_dict() for s in self.node_summaries],
            "cycles": self.cycles,
            "node_cycles": self.node_cycles,
            "comm_cycles": self.comm_cycles,
            "counters": self.counters.to_dict(),
            "energy": self.energy.to_dict(),
            "link_energy_nj": self.link_energy_nj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScaleOutResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            model=data["model"],
            scheme=data["scheme"],
            nodes=int(data["nodes"]),
            microbatches=int(data["microbatches"]),
            node_summaries=[
                NodeSummary.from_dict(s) for s in data["node_summaries"]
            ],
            cycles=float(data["cycles"]),
            node_cycles=float(data["node_cycles"]),
            comm_cycles=float(data["comm_cycles"]),
            counters=SimCounters.from_dict(data["counters"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            link_energy_nj=float(data["link_energy_nj"]),
        )


def _aggregate(
    name: str,
    model: str,
    scheme: str,
    nodes: int,
    microbatches: int,
    summaries: list[NodeSummary],
) -> ScaleOutResult:
    """Combine per-node summaries into the aggregate result.

    The makespan rule: data/model-parallel nodes run the same step
    concurrently, so the slowest node (compute plus collectives) binds;
    pipeline stages overlap across micro-batches under the GPipe
    schedule, ``(M + S - 1) / M`` times the slowest stage.  Both
    degenerate to the single node's exact cycle count at N=1.
    """
    counters = SimCounters()
    energy = EnergyBreakdown(core=CoreEnergy())
    link_energy = 0.0
    for summary in summaries:
        counters.add(summary.counters)
        energy.add(summary.energy)
        link_energy += summary.comm.energy_nj
    slowest = max(s.step_cycles for s in summaries)
    if scheme == "pipeline":
        active = sum(1 for s in summaries if s.layer_phases > 0)
        cycles = (microbatches + active - 1) / microbatches * slowest
    else:
        cycles = slowest
    return ScaleOutResult(
        name=name,
        model=model,
        scheme=scheme,
        nodes=nodes,
        microbatches=microbatches,
        node_summaries=summaries,
        cycles=cycles,
        node_cycles=max(s.cycles for s in summaries),
        comm_cycles=max(s.comm.cycles for s in summaries),
        counters=counters,
        energy=energy,
        link_energy_nj=link_energy,
    )


def single_node_result(
    result: WorkloadResult, scheme: str = "data"
) -> ScaleOutResult:
    """View a plain single-accelerator result as a 1-node scale-out run.

    Used where an N-sweep needs its N=1 anchor without re-simulating:
    the aggregate fields equal the workload result's totals exactly
    (the same aggregation code path a 1-node simulation takes).

    Args:
        result: a :class:`WorkloadResult` from any simulator.
        scheme: scheme label to carry in the report.

    Returns:
        The equivalent :class:`ScaleOutResult`.
    """
    summary = NodeSummary(
        node_id=0,
        layer_phases=len(result.phases),
        macs=float(result.macs),
        cycles=result.cycles,
        compute_cycles=sum(p.compute_cycles for p in result.phases),
        dram_cycles=sum(p.dram_cycles for p in result.phases),
        counters=result.counters_total(),
        energy=result.energy_total(),
        comm=CommStats(),
    )
    return _aggregate(result.name, result.model, scheme, 1, 1, [summary])


class ScaleOutSimulator:
    """Partition + per-node simulation + aggregation front end.

    Args:
        config: accelerator configuration *of one node* (defaults to
            the paper's 36-tile FPRaker; baseline and Pragmatic-FP
            configs dispatch to their simulators, mirroring
            :func:`repro.harness.runner.execute_request`).
        nodes: compute-node count (>= 1).
        scheme: partition scheme (``"data"``, ``"model"``,
            ``"pipeline"``).
        link: inter-node link model (defaults to :class:`LinkModel`).
        energy: per-event energy model shared by the node simulators.
        dram: per-node off-chip memory model.
        sample_strips: operand strips sampled per layer-phase.
        sample_steps: reduction groups per strip.
        seed: operand-sampling RNG seed.
        memory_engine: ``"roofline"`` or ``"hierarchy"`` for the node
            simulators (the baseline prices roofline either way).
        microbatches: pipeline micro-batch count (defaults to
            ``nodes``; other schemes ignore it).
        kernel_backend: :data:`repro.backends.KERNEL_BACKENDS` entry
            the node simulators' hot loops run through (bit-identical
            by contract).
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        nodes: int = 1,
        scheme: str = "data",
        link: LinkModel | None = None,
        energy: EnergyModel | None = None,
        dram: DRAMModel | None = None,
        sample_strips: int = 8,
        sample_steps: int = 32,
        seed: int = 1234,
        memory_engine: str = "roofline",
        microbatches: int | None = None,
        kernel_backend: str = "numpy",
    ) -> None:
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        from repro.scale.partition import SCHEMES

        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown partition scheme {scheme!r}; expected {SCHEMES}"
            )
        self.config = config if config is not None else fpraker_paper_config()
        self.nodes = int(nodes)
        self.scheme = scheme
        self.link = link if link is not None else LinkModel()
        self.energy = energy
        self.dram = dram if dram is not None else DRAMModel()
        self.sample_strips = sample_strips
        self.sample_steps = sample_steps
        self.seed = seed
        self.memory_engine = memory_engine
        self.kernel_backend = kernel_backend
        self.microbatches = (
            int(microbatches) if microbatches is not None else self.nodes
        )
        if self.microbatches < 1:
            raise ValueError(
                f"microbatches must be >= 1, got {self.microbatches}"
            )

    def _node_simulator(self):
        """One node's single-accelerator simulator (config dispatch)."""
        if self.config.name == "baseline":
            return BaselineAccelerator(
                self.config, energy=self.energy, dram=self.dram
            )
        simulator_cls = (
            PragmaticFPAccelerator
            if self.config.name == "pragmatic-fp"
            else AcceleratorSimulator
        )
        return simulator_cls(
            self.config,
            energy=self.energy,
            dram=self.dram,
            sample_strips=self.sample_strips,
            sample_steps=self.sample_steps,
            seed=self.seed,
            memory_engine=self.memory_engine,
            kernel_backend=self.kernel_backend,
        )

    def simulate_workload(
        self, workloads: list[PhaseWorkload], model: str = ""
    ) -> ScaleOutResult:
        """Simulate one model's training step across all nodes.

        Args:
            workloads: the model's layer-phases (one training step).
            model: model name for the report (defaults to the first
                workload's).

        Returns:
            The aggregated :class:`ScaleOutResult`.
        """
        if not workloads:
            raise ValueError("empty workload list")
        model = model or workloads[0].model
        plan = partition_workloads(workloads, self.nodes, self.scheme)
        clock = self.config.clock_mhz
        summaries: list[NodeSummary] = []
        if plan.symmetric:
            # Identical shards: simulate node 0, price its comm once,
            # and replicate the summary (distinct node ids only).
            node0 = plan.node_plans[0]
            node = ComputeNode(0, self._node_simulator(), node0.workloads)
            result = node.run(model)
            comm = price_comm(
                node0.comm.payload_bytes,
                node0.comm.wire_bytes,
                node0.comm.steps,
                self.link,
                self.dram,
                clock,
            )
            template = _summarize_node(node0, result, comm)
            for node_plan in plan.node_plans:
                summary = NodeSummary.from_dict(template.to_dict())
                summary.node_id = node_plan.node_id
                summaries.append(summary)
        else:
            simulator = self._node_simulator()
            for node_plan in plan.node_plans:
                node = ComputeNode(
                    node_plan.node_id, simulator, node_plan.workloads
                )
                result = node.run(model)
                comm = price_comm(
                    node_plan.comm.payload_bytes,
                    node_plan.comm.wire_bytes,
                    node_plan.comm.steps,
                    self.link,
                    self.dram,
                    clock,
                )
                summaries.append(_summarize_node(node_plan, result, comm))
        return _aggregate(
            self.config.name,
            model,
            self.scheme,
            self.nodes,
            self.microbatches if self.scheme == "pipeline" else 1,
            summaries,
        )
