"""Multi-node scale-out layer: partitioning, links, and aggregation.

Splits one model's training-step workload across N compute nodes under
data-, model-, or pipeline-parallel mappings, runs each node through
the unchanged single-accelerator simulators, and prices the inter-node
collectives through a simple link/NoC model.  See
``docs/ARCHITECTURE.md`` for how this layer slots into the repo and
:mod:`repro.scale.scaleout` for the N=1 bit-exactness contract.
"""

from repro.scale.interconnect import (
    CommStats,
    LinkModel,
    all_gather_wire_bytes,
    all_reduce_wire_bytes,
    price_comm,
)
from repro.scale.partition import (
    SCHEMES,
    CommVolume,
    NodePlan,
    PartitionPlan,
    partition_workloads,
)
from repro.scale.scaleout import (
    ComputeNode,
    NodeSummary,
    ScaleOutResult,
    ScaleOutSimulator,
    single_node_result,
)

__all__ = [
    "CommStats",
    "LinkModel",
    "all_gather_wire_bytes",
    "all_reduce_wire_bytes",
    "price_comm",
    "SCHEMES",
    "CommVolume",
    "NodePlan",
    "PartitionPlan",
    "partition_workloads",
    "ComputeNode",
    "NodeSummary",
    "ScaleOutResult",
    "ScaleOutSimulator",
    "single_node_result",
]
