"""Split a workload across N compute nodes under a parallelism scheme.

A :class:`PartitionPlan` maps a model's :class:`PhaseWorkload` list onto
N :class:`NodePlan` shards, one per compute node, plus the raw
communication volumes each node owes per training step.  Three schemes
are implemented, mirroring how training is actually sharded:

========== ===================================================================
scheme     what each node holds / computes
========== ===================================================================
data       the full model over ``batch / N`` samples: activation and
           gradient streams shrink by N, weights are replicated (read in
           full per node), and each node produces full-size local weight
           gradients that are ring **all-reduced** once per step.
model      a ``1/N`` output-channel shard of every layer: weight streams
           shrink by N, inputs are replicated, each layer's forward
           output shard is **all-gathered** and the backward
           input-gradient partials are **reduce-scattered**.
pipeline   a contiguous block of layers (balanced by MACs): workloads
           pass through *unchanged*, and adjacent stages exchange the
           boundary activation forward and its gradient backward.
========== ===================================================================

MAC and reduction bookkeeping follows the sharded math: data
parallelism splits the batch, so the weight-gradient (``AxG``)
reduction -- which runs over batch x spatial -- shrinks by N; model
parallelism splits output channels, so the input-gradient (``GxW``)
reduction -- over output channels -- shrinks by N.  Per-node MAC counts
are ``ceil(macs / N)`` (the last ragged shard pads, exactly like a
ragged tile edge).

The N=1 plan of **every** scheme assigns the *original workload
objects, untouched* to node 0 with zero communication -- simulating the
plan is then literally the single-node simulation, which is what the
conformance and property suites pin bit for bit.

Value streams are never copied or re-sampled: shards share the parent
workload's (immutable, possibly cache-held) sample arrays, so the
per-workload memos (serial-side choice, base-delta ratio) keep paying
off across nodes and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.workload import PhaseWorkload, StreamSpec
from repro.scale.interconnect import (
    all_gather_wire_bytes,
    all_reduce_wire_bytes,
)

SCHEMES = ("data", "model", "pipeline")


@dataclass
class CommVolume:
    """Raw (unpriced) communication a node owes per training step.

    Attributes:
        payload_bytes: logical bytes its collectives cover.
        wire_bytes: bytes the node puts on its links.
        steps: serialized hops (ring steps or handoffs).
    """

    payload_bytes: float = 0.0
    wire_bytes: float = 0.0
    steps: float = 0.0


@dataclass
class NodePlan:
    """One compute node's shard of the partitioned workload.

    Attributes:
        node_id: node index in [0, nodes).
        workloads: the layer-phases this node simulates (possibly
            rescaled copies; empty for idle pipeline stages).
        comm: the node's per-step communication volumes.
    """

    node_id: int
    workloads: list[PhaseWorkload]
    comm: CommVolume


@dataclass
class PartitionPlan:
    """A full mapping of one workload onto N compute nodes.

    Attributes:
        scheme: partition scheme (one of :data:`SCHEMES`).
        nodes: compute-node count.
        node_plans: one :class:`NodePlan` per node.
        symmetric: every node's shard (and communication) is identical,
            so simulating node 0 suffices -- true for data and model
            parallelism, false for pipeline stages.
    """

    scheme: str
    nodes: int
    node_plans: list[NodePlan]
    symmetric: bool


def _ceil_div(value: int, divisor: int) -> int:
    """Ceiling integer division of non-negative operands."""
    return -(-value // divisor)


def _scale_stream(stream: StreamSpec, factor: float) -> StreamSpec:
    """A stream shrunk to ``factor`` of its volume (copies follow)."""
    return replace(
        stream,
        volume_bytes=stream.volume_bytes * factor,
        dram_bytes=stream.dram_bytes * factor,
        copies=stream.copies * factor,
    )


def _stream_traffic(streams: tuple[StreamSpec, ...]) -> tuple[float, float]:
    """Off-chip (input_bytes, output_bytes) summed from a stream set."""
    input_bytes = sum(s.dram_bytes for s in streams if s.direction == "read")
    output_bytes = sum(s.dram_bytes for s in streams if s.direction == "write")
    return input_bytes, output_bytes


def _shard_workload(
    workload: PhaseWorkload,
    nodes: int,
    stream_factor_of,
    reduction_factor: int,
) -> PhaseWorkload:
    """One node's rescaled copy of a workload.

    Args:
        workload: the original layer-phase.
        nodes: node count (MACs split ``ceil(macs / nodes)``).
        stream_factor_of: callable mapping a stream to its volume scale
            factor (1.0 keeps it, ``1 / nodes`` shards it).
        reduction_factor: divisor applied to the reduction length (1
            keeps it; N when the sharded dimension is the reduction).

    Returns:
        A new :class:`PhaseWorkload` sharing the original value arrays.
    """
    streams = tuple(
        _scale_stream(s, stream_factor_of(s)) for s in workload.streams
    )
    if streams:
        input_bytes, output_bytes = _stream_traffic(streams)
    else:
        # No geometry attached: fall back to uniform byte scaling by
        # the average stream factor (the batch split).
        input_bytes = workload.input_bytes / nodes
        output_bytes = workload.output_bytes / nodes
    return replace(
        workload,
        macs=_ceil_div(workload.macs, nodes),
        reduction=max(1, workload.reduction // reduction_factor),
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        streams=streams,
    )


def _phase_write_volume(
    workloads: list[PhaseWorkload], phase: str, tensor: str
) -> float:
    """Total write-stream volume of one tensor across a phase's layers.

    Falls back to the phases' ``output_bytes`` for workloads without
    stream geometry, so geometry-free workloads still price collectives.
    """
    total = 0.0
    for workload in workloads:
        if workload.phase != phase:
            continue
        if workload.streams:
            total += sum(
                s.volume_bytes
                for s in workload.streams
                if s.direction == "write" and s.tensor == tensor
            )
        else:
            total += workload.output_bytes
    return total


def _data_parallel(
    workloads: list[PhaseWorkload], nodes: int
) -> PartitionPlan:
    """Batch split: activations/gradients shard, weights replicate."""

    def factor_of(stream: StreamSpec) -> float:
        # Weight reads are replicated and local weight gradients are
        # full size before the all-reduce; everything batched shards.
        return 1.0 if stream.tensor == "W" else 1.0 / nodes

    shards = [
        _shard_workload(
            w,
            nodes,
            factor_of,
            # The weight-gradient reduction runs over batch x spatial,
            # which is exactly the dimension the batch split shards.
            reduction_factor=nodes if w.phase == "AxG" else 1,
        )
        for w in workloads
    ]
    # One fused ring all-reduce of the step's weight gradients
    # (gradient bucketing): 2(N-1) serialized neighbor steps.
    payload = _phase_write_volume(workloads, "AxG", "W")
    comm = CommVolume(
        payload_bytes=payload,
        wire_bytes=all_reduce_wire_bytes(payload, nodes),
        steps=2.0 * (nodes - 1),
    )
    return PartitionPlan(
        scheme="data",
        nodes=nodes,
        node_plans=[
            NodePlan(node_id=i, workloads=list(shards), comm=comm)
            for i in range(nodes)
        ],
        symmetric=True,
    )


def _model_parallel(
    workloads: list[PhaseWorkload], nodes: int
) -> PartitionPlan:
    """Output-channel split: weights shard, inputs replicate."""

    def factor_of(phase: str):
        def inner(stream: StreamSpec) -> float:
            if stream.tensor == "W":
                return 1.0 / nodes  # every node holds a weight shard
            if phase == "AxW":
                # Forward: input activations replicate, the output shard
                # is local until the all-gather.
                return 1.0 / nodes if stream.direction == "write" else 1.0
            if phase == "GxW":
                # Backward data: the gradient shard is local; the
                # input-gradient partials are full size pre
                # reduce-scatter.
                return 1.0 / nodes if stream.direction == "read" else 1.0
            # AxG: activations replicate, the gradient shard feeds a
            # weight-gradient shard.
            return 1.0 / nodes if stream.tensor == "G" else 1.0

        return inner

    shards = [
        _shard_workload(
            w,
            nodes,
            factor_of(w.phase),
            # The input-gradient reduction runs over output channels --
            # the sharded dimension.
            reduction_factor=nodes if w.phase == "GxW" else 1,
        )
        for w in workloads
    ]
    # Per-layer collectives: all-gather each forward output, reduce-
    # scatter each backward input-gradient; each is N-1 ring steps.
    gather_payload = _phase_write_volume(workloads, "AxW", "G")
    scatter_payload = _phase_write_volume(workloads, "GxW", "A")
    collectives = sum(
        1 for w in workloads if w.phase in ("AxW", "GxW")
    )
    comm = CommVolume(
        payload_bytes=gather_payload + scatter_payload,
        wire_bytes=(
            all_gather_wire_bytes(gather_payload, nodes)
            + all_gather_wire_bytes(scatter_payload, nodes)
        ),
        steps=float((nodes - 1) * collectives),
    )
    return PartitionPlan(
        scheme="model",
        nodes=nodes,
        node_plans=[
            NodePlan(node_id=i, workloads=list(shards), comm=comm)
            for i in range(nodes)
        ],
        symmetric=True,
    )


def _layer_order(workloads: list[PhaseWorkload]) -> list[str]:
    """Distinct layer names in first-appearance (network) order."""
    seen: dict[str, None] = {}
    for workload in workloads:
        seen.setdefault(workload.layer, None)
    return list(seen)


def _stage_boundaries(
    layers: list[str], layer_macs: dict[str, int], nodes: int
) -> list[list[str]]:
    """Split layers into ``nodes`` contiguous stages balanced by MACs.

    A greedy walk closes each stage once its cumulative MACs reach the
    stage's proportional share, always leaving at least one layer per
    remaining non-empty stage.  Stages beyond the layer count are empty
    (idle nodes).
    """
    total = sum(layer_macs[name] for name in layers)
    stages: list[list[str]] = [[] for _ in range(nodes)]
    stage, acc = 0, 0
    for index, name in enumerate(layers):
        remaining_layers = len(layers) - index
        remaining_stages = nodes - stage
        # Close the stage early if the remaining stages need every
        # remaining layer, or its MAC share is already met.
        if stages[stage] and (
            remaining_layers <= remaining_stages - 1
            or acc >= (stage + 1) * total / nodes
        ):
            if stage < nodes - 1:
                stage += 1
        stages[stage].append(name)
        acc += layer_macs[name]
    return stages


def _pipeline_parallel(
    workloads: list[PhaseWorkload], nodes: int
) -> PartitionPlan:
    """Contiguous layer blocks; boundary activations hand off."""
    layers = _layer_order(workloads)
    layer_macs: dict[str, int] = {}
    for workload in workloads:
        layer_macs[workload.layer] = (
            layer_macs.get(workload.layer, 0) + workload.macs
        )
    stages = _stage_boundaries(layers, layer_macs, nodes)
    # Boundary i sits between stage i and stage i+1; its volume is the
    # output activation of stage i's last layer (== the forward 'G'
    # write of that layer's AxW phase), exchanged forward as the
    # activation and backward as its gradient.
    boundary: list[float] = []
    for stage_layers in stages[:-1]:
        if not stage_layers:
            boundary.append(0.0)
            continue
        last = stage_layers[-1]
        boundary.append(
            _phase_write_volume(
                [w for w in workloads if w.layer == last], "AxW", "G"
            )
        )
    node_plans = []
    for i, stage_layers in enumerate(stages):
        members = set(stage_layers)
        stage_workloads = [w for w in workloads if w.layer in members]
        fwd = boundary[i] if i < nodes - 1 and stage_workloads else 0.0
        bwd = boundary[i - 1] if i > 0 and stage_workloads else 0.0
        comm = CommVolume(
            payload_bytes=fwd + bwd,
            # The activation goes forward and its gradient comes back,
            # each crossing one link.
            wire_bytes=2.0 * fwd + 2.0 * bwd,
            steps=float((1 if fwd else 0) + (1 if bwd else 0)),
        )
        node_plans.append(
            NodePlan(node_id=i, workloads=stage_workloads, comm=comm)
        )
    return PartitionPlan(
        scheme="pipeline",
        nodes=nodes,
        node_plans=node_plans,
        symmetric=False,
    )


def partition_workloads(
    workloads: list[PhaseWorkload], nodes: int, scheme: str
) -> PartitionPlan:
    """Partition a workload list across N nodes under a scheme.

    Args:
        workloads: one model's layer-phases (one training step).
        nodes: compute-node count (>= 1).
        scheme: ``"data"``, ``"model"`` or ``"pipeline"``.

    Returns:
        The :class:`PartitionPlan`.  With one node the plan holds the
        *original* workload objects and zero communication, so its
        simulation is bit-identical to the unpartitioned path.

    Raises:
        ValueError: on an unknown scheme, a non-positive node count, or
            an empty workload list.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown partition scheme {scheme!r}; expected {SCHEMES}")
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if not workloads:
        raise ValueError("empty workload list")
    if nodes == 1:
        return PartitionPlan(
            scheme=scheme,
            nodes=1,
            node_plans=[
                NodePlan(node_id=0, workloads=list(workloads), comm=CommVolume())
            ],
            symmetric=True,
        )
    if scheme == "data":
        return _data_parallel(workloads, nodes)
    if scheme == "model":
        return _model_parallel(workloads, nodes)
    return _pipeline_parallel(workloads, nodes)
