"""Inter-node link/NoC model and communication pricing.

Scale-out simulation splits one accelerator's work across N compute
nodes (tiles or chips); whatever a partition scheme exchanges between
nodes -- gradient all-reduces, activation all-gathers, pipeline
handoffs -- is priced here.  The model is deliberately simple and
closed form, mirroring the single-node memory roofline's style:

* a :class:`LinkModel` carries per-direction link bandwidth, a per-hop
  latency, and a per-bit transfer energy (NVLink/inter-chip-NoC
  ballpark figures by default);
* collective volumes follow the standard ring algorithms
  (:func:`all_reduce_wire_bytes`, :func:`all_gather_wire_bytes`):
  bandwidth-optimal schedules whose per-node wire traffic is a pure
  function of the payload and the node count;
* the landing side of every remote byte still crosses the receiving
  node's memory system, so wire traffic is also priced through the
  container machinery of :mod:`repro.memory` -- remote payloads move
  in the same 32x32-bfloat16 containers as DRAM streams, and the
  container-granular byte count feeds the node's
  :class:`repro.memory.dram.DRAMModel`.

Everything degenerates to exactly zero at one node: no wire bytes, no
hops, no energy -- which is one half of the N=1 bit-exactness contract
(:mod:`repro.scale.scaleout` holds the other half).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.container import CONTAINER_BYTES, containers_for_bytes
from repro.memory.dram import DRAMModel


@dataclass(frozen=True)
class LinkModel:
    """Point-to-point inter-node link (ring/mesh NoC hop).

    Attributes:
        link_gbs: per-direction link bandwidth in GB/s (inter-chip
            serdes ballpark; a pod-style 100 GB/s by default).
        hop_latency_cycles: accelerator cycles of latency per hop --
            serialization, switching, and synchronization overhead paid
            once per collective step or handoff.
        energy_pj_per_bit: transfer energy per bit moved over a link
            (inter-chip serdes cost, cheaper than DRAM's 4 pJ/bit).
    """

    link_gbs: float = 100.0
    hop_latency_cycles: float = 64.0
    energy_pj_per_bit: float = 0.8

    def bytes_per_cycle(self, clock_mhz: float) -> float:
        """Deliverable bytes per accelerator clock cycle.

        Args:
            clock_mhz: accelerator clock (paper: 600 MHz).

        Returns:
            Bytes per cycle at the link bandwidth.
        """
        return self.link_gbs * 1e9 / (clock_mhz * 1e6)

    def transfer_cycles(self, nbytes: float, clock_mhz: float) -> float:
        """Cycles to move ``nbytes`` over one link.

        Args:
            nbytes: bytes transferred (non-positive or NaN cost 0).
            clock_mhz: accelerator clock.

        Returns:
            Transfer time in accelerator cycles.
        """
        if not nbytes > 0:  # also catches NaN
            return 0.0
        return nbytes / self.bytes_per_cycle(clock_mhz)

    def transfer_energy_nj(self, nbytes: float) -> float:
        """Energy to move ``nbytes`` over the links, in nanojoules."""
        if not nbytes > 0:
            return 0.0
        return nbytes * 8.0 * self.energy_pj_per_bit / 1e3


def all_reduce_wire_bytes(payload_bytes: float, nodes: int) -> float:
    """Per-node wire traffic of a ring all-reduce.

    The bandwidth-optimal ring moves every payload byte around the ring
    twice (reduce-scatter then all-gather), so each node sends and
    receives ``2 * (N - 1) / N`` of the payload.

    Args:
        payload_bytes: bytes reduced (e.g. one step's weight gradients).
        nodes: participating nodes.

    Returns:
        Bytes each node puts on the wire (0 for one node).
    """
    if nodes <= 1 or not payload_bytes > 0:
        return 0.0
    return 2.0 * (nodes - 1) / nodes * payload_bytes


def all_gather_wire_bytes(payload_bytes: float, nodes: int) -> float:
    """Per-node wire traffic of a ring all-gather (or reduce-scatter).

    Each node forwards every other node's shard once: ``(N - 1) / N``
    of the full payload.

    Args:
        payload_bytes: full gathered size (sum of all shards).
        nodes: participating nodes.

    Returns:
        Bytes each node puts on the wire (0 for one node).
    """
    if nodes <= 1 or not payload_bytes > 0:
        return 0.0
    return (nodes - 1) / nodes * payload_bytes


@dataclass
class CommStats:
    """Priced inter-node communication of one node for one step.

    Attributes:
        payload_bytes: logical bytes the node's collectives cover (the
            tensor sizes, before the ring schedule multiplies them).
        wire_bytes: bytes the node actually puts on its links.
        steps: serialized collective steps / handoffs (each pays one
            hop latency).
        link_cycles: wire transfer time at link bandwidth.
        dram_cycles: cycles for the landed bytes to cross the node's
            own memory system (container-granular, DRAM bandwidth).
        latency_cycles: accumulated per-hop latency.
        energy_nj: link transfer energy in nanojoules.
    """

    payload_bytes: float = 0.0
    wire_bytes: float = 0.0
    steps: float = 0.0
    link_cycles: float = 0.0
    dram_cycles: float = 0.0
    latency_cycles: float = 0.0
    energy_nj: float = 0.0

    FIELDS = (
        "payload_bytes",
        "wire_bytes",
        "steps",
        "link_cycles",
        "dram_cycles",
        "latency_cycles",
        "energy_nj",
    )

    @property
    def cycles(self) -> float:
        """Communication time of the node for one training step.

        Wire transfer and the landing side's memory system pipeline
        against each other (the slower binds); hop latencies are
        serialized on top.
        """
        return max(self.link_cycles, self.dram_cycles) + self.latency_cycles

    def to_dict(self) -> dict:
        """JSON-serializable form (exact float round-trip)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "CommStats":
        """Rebuild stats from :meth:`to_dict` output."""
        return cls(**{name: float(data[name]) for name in cls.FIELDS})


def price_comm(
    payload_bytes: float,
    wire_bytes: float,
    steps: float,
    link: LinkModel,
    dram: DRAMModel,
    clock_mhz: float,
) -> CommStats:
    """Price one node's communication volumes into a :class:`CommStats`.

    Args:
        payload_bytes: logical collective payload of the node.
        wire_bytes: bytes the node puts on its links.
        steps: serialized hops (collective steps / handoffs).
        link: the inter-node link model.
        dram: the node's off-chip memory model (remote bytes land
            through it, container-granular).
        clock_mhz: accelerator clock.

    Returns:
        The priced :class:`CommStats`; all-zero when ``wire_bytes`` is
        zero, preserving N=1 bit-exactness.
    """
    if not wire_bytes > 0:
        return CommStats(payload_bytes=float(payload_bytes))
    landed = containers_for_bytes(wire_bytes) * CONTAINER_BYTES
    return CommStats(
        payload_bytes=float(payload_bytes),
        wire_bytes=float(wire_bytes),
        steps=float(steps),
        link_cycles=link.transfer_cycles(wire_bytes, clock_mhz),
        dram_cycles=dram.transfer_cycles(landed, clock_mhz),
        latency_cycles=float(steps) * link.hop_latency_cycles,
        energy_nj=link.transfer_energy_nj(wire_bytes),
    )
