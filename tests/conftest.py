"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.fp.bfloat16 import bf16_quantize


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def bf16_vector(rng):
    """A bfloat16-exact vector with zeros sprinkled in."""
    values = rng.normal(0.0, 2.0, 64)
    values[rng.random(64) < 0.2] = 0.0
    return bf16_quantize(values)


@pytest.fixture
def bf16_pairs(rng):
    """Two bfloat16-exact operand groups of 8 (one PE group)."""
    a = bf16_quantize(rng.normal(0.0, 1.0, 8))
    b = bf16_quantize(rng.normal(0.0, 4.0, 8))
    return a, b
