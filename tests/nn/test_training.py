"""Tests for the training loop, optimizer, data, and training-time hooks."""

import numpy as np
import pytest

from repro.nn.data import SyntheticDataset, synthetic_images
from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.prune import MagnitudePruner, prune_by_magnitude
from repro.nn.quantize import (
    PactQuantizer,
    pact_quantize_activations,
    quantize_weights_symmetric,
)
from repro.nn.sakr import sakr_accumulator_bits, sakr_accumulator_profile
from repro.nn.training import TraceRecorder, Trainer


def _mlp(engine, rng, classes=3):
    return Sequential(
        [
            Flatten(),
            Dense(64, 32, engine, rng, name="fc1"),
            ReLU(),
            Dense(32, classes, engine, rng, name="fc2"),
        ]
    )


class TestSyntheticData:
    def test_deterministic(self):
        d1 = synthetic_images(seed=3)
        d2 = synthetic_images(seed=3)
        assert np.array_equal(d1.train_x, d2.train_x)
        assert np.array_equal(d1.train_y, d2.train_y)

    def test_split_sizes(self):
        data = synthetic_images(classes=3, samples_per_class=100, test_fraction=0.2)
        assert len(data.test_y) == 60
        assert len(data.train_y) == 240

    def test_all_classes_present(self):
        data = synthetic_images(classes=5, samples_per_class=50)
        assert set(np.unique(data.train_y)) == set(range(5))

    def test_normalized(self):
        data = synthetic_images(seed=1)
        full = np.concatenate([data.train_x, data.test_x])
        assert abs(full.mean()) < 0.05
        assert full.std() == pytest.approx(1.0, abs=0.05)

    def test_batches_cover_everything(self, rng):
        data = synthetic_images(classes=2, samples_per_class=40)
        batches = data.batches(16, rng)
        total = sum(len(y) for _, y in batches)
        assert total == len(data.train_y)


class TestSGD:
    def test_plain_step(self):
        param = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        SGD(lr=0.1, momentum=0.0).step([(param, grad)])
        assert np.allclose(param, [0.95, 2.05])

    def test_momentum_accumulates(self):
        param = np.array([0.0])
        grad = np.array([1.0])
        opt = SGD(lr=1.0, momentum=0.5)
        opt.step([(param, grad)])
        assert param[0] == -1.0
        opt.step([(param, grad)])
        assert param[0] == -2.5  # velocity 1.5

    def test_weight_decay(self):
        param = np.array([10.0])
        grad = np.array([0.0])
        SGD(lr=0.1, momentum=0.0, weight_decay=0.1).step([(param, grad)])
        assert param[0] == pytest.approx(9.9)


class TestTrainer:
    def test_training_learns(self):
        data = synthetic_images(classes=3, samples_per_class=80, seed=5)
        rng = np.random.default_rng(0)
        net = _mlp(MatmulEngine(), rng)
        trainer = Trainer(net, SGD(lr=0.1), batch_size=32, seed=1)
        history = trainer.fit(data, epochs=6)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.final_test_accuracy > 0.8

    def test_deterministic_runs(self):
        data = synthetic_images(classes=2, samples_per_class=40, seed=5)

        def run():
            rng = np.random.default_rng(0)
            net = _mlp(MatmulEngine(), rng, classes=2)
            trainer = Trainer(net, SGD(lr=0.05), batch_size=16, seed=1)
            return trainer.fit(data, epochs=3)

        h1, h2 = run(), run()
        assert h1.train_loss == h2.train_loss
        assert h1.test_accuracy == h2.test_accuracy

    def test_recorder_snapshots(self):
        data = synthetic_images(classes=2, samples_per_class=30, seed=5)
        rng = np.random.default_rng(0)
        net = _mlp(MatmulEngine(), rng, classes=2)
        trainer = Trainer(net, SGD(lr=0.05), batch_size=16, seed=1)
        recorder = TraceRecorder(epochs=(0, 2))
        trainer.fit(data, epochs=3, recorder=recorder)
        assert set(recorder.snapshots) == {0, 2}
        weights = recorder.tensor_across_layers(0, "W")
        assert weights.size == 64 * 32 + 32 * 2
        grads = recorder.tensor_across_layers(2, "G")
        assert grads.size > 0

    def test_hooks_called(self):
        data = synthetic_images(classes=2, samples_per_class=30, seed=5)
        rng = np.random.default_rng(0)
        net = _mlp(MatmulEngine(), rng, classes=2)
        trainer = Trainer(net, SGD(lr=0.05), batch_size=16, seed=1)
        seen = []
        trainer.fit(data, epochs=2, hooks=[lambda e, n: seen.append(e)])
        assert seen == [0, 1]


class TestPact:
    def test_activation_grid(self):
        x = np.linspace(-1, 3, 100)
        q = pact_quantize_activations(x, alpha=2.0, bits=2)
        grid = np.array([0.0, 2 / 3, 4 / 3, 2.0])
        assert all(np.isclose(grid, v).any() for v in np.unique(q))

    def test_weight_symmetric(self, rng):
        w = rng.normal(0, 1, 1000)
        q = quantize_weights_symmetric(w, bits=4)
        assert np.unique(q).size <= 15
        assert np.abs(q).max() <= np.abs(w).max() + 1e-12

    def test_zero_weights(self):
        w = np.zeros(10)
        assert np.array_equal(quantize_weights_symmetric(w, 4), w)

    def test_quantizer_hook_reduces_terms(self, rng):
        from repro.encoding.booth import term_count
        from repro.fp.bfloat16 import bf16_quantize

        net = _mlp(MatmulEngine(), rng, classes=2)
        before = term_count(bf16_quantize(net.layers[1].weight)).mean()
        PactQuantizer(bits=4)(0, net)
        after = term_count(bf16_quantize(net.layers[1].weight)).mean()
        assert after < before

    def test_start_epoch_respected(self, rng):
        net = _mlp(MatmulEngine(), rng, classes=2)
        original = net.layers[1].weight.copy()
        PactQuantizer(bits=4, start_epoch=5)(0, net)
        assert np.array_equal(net.layers[1].weight, original)


class TestPruning:
    def test_prune_by_magnitude(self, rng):
        w = rng.normal(0, 1, 1000)
        keep = prune_by_magnitude(w, 0.5)
        assert keep.mean() == pytest.approx(0.5, abs=0.02)
        assert np.abs(w[keep]).min() >= np.abs(w[~keep]).max()

    def test_sparsity_validation(self, rng):
        with pytest.raises(ValueError):
            prune_by_magnitude(rng.normal(0, 1, 10), 1.0)

    def test_pruner_maintains_sparsity(self, rng):
        net = _mlp(MatmulEngine(), rng, classes=2)
        pruner = MagnitudePruner(sparsity=0.5, regrow_fraction=0.0)
        pruner(0, net)
        assert pruner.measured_sparsity(net) == pytest.approx(0.5, abs=0.02)

    def test_regrow_releases_some(self, rng):
        net = _mlp(MatmulEngine(), rng, classes=2)
        pruner = MagnitudePruner(sparsity=0.8, regrow_fraction=0.2)
        pruner(0, net)
        assert pruner.measured_sparsity(net) < 0.8


class TestSakr:
    def test_monotone_in_reduction(self):
        widths = [sakr_accumulator_bits(n) for n in (8, 64, 512, 4096)]
        assert widths == sorted(widths)

    def test_capped_at_hardware_width(self):
        assert sakr_accumulator_bits(2**40) == 12

    def test_floor(self):
        assert sakr_accumulator_bits(1) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            sakr_accumulator_bits(0)

    def test_profile(self):
        profile = sakr_accumulator_profile({"a": 64, "b": 4096})
        assert profile["a"] < profile["b"]
        assert set(profile) == {"a", "b"}
