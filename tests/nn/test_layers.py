"""Gradient checks and behavioural tests for the NN layers."""

import numpy as np
import pytest

from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.functional import (
    accuracy,
    col2im,
    cross_entropy,
    im2col,
    softmax,
)
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool2d,
    ReLU,
)


def _engine():
    # Exact arithmetic: numeric differentiation needs float64.
    return MatmulEngine(EngineConfig(mode="fp64"))


def _numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.normal(0, 1, (2, 3, 6, 6))
        cols, oh, ow = im2col(x, kernel=3, stride=1, padding=1)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2 * 36, 27)

    def test_stride(self, rng):
        x = rng.normal(0, 1, (1, 1, 6, 6))
        cols, oh, ow = im2col(x, kernel=2, stride=2)
        assert (oh, ow) == (3, 3)

    def test_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols, _, _ = im2col(x, kernel=2)
        assert list(cols[0]) == [0, 1, 4, 5]
        assert list(cols[1]) == [1, 2, 5, 6]

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> -- the defining property."""
        x = rng.normal(0, 1, (2, 3, 5, 5))
        cols, oh, ow = im2col(x, kernel=3, stride=2, padding=1)
        y = rng.normal(0, 1, cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel=3, stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(0, 5, (10, 7)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_shift_invariant(self, rng):
        logits = rng.normal(0, 1, (4, 5))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_cross_entropy_gradient(self, rng):
        logits = rng.normal(0, 1, (6, 4))
        labels = rng.integers(0, 4, 6)
        _, grad = cross_entropy(logits, labels)
        numeric = _numeric_grad(
            lambda: cross_entropy(logits, labels)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5


class TestDense:
    def test_forward_values(self, rng):
        layer = Dense(4, 3, _engine(), rng)
        layer.weight[...] = np.eye(4, 3)
        layer.bias[...] = 1.0
        out = layer.forward(np.array([[1.0, 2.0, 3.0, 4.0]]))
        assert np.allclose(out, [[2.0, 3.0, 4.0]])

    def test_input_gradient(self, rng):
        layer = Dense(5, 3, _engine(), rng)
        x = rng.normal(0, 1, (4, 5))
        target = rng.normal(0, 1, (4, 3))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        grad_in = layer.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_weight_gradient(self, rng):
        layer = Dense(5, 3, _engine(), rng)
        x = rng.normal(0, 1, (4, 5))
        target = rng.normal(0, 1, (4, 3))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * (out - target))
        numeric = _numeric_grad(loss, layer.weight)
        assert np.allclose(layer.weight_grad, numeric, atol=1e-4)

    def test_traced_tensors(self, rng):
        layer = Dense(4, 2, _engine(), rng)
        x = rng.normal(0, 1, (3, 4))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        traced = layer.traced_tensors()
        assert set(traced) == {"I", "W", "G"}
        assert traced["I"].shape == (3, 4)

    def test_backward_before_forward(self, rng):
        layer = Dense(4, 2, _engine(), rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((3, 2)))


class TestConv2d:
    def test_matches_direct_convolution(self, rng):
        layer = Conv2d(2, 3, 3, _engine(), rng, padding=1)
        x = rng.normal(0, 1, (2, 2, 5, 5))
        out = layer.forward(x)
        assert out.shape == (2, 3, 5, 5)
        # Direct computation for one output position.
        w = layer.weight.reshape(2, 3, 3, 3, order="C")  # fan_in layout
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        patch = padded[0, :, 1:4, 1:4].reshape(-1)
        expected = patch @ layer.weight[:, 1] + layer.bias[1]
        assert out[0, 1, 1, 1] == pytest.approx(float(expected), rel=1e-5)

    def test_input_gradient(self, rng):
        layer = Conv2d(1, 2, 3, _engine(), rng, padding=1)
        x = rng.normal(0, 1, (1, 1, 4, 4))
        target = rng.normal(0, 1, (1, 2, 4, 4))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        grad_in = layer.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_weight_gradient(self, rng):
        layer = Conv2d(1, 2, 3, _engine(), rng)
        x = rng.normal(0, 1, (2, 1, 5, 5))
        target = rng.normal(0, 1, (2, 2, 3, 3))

        def loss():
            return float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(2 * (out - target))
        numeric = _numeric_grad(loss, layer.weight)
        assert np.allclose(layer.weight_grad, numeric, atol=1e-4)

    def test_strided(self, rng):
        layer = Conv2d(1, 1, 3, _engine(), rng, stride=2, padding=1)
        x = rng.normal(0, 1, (1, 1, 8, 8))
        assert layer.forward(x).shape == (1, 1, 4, 4)


class TestElementwiseLayers:
    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        out = relu.forward(x)
        assert np.array_equal(out, [[0.0, 2.0], [0.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, [[0.0, 1.0], [0.0, 0.0]])

    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert np.array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_gradient_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of 5

    def test_maxpool_numeric_gradient(self, rng):
        pool = MaxPool2d(2)
        x = rng.normal(0, 1, (1, 2, 4, 4))
        target = rng.normal(0, 1, (1, 2, 2, 2))

        def loss():
            return float(((pool.forward(x) - target) ** 2).sum())

        out = pool.forward(x)
        grad = pool.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad, numeric, atol=1e-5)

    def test_maxpool_shape_validation(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_flatten_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(0, 1, (2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_dropout_inference_identity(self, rng):
        drop = Dropout(0.5, rng)
        x = rng.normal(0, 1, (100, 10))
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = np.ones((2000, 10))
        out = drop.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rate_validation(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_normalizes(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(3.0, 2.0, (8, 4, 5, 5))
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_numeric_gradient(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(0, 1, (3, 2, 2, 2))
        target = rng.normal(0, 1, (3, 2, 2, 2))

        def loss():
            return float(((bn.forward(x) - target) ** 2).sum())

        out = bn.forward(x)
        grad = bn.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_running_stats_used_at_inference(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn.forward(rng.normal(5.0, 1.0, (16, 2, 3, 3)))
        out = bn.forward(np.full((1, 2, 3, 3), 5.0), training=False)
        assert abs(out.mean()) < 0.2
