"""Tests for the LSTM layer: gradient checks and end-to-end training."""

import numpy as np
import pytest

from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.recurrent import LSTM, synthetic_sequences
from repro.nn.training import Trainer


def _engine():
    return MatmulEngine(EngineConfig(mode="fp64"))


def _numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestLSTMGradients:
    def test_input_gradient(self, rng):
        lstm = LSTM(3, 4, _engine(), rng)
        x = rng.normal(0, 1, (2, 5, 3))
        target = rng.normal(0, 1, (2, 4))

        def loss():
            return float(((lstm.forward(x) - target) ** 2).sum())

        out = lstm.forward(x)
        grad = lstm.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_weight_gradients(self, rng):
        lstm = LSTM(3, 4, _engine(), rng)
        x = rng.normal(0, 1, (2, 4, 3))
        target = rng.normal(0, 1, (2, 4))

        def loss():
            return float(((lstm.forward(x) - target) ** 2).sum())

        out = lstm.forward(x)
        lstm.backward(2 * (out - target))
        for param, grad in (
            (lstm.w_x, lstm.w_x_grad),
            (lstm.w_h, lstm.w_h_grad),
            (lstm.bias, lstm.bias_grad),
        ):
            numeric = _numeric_grad(loss, param)
            assert np.allclose(grad, numeric, atol=1e-4)

    def test_shape_validation(self, rng):
        lstm = LSTM(3, 4, _engine(), rng)
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5, 7)))

    def test_backward_before_forward(self, rng):
        lstm = LSTM(3, 4, _engine(), rng)
        with pytest.raises(RuntimeError):
            lstm.backward(np.zeros((2, 4)))


class TestLSTMTraining:
    def test_learns_sequences(self):
        dataset = synthetic_sequences(classes=3, samples_per_class=80, seed=4)
        rng = np.random.default_rng(0)
        engine = MatmulEngine()
        network = Sequential(
            [
                LSTM(8, 16, engine, rng, name="encoder"),
                Dense(16, 3, engine, rng, name="classifier"),
            ]
        )
        trainer = Trainer(network, SGD(lr=0.1, momentum=0.9), batch_size=32, seed=1)
        history = trainer.fit(dataset, epochs=8)
        assert history.final_test_accuracy > 0.8

    def test_trains_under_fpraker_arithmetic(self):
        """The SNLI-style substrate also runs under the emulated PE."""
        dataset = synthetic_sequences(
            classes=2, samples_per_class=40, time=6, seed=4
        )
        accuracies = {}
        for mode in ("bf16", "fpraker"):
            rng = np.random.default_rng(0)
            engine = MatmulEngine(EngineConfig(mode=mode))
            network = Sequential(
                [
                    LSTM(8, 8, engine, rng, name="encoder"),
                    Dense(8, 2, engine, rng, name="classifier"),
                ]
            )
            trainer = Trainer(
                network, SGD(lr=0.1, momentum=0.9), batch_size=20, seed=1
            )
            history = trainer.fit(dataset, epochs=4)
            accuracies[mode] = history.final_test_accuracy
        assert accuracies["fpraker"] > 0.7
        assert abs(accuracies["fpraker"] - accuracies["bf16"]) < 0.15

    def test_traced_tensors(self, rng):
        lstm = LSTM(3, 4, _engine(), rng)
        lstm.forward(rng.normal(0, 1, (2, 3, 3)))
        traced = lstm.traced_tensors()
        assert "W" in traced and "I" in traced
        assert traced["W"].size == 3 * 16 + 4 * 16


class TestSequenceData:
    def test_shapes(self):
        data = synthetic_sequences(classes=3, samples_per_class=20, time=7, features=5)
        assert data.train_x.shape[1:] == (7, 5)
        assert set(np.unique(data.train_y)) == {0, 1, 2}

    def test_deterministic(self):
        d1 = synthetic_sequences(seed=9)
        d2 = synthetic_sequences(seed=9)
        assert np.array_equal(d1.train_x, d2.train_x)
