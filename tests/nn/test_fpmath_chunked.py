"""Chunk-vectorized matmul emulation vs the serial group-loop reference.

`MatmulEngine._matmul_emulated` runs every full 64-MAC chunk of the
reduction concurrently in int16/float32 sign-magnitude form; the serial
float64 reference (`_matmul_emulated_reference`) is kept as the
bit-exactness anchor, mirroring the serial tile engine.  These tests
pin the two against each other across shapes (chunk boundaries, tails,
single-group reductions), modes, accumulator configurations, and
operand magnitudes up to the bfloat16 extremes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bfloat16 import bf16_quantize
from repro.nn.fpmath import EngineConfig, MatmulEngine

# Operands near the bfloat16 magnitude limits overflow the fp32 outer
# fold to inf in BOTH engines (the emulation's defined saturating
# behavior); numpy flags the cast, the property asserts the bits match.
pytestmark = pytest.mark.filterwarnings(
    "ignore:overflow encountered in cast:RuntimeWarning"
)


def _operands(seed, m, k, n, spread, sparsity):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (m, k)) * 2.0 ** rng.integers(
        -spread, spread + 1, (m, k)
    )
    b = rng.normal(0, 1, (k, n)) * 2.0 ** rng.integers(
        -spread, spread + 1, (k, n)
    )
    a[rng.random(a.shape) < sparsity] = 0.0
    return a, b


def _assert_same(got, want):
    both_nan = np.isnan(got) & np.isnan(want)
    same = ((got == want) & (np.signbit(got) == np.signbit(want))) | both_nan
    assert same.all()


class TestChunkedMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 24),
        k=st.integers(1, 200),
        n=st.integers(1, 12),
        spread=st.sampled_from([0, 4, 20, 120]),
        sparsity=st.sampled_from([0.0, 0.4, 1.0]),
        mode=st.sampled_from(["bf16", "fpraker"]),
        frac_bits=st.sampled_from([5, 12, 23]),
    )
    def test_property(self, seed, m, k, n, spread, sparsity, mode, frac_bits):
        engine = MatmulEngine(EngineConfig(mode=mode, acc_frac_bits=frac_bits))
        a, b = _operands(seed, m, k, n, spread, sparsity)
        fpraker = mode == "fpraker"
        _assert_same(
            engine.matmul(a, b),
            engine._matmul_emulated_reference(a, b, fpraker),
        )

    def test_chunk_boundaries(self):
        """k at, just below, and just above flush points."""
        for k in (63, 64, 65, 127, 128, 129, 512):
            for mode in ("bf16", "fpraker"):
                engine = MatmulEngine(EngineConfig(mode=mode))
                a, b = _operands(k, 5, k, 3, 6, 0.3)
                _assert_same(
                    engine.matmul(a, b),
                    engine._matmul_emulated_reference(a, b, mode == "fpraker"),
                )

    def test_custom_chunk_and_group(self):
        for mode in ("bf16", "fpraker"):
            engine = MatmulEngine(
                EngineConfig(mode=mode, chunk_size=16, group=4)
            )
            a, b = _operands(7, 9, 53, 4, 8, 0.2)
            _assert_same(
                engine.matmul(a, b),
                engine._matmul_emulated_reference(a, b, mode == "fpraker"),
            )

    def test_pre_quantized_flag_is_a_pure_fast_path(self):
        for mode in ("bf16", "fpraker"):
            engine = MatmulEngine(EngineConfig(mode=mode))
            a, b = _operands(11, 8, 96, 6, 10, 0.3)
            aq, bq = bf16_quantize(a), bf16_quantize(b)
            _assert_same(
                engine.matmul(aq, bq, pre_quantized=True),
                engine.matmul(aq, bq),
            )

    def test_all_zero_operands(self):
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        a = np.zeros((4, 70))
        b = np.zeros((70, 3))
        got = engine.matmul(a, b)
        assert (got == 0.0).all()
        _assert_same(got, engine._matmul_emulated_reference(a, b, True))
