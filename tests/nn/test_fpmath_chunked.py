"""Chunk-vectorized matmul emulation vs the serial group-loop reference.

`MatmulEngine._matmul_emulated` runs every full 64-MAC chunk of the
reduction concurrently in int16/float32 sign-magnitude form; the serial
float64 reference (`_matmul_emulated_reference`) is kept as the
bit-exactness anchor, mirroring the serial tile engine.  These tests
pin the two against each other across shapes (chunk boundaries, tails,
single-group reductions), modes, accumulator configurations, and
operand magnitudes up to the bfloat16 extremes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bfloat16 import bf16_quantize
from repro.nn.fpmath import EngineConfig, MatmulEngine

# Operands near the bfloat16 magnitude limits overflow the fp32 outer
# fold to inf in BOTH engines (the emulation's defined saturating
# behavior); numpy flags the cast, the property asserts the bits match.
pytestmark = pytest.mark.filterwarnings(
    "ignore:overflow encountered in cast:RuntimeWarning"
)


def _operands(seed, m, k, n, spread, sparsity):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (m, k)) * 2.0 ** rng.integers(
        -spread, spread + 1, (m, k)
    )
    b = rng.normal(0, 1, (k, n)) * 2.0 ** rng.integers(
        -spread, spread + 1, (k, n)
    )
    a[rng.random(a.shape) < sparsity] = 0.0
    return a, b


def _bimodal_operands(seed, m, k, n):
    """Same-sign operands over two exponent binades.

    Large same-sign terms drive group-sums past float32's 2**24 exact
    range while the small-binade terms snap to odd integers -- the
    combination that exposed the frac-only float32 gate.
    """
    r = np.random.default_rng(seed)
    scale_a = np.where(r.random((m, k)) < 0.25, 2.0**-4, 1.0)
    a = np.abs(r.normal(1.5, 0.3, (m, k))).clip(1.0, 1.99) * scale_a
    scale_b = np.where(r.random((k, n)) < 0.25, 2.0**-4, 1.0)
    b = np.abs(r.normal(1.5, 0.3, (k, n))).clip(1.0, 1.99) * scale_b
    return a, b


def _assert_same(got, want):
    both_nan = np.isnan(got) & np.isnan(want)
    same = ((got == want) & (np.signbit(got) == np.signbit(want))) | both_nan
    assert same.all()


class TestChunkedMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        m=st.integers(1, 24),
        k=st.integers(1, 200),
        n=st.integers(1, 12),
        spread=st.sampled_from([0, 4, 20, 120]),
        sparsity=st.sampled_from([0.0, 0.4, 1.0]),
        mode=st.sampled_from(["bf16", "fpraker"]),
        frac_bits=st.sampled_from([5, 12, 23]),
    )
    def test_property(self, seed, m, k, n, spread, sparsity, mode, frac_bits):
        engine = MatmulEngine(EngineConfig(mode=mode, acc_frac_bits=frac_bits))
        a, b = _operands(seed, m, k, n, spread, sparsity)
        fpraker = mode == "fpraker"
        _assert_same(
            engine.matmul(a, b),
            engine._matmul_emulated_reference(a, b, fpraker),
        )

    def test_chunk_boundaries(self):
        """k at, just below, and just above flush points."""
        for k in (63, 64, 65, 127, 128, 129, 512):
            for mode in ("bf16", "fpraker"):
                engine = MatmulEngine(EngineConfig(mode=mode))
                a, b = _operands(k, 5, k, 3, 6, 0.3)
                _assert_same(
                    engine.matmul(a, b),
                    engine._matmul_emulated_reference(a, b, mode == "fpraker"),
                )

    def test_custom_chunk_and_group(self):
        for mode in ("bf16", "fpraker"):
            engine = MatmulEngine(
                EngineConfig(mode=mode, chunk_size=16, group=4)
            )
            a, b = _operands(7, 9, 53, 4, 8, 0.2)
            _assert_same(
                engine.matmul(a, b),
                engine._matmul_emulated_reference(a, b, mode == "fpraker"),
            )

    def test_pre_quantized_flag_is_a_pure_fast_path(self):
        for mode in ("bf16", "fpraker"):
            engine = MatmulEngine(EngineConfig(mode=mode))
            a, b = _operands(11, 8, 96, 6, 10, 0.3)
            aq, bq = bf16_quantize(a), bf16_quantize(b)
            _assert_same(
                engine.matmul(aq, bq, pre_quantized=True),
                engine.matmul(aq, bq),
            )

    def test_all_zero_operands(self):
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        a = np.zeros((4, 70))
        b = np.zeros((70, 3))
        got = engine.matmul(a, b)
        assert (got == 0.0).all()
        _assert_same(got, engine._matmul_emulated_reference(a, b, True))


class TestFloat32ExactnessBoundary:
    """The chunked path's float32 group-sum gate at the 2^24 boundary.

    Snapped terms are integers bounded by ``2**(frac + 2)``, so a
    group-sum fits float32's 24-bit significand exactly iff
    ``group * 2**(frac + 2) <= 2**24``.  The gate must be group-aware:
    the old ``frac <= 18`` cutoff silently overflowed float32 at
    ``group=64, frac=18`` (bound ``2**26``).
    """

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        frac_bits=st.sampled_from([17, 18, 19]),
        mode=st.sampled_from(["bf16", "fpraker"]),
        spread=st.sampled_from([0, 4, 20]),
    )
    def test_property_at_boundary_fracs(self, seed, frac_bits, mode, spread):
        engine = MatmulEngine(EngineConfig(mode=mode, acc_frac_bits=frac_bits))
        a, b = _operands(seed, 6, 130, 4, spread, 0.2)
        _assert_same(
            engine.matmul(a, b),
            engine._matmul_emulated_reference(a, b, mode == "fpraker"),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        frac_bits=st.sampled_from([17, 18, 19]),
        mode=st.sampled_from(["bf16", "fpraker"]),
    )
    def test_wide_group_at_boundary_fracs(self, seed, frac_bits, mode):
        # Regression: group=64 with frac=18 bounds the group-sum by
        # 2**26 > 2**24, which the old frac-only gate ran in float32.
        engine = MatmulEngine(
            EngineConfig(mode=mode, acc_frac_bits=frac_bits, group=64)
        )
        a, b = _bimodal_operands(seed, 4, 256, 3)
        _assert_same(
            engine.matmul(a, b),
            engine._matmul_emulated_reference(a, b, mode == "fpraker"),
        )

    @pytest.mark.parametrize("mode", ["bf16", "fpraker"])
    def test_wide_group_known_divergence(self, mode):
        # This exact input diverged from the reference under the old
        # frac-only gate: same-sign large terms push the group-sum past
        # 2**24 while smaller-exponent terms snap to odd integers, so
        # the float32 sum loses unit bits and the final rounding flips.
        engine = MatmulEngine(
            EngineConfig(mode=mode, acc_frac_bits=18, group=64)
        )
        a, b = _bimodal_operands(0, 4, 256, 4)
        _assert_same(
            engine.matmul(a, b),
            engine._matmul_emulated_reference(a, b, mode == "fpraker"),
        )

    def test_gate_is_group_aware(self):
        # Direct pin on the dtype choice: default group=8 stays
        # float32 through frac=19; group=64 must widen at frac=18.
        assert 8 * (1 << (19 + 2)) <= (1 << 24)
        assert 64 * (1 << (18 + 2)) > (1 << 24)
        a, b = _operands(3, 2, 150, 2, 6, 0.0)
        wide = MatmulEngine(
            EngineConfig(mode="fpraker", acc_frac_bits=18, group=64)
        )
        _assert_same(
            wide.matmul(a, b),
            wide._matmul_emulated_reference(a, b, True),
        )
