"""Gradient checks and training tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.nn.attention import MeanPool, MultiHeadSelfAttention
from repro.nn.fpmath import EngineConfig, MatmulEngine
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.recurrent import synthetic_sequences
from repro.nn.training import Trainer


def _engine():
    return MatmulEngine(EngineConfig(mode="fp64"))


def _numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestAttentionGradients:
    def test_input_gradient(self, rng):
        attn = MultiHeadSelfAttention(6, 2, _engine(), rng)
        x = rng.normal(0, 1, (2, 4, 6))
        target = rng.normal(0, 1, (2, 4, 6))

        def loss():
            return float(((attn.forward(x) - target) ** 2).sum())

        out = attn.forward(x)
        grad = attn.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad, numeric, atol=1e-4)

    def test_weight_gradients(self, rng):
        attn = MultiHeadSelfAttention(4, 2, _engine(), rng)
        x = rng.normal(0, 1, (1, 3, 4))
        target = rng.normal(0, 1, (1, 3, 4))

        def loss():
            return float(((attn.forward(x) - target) ** 2).sum())

        out = attn.forward(x)
        attn.backward(2 * (out - target))
        for param, grad in attn.parameters():
            numeric = _numeric_grad(loss, param)
            assert np.allclose(grad, numeric, atol=1e-4)

    def test_head_divisibility_validation(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(5, 2, _engine(), rng)

    def test_shape_validation(self, rng):
        attn = MultiHeadSelfAttention(4, 2, _engine(), rng)
        with pytest.raises(ValueError):
            attn.forward(np.zeros((2, 3, 5)))

    def test_meanpool_gradient(self, rng):
        pool = MeanPool()
        x = rng.normal(0, 1, (2, 5, 3))
        target = rng.normal(0, 1, (2, 3))

        def loss():
            return float(((pool.forward(x) - target) ** 2).sum())

        out = pool.forward(x)
        grad = pool.backward(2 * (out - target))
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad, numeric, atol=1e-5)


class TestAttentionTraining:
    def test_learns_sequences(self):
        dataset = synthetic_sequences(
            classes=3, samples_per_class=80, time=8, features=8, seed=2
        )
        rng = np.random.default_rng(0)
        engine = MatmulEngine()
        network = Sequential(
            [
                MultiHeadSelfAttention(8, 2, engine, rng, name="attn"),
                MeanPool(),
                Dense(8, 3, engine, rng, name="classifier"),
            ]
        )
        trainer = Trainer(network, SGD(lr=0.1, momentum=0.9), batch_size=32, seed=1)
        history = trainer.fit(dataset, epochs=10)
        assert history.final_test_accuracy > 0.7

    def test_trains_under_fpraker_arithmetic(self):
        """BERT-style attention also runs under the emulated PE."""
        dataset = synthetic_sequences(
            classes=2, samples_per_class=30, time=5, features=4, seed=2
        )
        rng = np.random.default_rng(0)
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        network = Sequential(
            [
                MultiHeadSelfAttention(4, 2, engine, rng, name="attn"),
                MeanPool(),
                Dense(4, 2, engine, rng, name="classifier"),
            ]
        )
        trainer = Trainer(network, SGD(lr=0.1, momentum=0.9), batch_size=15, seed=1)
        history = trainer.fit(dataset, epochs=4)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_traced_tensors(self, rng):
        attn = MultiHeadSelfAttention(4, 2, _engine(), rng)
        attn.forward(rng.normal(0, 1, (2, 3, 4)))
        traced = attn.traced_tensors()
        assert "W" in traced and "I" in traced
