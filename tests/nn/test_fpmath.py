"""Tests for the arithmetic-mode matmul engine.

The crucial properties: the ``bf16`` mode is bit-identical to the golden
chunk accumulator, and the ``fpraker`` mode is bit-identical to chaining
the scalar FPRaker PE with chunked flushes -- exactly the relationship
between the paper's baseline and its PE.
"""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.fp.accumulator import dot_reference
from repro.fp.bfloat16 import bf16_quantize
from repro.nn.fpmath import EngineConfig, MatmulEngine


def _pe_chain_dot(a, b, chunk=64):
    """Reference: FPRaker PE groups with fp32 chunk flushes."""
    pe = FPRakerPE(PEConfig())
    outer = np.float32(0.0)
    macs = 0
    for k in range(0, a.size, 8):
        pe.process_group(a[k : k + 8], b[k : k + 8])
        macs += min(8, a.size - k)
        if macs >= chunk:
            outer = np.float32(outer + np.float32(pe.value()))
            pe.reset()
            macs = 0
    return float(np.float32(outer + np.float32(pe.value())))


class TestEngineConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(mode="fp8")

    def test_chunk_group_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=60, group=8)


class TestFp32Mode:
    def test_matches_float32(self, rng):
        a = rng.normal(0, 1, (5, 40))
        b = rng.normal(0, 1, (40, 3))
        engine = MatmulEngine(EngineConfig(mode="fp32"))
        expected = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
        assert np.array_equal(engine.matmul(a, b), expected)

    def test_quantize_tensor_fp32(self, rng):
        engine = MatmulEngine(EngineConfig(mode="fp32"))
        x = rng.normal(0, 1, 64)
        assert np.array_equal(
            engine.quantize_tensor(x), x.astype(np.float32).astype(np.float64)
        )


class TestBf16Mode:
    def test_bit_exact_vs_dot_reference(self, rng):
        a = rng.normal(0, 1, (6, 96))
        b = rng.normal(0, 2, (96, 5))
        a[rng.random(a.shape) < 0.3] = 0.0
        engine = MatmulEngine(EngineConfig(mode="bf16"))
        out = engine.matmul(a, b)
        for i in range(6):
            for j in range(5):
                assert out[i, j] == dot_reference(a[i], b[:, j])

    def test_wide_exponent_range(self, rng):
        a = rng.normal(0, 1, (3, 64)) * 2.0 ** rng.integers(-20, 20, (3, 64))
        b = rng.normal(0, 1, (64, 3)) * 2.0 ** rng.integers(-20, 20, (64, 3))
        engine = MatmulEngine(EngineConfig(mode="bf16"))
        out = engine.matmul(a, b)
        for i in range(3):
            for j in range(3):
                assert out[i, j] == dot_reference(a[i], b[:, j])

    def test_quantize_tensor_bf16(self, rng):
        engine = MatmulEngine(EngineConfig(mode="bf16"))
        x = rng.normal(0, 1, 64)
        assert np.array_equal(engine.quantize_tensor(x), bf16_quantize(x))


class TestFprakerMode:
    def test_bit_exact_vs_pe_chain(self, rng):
        a = bf16_quantize(rng.normal(0, 1, (5, 128)))
        b = bf16_quantize(rng.normal(0, 2, (128, 4)))
        a[rng.random(a.shape) < 0.3] = 0.0
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        out = engine.matmul(a, b)
        for i in range(5):
            for j in range(4):
                assert out[i, j] == _pe_chain_dot(a[i], b[:, j])

    def test_close_to_bf16_mode(self, rng):
        """OB skipping only drops sub-grid terms: results track the
        bf16 baseline to well under a percent."""
        a = rng.normal(0, 1, (8, 256))
        b = rng.normal(0, 1, (256, 8))
        bf16 = MatmulEngine(EngineConfig(mode="bf16")).matmul(a, b)
        fpr = MatmulEngine(EngineConfig(mode="fpraker")).matmul(a, b)
        scale = np.abs(a).sum(axis=1, keepdims=True) * np.abs(b).max()
        assert np.all(np.abs(fpr - bf16) <= 0.01 * scale + 1e-6)

    def test_zero_matrix(self):
        engine = MatmulEngine(EngineConfig(mode="fpraker"))
        out = engine.matmul(np.zeros((3, 16)), np.zeros((16, 2)))
        assert np.array_equal(out, np.zeros((3, 2)))


class TestShapes:
    def test_shape_validation(self):
        engine = MatmulEngine()
        with pytest.raises(ValueError):
            engine.matmul(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            engine.matmul(np.zeros(3), np.zeros((3, 2)))

    def test_ragged_k(self, rng):
        """K not a multiple of the group size still works."""
        a = rng.normal(0, 1, (2, 13))
        b = rng.normal(0, 1, (13, 2))
        for mode in ("bf16", "fpraker"):
            out = MatmulEngine(EngineConfig(mode=mode)).matmul(a, b)
            assert out.shape == (2, 2)
            assert np.all(np.abs(out - a @ b) < 0.1 * np.abs(a @ b).max() + 0.1)
