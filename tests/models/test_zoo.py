"""Tests for the model zoo's layer geometry arithmetic."""

import pytest

from repro.models.zoo import (
    MODEL_ZOO,
    STUDIED_MODELS,
    LayerShape,
    get_model,
)


class TestLayerShape:
    def test_conv_macs(self):
        layer = LayerShape(
            name="c", kind="conv", in_channels=64, out_channels=128,
            kernel=3, out_h=28, out_w=28, in_h=28, in_w=28,
        )
        assert layer.reduction == 64 * 9
        assert layer.macs_per_sample == 64 * 9 * 128 * 28 * 28
        assert layer.weight_elems == 64 * 9 * 128

    def test_fc_macs(self):
        layer = LayerShape(name="f", kind="fc", in_channels=512, out_channels=1000)
        assert layer.reduction == 512
        assert layer.macs_per_sample == 512_000

    def test_phase_macs_equal_across_phases(self):
        layer = LayerShape(
            name="c", kind="conv", in_channels=16, out_channels=32,
            kernel=3, out_h=8, out_w=8, in_h=8, in_w=8, count=2,
        )
        macs = {p: layer.phase_macs(p, 4) for p in ("AxW", "GxW", "AxG")}
        assert len(set(macs.values())) == 1
        assert macs["AxW"] == layer.macs_per_sample * 4 * 2

    def test_phase_reductions(self):
        layer = LayerShape(
            name="c", kind="conv", in_channels=16, out_channels=32,
            kernel=3, out_h=8, out_w=8, in_h=8, in_w=8,
        )
        assert layer.phase_reduction("AxW", 4) == 16 * 9
        assert layer.phase_reduction("GxW", 4) == 32 * 9
        assert layer.phase_reduction("AxG", 4) == 8 * 8 * 4

    def test_phase_validation(self):
        layer = LayerShape(name="f", kind="fc", in_channels=8, out_channels=8)
        with pytest.raises(ValueError):
            layer.phase_macs("ZxZ", 1)
        with pytest.raises(ValueError):
            layer.phase_reduction("ZxZ", 1)

    def test_byte_accounting(self):
        layer = LayerShape(
            name="c", kind="conv", in_channels=4, out_channels=8,
            kernel=1, out_h=2, out_w=2, in_h=2, in_w=2, count=3,
        )
        assert layer.input_bytes(10) == 2.0 * 4 * 4 * 10 * 3
        assert layer.output_bytes(10) == 2.0 * 8 * 4 * 10 * 3
        assert layer.weight_bytes() == 2.0 * 4 * 8 * 3


class TestZoo:
    def test_all_studied_models_present(self):
        for name in STUDIED_MODELS:
            assert name in MODEL_ZOO

    def test_accwidth_models_present(self):
        assert "AlexNet" in MODEL_ZOO
        assert "ResNet18" in MODEL_ZOO

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("LeNet-5")

    def test_vgg16_macs_scale(self):
        """VGG16's forward pass is famously ~15.5 GMACs per image."""
        spec = get_model("VGG16")
        forward = sum(l.macs_per_sample * l.count for l in spec.layers)
        assert 14e9 < forward < 17e9

    def test_resnet18_macs_scale(self):
        """ResNet18 forward ~ 1.8 GMACs per image."""
        spec = get_model("ResNet18")
        forward = sum(l.macs_per_sample * l.count for l in spec.layers)
        assert 1.4e9 < forward < 2.3e9

    def test_alexnet_macs_scale(self):
        """AlexNet forward ~ 0.7 GMACs per image."""
        spec = get_model("AlexNet")
        forward = sum(l.macs_per_sample * l.count for l in spec.layers)
        assert 0.5e9 < forward < 1.0e9

    def test_bert_macs_scale(self):
        """BERT-base is ~ 86M params in the encoder stack; per token
        the MAC count is roughly that."""
        spec = get_model("Bert")
        per_row = sum(l.macs_per_sample * l.count for l in spec.layers)
        assert 7e7 < per_row < 1.1e8

    def test_total_activation_bytes_positive(self):
        for name in STUDIED_MODELS:
            assert get_model(name).total_activation_bytes > 0

    def test_training_step_three_phases(self):
        spec = get_model("NCF")
        forward = sum(
            l.phase_macs("AxW", spec.batch) for l in spec.layers
        )
        assert spec.total_macs_per_step == 3 * forward
