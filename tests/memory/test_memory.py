"""Tests for the memory substrate: containers, transposers, buffers, DRAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bfloat16 import bf16_quantize
from repro.memory.buffers import GlobalBuffer, Scratchpad
from repro.memory.container import (
    CONTAINER_BYTES,
    CONTAINER_SIDE,
    container_count,
    containers_for_bytes,
    pack_containers,
    unpack_containers,
)
from repro.memory.dram import DRAMModel
from repro.memory.transposer import (
    BLOCK,
    CYCLES_PER_BLOCK,
    Transposer,
    transpose_blocks,
    transpose_throughput_cycles,
)


class TestContainers:
    def test_roundtrip_exact_multiple(self, rng):
        tensor = bf16_quantize(rng.normal(0, 5, (64, 3, 64)))
        containers = pack_containers(tensor)
        back = unpack_containers(containers, tensor.shape)
        assert np.array_equal(back, tensor)

    def test_roundtrip_with_padding(self, rng):
        tensor = bf16_quantize(rng.normal(0, 5, (33, 2, 50)))
        containers = pack_containers(tensor)
        back = unpack_containers(containers, tensor.shape)
        assert np.array_equal(back, tensor)

    def test_container_count_matches(self, rng):
        for shape in [(64, 3, 64), (33, 2, 50), (1, 1, 1), (32, 5, 32)]:
            tensor = np.zeros(shape)
            assert len(pack_containers(tensor)) == container_count(shape)

    def test_storage_order_channel_column_row(self, rng):
        tensor = bf16_quantize(rng.normal(0, 1, (64, 2, 64)))
        containers = pack_containers(tensor)
        keys = [(c.channel, c.column, c.row) for c in containers]
        assert keys == sorted(keys)

    def test_read_vector_is_channel_run(self, rng):
        tensor = bf16_quantize(rng.normal(0, 1, (32, 1, 32)))
        container = pack_containers(tensor)[0]
        vector = container.read_vector(8, 3)
        assert np.array_equal(vector, tensor[8:16, 0, 3])

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            pack_containers(np.zeros((4, 4)))

    def test_container_count_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            container_count((0, 1, 1))
        with pytest.raises(ValueError):
            container_count((1, -2, 1))

    def test_containers_for_bytes(self):
        assert containers_for_bytes(0) == 0
        assert containers_for_bytes(-10) == 0
        assert containers_for_bytes(float("nan")) == 0
        assert containers_for_bytes(1) == 1
        assert containers_for_bytes(CONTAINER_BYTES) == 1
        assert containers_for_bytes(CONTAINER_BYTES + 1) == 2
        # Fractional bytes (extrapolated traffic) still round up.
        assert containers_for_bytes(CONTAINER_BYTES + 0.5) == 2

    @given(
        st.integers(1, 40), st.integers(1, 3), st.integers(1, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, c, r, k):
        rng = np.random.default_rng(c * 1000 + r * 100 + k)
        tensor = bf16_quantize(rng.normal(0, 2, (c, r, k)))
        back = unpack_containers(pack_containers(tensor), tensor.shape)
        assert np.array_equal(back, tensor)


class TestTransposer:
    def test_transpose_blocks_equals_numpy(self, rng):
        matrix = rng.normal(0, 1, (24, 16))
        assert np.array_equal(transpose_blocks(matrix), matrix.T)

    def test_protocol_errors(self):
        unit = Transposer()
        with pytest.raises(RuntimeError):
            unit.read_column(0)  # read before fill
        for i in range(BLOCK):
            unit.write_row(np.arange(8, dtype=np.float64))
        with pytest.raises(RuntimeError):
            unit.write_row(np.arange(8, dtype=np.float64))  # overfill
        with pytest.raises(ValueError):
            unit.read_column(8)

    def test_wrong_block_size(self):
        with pytest.raises(ValueError):
            Transposer().write_row(np.zeros(7))

    def test_non_multiple_dimensions_rejected(self):
        with pytest.raises(ValueError):
            transpose_blocks(np.zeros((9, 8)))

    def test_access_counts(self, rng):
        matrix = rng.normal(0, 1, (8, 8))
        unit = Transposer()
        for row in matrix:
            unit.write_row(row)
        unit.drain()
        assert unit.writes == 8
        assert unit.reads == 8


class TestGlobalBuffer:
    def test_capacity(self):
        gb = GlobalBuffer()
        assert gb.capacity_bytes == 9 * 4 * 1024 * 1024

    def test_odd_banks_avoid_stride_conflicts(self):
        """The paper gives the GB an odd bank count so stride-2 conv
        layers do not serialize on one bank."""
        odd = GlobalBuffer(banks=9)
        even = GlobalBuffer(banks=8)
        # Stride of 64 values (one bank line times 8): with 8 banks all
        # accesses hit bank 0; with 9 banks they spread.
        odd_cycles = odd.conflict_cycles(stride_values=64, accesses=72)
        even_cycles = even.conflict_cycles(stride_values=64, accesses=72)
        assert odd_cycles < even_cycles
        assert even_cycles == 72  # fully serialized

    def test_sequential_conflict_free(self):
        gb = GlobalBuffer(banks=9)
        cycles = gb.conflict_cycles(stride_values=8, accesses=9)
        assert cycles == 1

    def test_read_burst_counts(self):
        gb = GlobalBuffer(banks=4)
        cycles = gb.read_burst([0, 16, 32, 48])
        assert cycles == 1
        assert gb.reads == 4
        assert gb.conflicts == 0

    def test_scratchpad_counters(self):
        pad = Scratchpad()
        pad.read()
        pad.write()
        assert (pad.reads, pad.writes) == (1, 1)
        assert pad.capacity_bytes == 2048


class TestBufferEdgeCases:
    """Edge cases the event-level traffic engine exposed."""

    def test_read_burst_empty_address_list(self):
        gb = GlobalBuffer()
        assert gb.read_burst([]) == 0
        assert (gb.reads, gb.conflicts) == (0, 0)

    def test_conflict_cycles_zero_and_negative_accesses(self):
        gb = GlobalBuffer()
        assert gb.conflict_cycles(stride_values=8, accesses=0) == 0
        assert gb.conflict_cycles(stride_values=8, accesses=-3) == 0
        assert (gb.reads, gb.conflicts) == (0, 0)

    @pytest.mark.parametrize("stride", [0, 1, 7, 8, 64, 72])
    def test_single_access_costs_one_cycle(self, stride):
        gb = GlobalBuffer()
        assert gb.conflict_cycles(stride_values=stride, accesses=1) == 1
        assert gb.conflicts == 0

    def test_zero_stride_fully_serializes(self):
        gb = GlobalBuffer(banks=9)
        assert gb.conflict_cycles(stride_values=0, accesses=18) == 18
        assert gb.conflicts == 16  # every burst: 9 hits on one bank

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            GlobalBuffer(banks=0)
        with pytest.raises(ValueError):
            GlobalBuffer(access_bytes=0)

    def test_scratchpad_tracks_bytes(self):
        pad = Scratchpad()
        pad.read(32)
        pad.write()  # default 16 B
        assert (pad.bytes_read, pad.bytes_written) == (32.0, 16.0)

    def test_single_access_counters(self):
        gb = GlobalBuffer()
        gb.read(0)
        gb.write(16)
        assert (gb.reads, gb.writes) == (1, 1)


class TestTransposerThroughput:
    def test_zero_blocks_is_free(self):
        assert transpose_throughput_cycles(0) == 0.0
        assert transpose_throughput_cycles(-1.0) == 0.0
        assert transpose_throughput_cycles(float("nan")) == 0.0

    def test_single_unit_cost(self):
        assert transpose_throughput_cycles(3) == 3 * CYCLES_PER_BLOCK

    def test_units_divide_occupancy(self):
        one = transpose_throughput_cycles(144, units=1)
        many = transpose_throughput_cycles(144, units=144)
        assert one == 144 * many

    def test_invalid_units_rejected(self):
        with pytest.raises(ValueError):
            transpose_throughput_cycles(1, units=0)


class TestDRAM:
    def test_peak_bandwidth(self):
        dram = DRAMModel()
        # 4 channels x 3200 MT/s x 4 B = 51.2 GB/s.
        assert dram.peak_bandwidth_gbs == pytest.approx(51.2)

    def test_transfer_cycles_scale(self):
        dram = DRAMModel()
        one = dram.transfer_cycles(1e6, 600.0)
        two = dram.transfer_cycles(2e6, 600.0)
        assert two == pytest.approx(2 * one)

    def test_zero_bytes(self):
        assert DRAMModel().transfer_cycles(0.0, 600.0) == 0.0

    def test_degenerate_transfers_cost_zero_not_nan(self):
        dram = DRAMModel()
        assert dram.transfer_cycles(-128.0, 600.0) == 0.0
        assert dram.transfer_cycles(float("nan"), 600.0) == 0.0

    def test_energy(self):
        dram = DRAMModel(energy_pj_per_bit=4.0)
        # 1 byte = 8 bits = 32 pJ = 0.032 nJ.
        assert dram.transfer_energy_nj(1.0) == pytest.approx(0.032)

    def test_bytes_per_cycle(self):
        dram = DRAMModel()
        expected = 51.2e9 * dram.efficiency / 600e6
        assert dram.bytes_per_cycle(600.0) == pytest.approx(expected)
