"""Unit tests for the vectorized memory-traffic engine."""

import json
import math

import numpy as np
import pytest

from repro.core.workload import PhaseWorkload, StreamSpec
from repro.memory.container import CONTAINER_BYTES, container_count
from repro.memory.dram import DRAMModel
from repro.memory.traffic import (
    MemoryTrafficResult,
    phase_traffic,
    strided_burst_cycles,
    workload_traffic,
)


def _workload(streams=(), input_bytes=0.0, output_bytes=0.0):
    values = np.ones(64)
    return PhaseWorkload(
        model="m", layer="l", phase="AxW", macs=1000, reduction=10,
        tensor_a="A", tensor_b="W", values_a=values, values_b=values,
        input_bytes=input_bytes, output_bytes=output_bytes,
        streams=tuple(streams),
    )


class TestMemoryTrafficResult:
    def test_add_with_weight(self):
        a = MemoryTrafficResult(dram_bytes=10.0, bank_cycles=4.0)
        b = MemoryTrafficResult(dram_bytes=3.0, bank_cycles=1.0)
        a.add(b, weight=2.0)
        assert a.dram_bytes == 16.0
        assert a.bank_cycles == 6.0

    def test_json_round_trip_exact(self):
        result = MemoryTrafficResult(
            dram_bytes=1.1, containers=2.0, dram_cycles=3.3, gb_reads=4.0,
            gb_writes=5.0, bank_cycles=6.6, bank_conflict_cycles=0.7,
            transposer_blocks=8.0, transposer_cycles=9.9,
            scratchpad_bytes=10.1,
        )
        back = MemoryTrafficResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back.to_dict() == result.to_dict()

    def test_memory_cycles_is_binding_resource(self):
        result = MemoryTrafficResult(
            dram_cycles=5.0, bank_cycles=11.0, transposer_cycles=7.0
        )
        assert result.memory_cycles == 11.0


class TestStridedBurstValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            strided_burst_cycles(8, 10, banks=0)
        with pytest.raises(ValueError):
            strided_burst_cycles(8, 10, banks=9, access_bytes=0)

    def test_zero_accesses_cost_nothing(self):
        assert strided_burst_cycles(8, 0) == (0, 0)
        assert strided_burst_cycles(8, -5) == (0, 0)


class TestPhaseTraffic:
    def test_empty_workload_is_all_zero(self):
        traffic = phase_traffic(_workload())
        assert traffic.to_dict() == MemoryTrafficResult().to_dict()
        assert traffic.memory_cycles == 0.0

    def test_fallback_streams_price_byte_totals(self):
        traffic = phase_traffic(
            _workload(input_bytes=1e6, output_bytes=2e5)
        )
        expected = math.ceil(1e6 / CONTAINER_BYTES) + math.ceil(
            2e5 / CONTAINER_BYTES
        )
        assert traffic.containers == expected
        assert traffic.dram_cycles >= DRAMModel().transfer_cycles(1.2e6, 600.0)

    def test_shaped_stream_includes_container_padding(self):
        # 33 channels pad to 64: containers cover 2x32x1x64 values even
        # though the raw tensor holds 33x1x40.
        shape = (33, 1, 40)
        volume = 2.0 * 33 * 1 * 40
        stream = StreamSpec(
            tensor="A", direction="read", volume_bytes=volume,
            dram_bytes=volume, shape=shape, copies=1.0,
        )
        traffic = phase_traffic(_workload([stream]))
        assert traffic.containers == container_count(shape)
        assert traffic.dram_bytes == container_count(shape) * CONTAINER_BYTES
        assert traffic.dram_bytes > volume

    def test_compression_ratio_scales_dram_only(self):
        stream = StreamSpec(
            tensor="A", direction="read", volume_bytes=4096.0,
            dram_bytes=4096.0,
        )
        plain = phase_traffic(_workload([stream]))
        packed = phase_traffic(_workload([stream]), compression_ratio=0.5)
        assert packed.dram_bytes == plain.dram_bytes / 2.0
        assert packed.scratchpad_bytes == plain.scratchpad_bytes
        assert packed.gb_reads == plain.gb_reads

    def test_on_chip_stream_skips_dram_but_sweeps_banks(self):
        stream = StreamSpec(
            tensor="A", direction="read", volume_bytes=4096.0, dram_bytes=0.0
        )
        traffic = phase_traffic(_workload([stream]))
        assert traffic.containers == 0.0
        assert traffic.dram_cycles == 0.0
        assert traffic.gb_reads == 4096 / 16
        assert traffic.bank_cycles > 0
        assert traffic.scratchpad_bytes == 4096.0

    def test_transposed_stream_occupies_transposers(self):
        stream = StreamSpec(
            tensor="W", direction="read", volume_bytes=128.0 * 10,
            transposed=True,
        )
        traffic = phase_traffic(_workload([stream]), transposer_units=1)
        assert traffic.transposer_blocks == 10.0
        assert traffic.transposer_cycles == 160.0

    def test_write_stream_sweeps_banks_without_conflicts(self):
        stream = StreamSpec(
            tensor="G", direction="write", volume_bytes=1440.0
        )
        traffic = phase_traffic(_workload([stream]))
        assert traffic.gb_writes == 90.0
        assert traffic.bank_cycles == 10.0  # 90 accesses over 9 banks
        assert traffic.bank_conflict_cycles == 0.0

    def test_conflicting_stride_accrues_stall_cycles(self):
        stream = StreamSpec(
            tensor="A", direction="read", volume_bytes=16.0 * 9 * 8,
            stride_values=3,  # 6-byte stride: misaligned line walk
        )
        traffic = phase_traffic(_workload([stream]))
        assert traffic.bank_conflict_cycles > 0


class TestWorkloadTraffic:
    def test_sums_phases_and_applies_ratio(self):
        stream = StreamSpec(
            tensor="A", direction="read", volume_bytes=4096.0,
            dram_bytes=4096.0,
        )
        workloads = [_workload([stream]), _workload([stream])]
        total = workload_traffic(workloads, ratio_of=lambda w: 0.5)
        single = phase_traffic(workloads[0], compression_ratio=0.5)
        assert total.dram_bytes == 2 * single.dram_bytes
        assert total.gb_reads == 2 * single.gb_reads
