"""Hypothesis property suite for the memory substrate.

Pins the algebraic contracts the traffic engine builds on: container
pack/unpack is a lossless bijection on arbitrary ragged shapes, the
transposer protocol is an involution equal to numpy's transpose, bank
mapping behaves as the paper's odd-bank-count argument claims, and the
closed-form burst pricing is exactly the reference loop.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bfloat16 import bf16_quantize
from repro.memory.buffers import GlobalBuffer
from repro.memory.container import (
    container_count,
    pack_containers,
    unpack_containers,
)
from repro.memory.traffic import strided_burst_cycles
from repro.memory.transposer import BLOCK, Transposer, transpose_blocks

# One access line is 8 bfloat16 values (16 B).
LINE_VALUES = 8


def _tensor(c, r, k, seed):
    rng = np.random.default_rng(seed)
    return bf16_quantize(rng.normal(0, 2, (c, r, k)))


class TestContainerRoundTrip:
    @given(
        c=st.integers(1, 70),
        r=st.integers(1, 4),
        k=st.integers(1, 70),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_round_trip(self, c, r, k, seed):
        """Any (C, H, W) shape -- ragged edges included -- survives."""
        tensor = _tensor(c, r, k, seed)
        back = unpack_containers(pack_containers(tensor), tensor.shape)
        assert np.array_equal(back, tensor)

    @given(c=st.integers(1, 70), r=st.integers(1, 4), k=st.integers(1, 70))
    @settings(max_examples=60, deadline=None)
    def test_pack_count_matches_container_count(self, c, r, k):
        assert len(pack_containers(np.zeros((c, r, k)))) == container_count(
            (c, r, k)
        )


class TestTransposerProperties:
    @given(
        rb=st.integers(1, 4),
        cb=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_transpose_blocks_is_an_involution(self, rb, cb, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(0, 1, (rb * BLOCK, cb * BLOCK))
        assert np.array_equal(transpose_blocks(transpose_blocks(matrix)), matrix)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_write_row_read_column_equals_numpy_transpose(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(0, 1, (BLOCK, BLOCK))
        unit = Transposer()
        for row in matrix:
            unit.write_row(row)
        out = np.stack([unit.read_column(c) for c in range(BLOCK)])
        assert np.array_equal(out, matrix.T)


class TestBankMapping:
    @given(accesses=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_stride_8_lines_on_even_banks_fully_serialize(self, accesses):
        """A stride of 8 lines pins every access to one of 8 banks."""
        gb = GlobalBuffer(banks=8)
        assert all(
            gb.bank_of(i * 8 * LINE_VALUES * 2) == 0 for i in range(accesses)
        )
        assert gb.conflict_cycles(8 * LINE_VALUES, accesses) == accesses

    @given(accesses=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_stride_9_lines_never_conflict(self, accesses):
        """Stride-9 spreads over 8 banks (gcd(9, 8) = 1): zero conflicts."""
        gb = GlobalBuffer(banks=8)
        cycles = gb.conflict_cycles(9 * LINE_VALUES, accesses)
        assert cycles == math.ceil(accesses / 8)
        assert gb.conflicts == 0

    @given(power=st.integers(0, 6), accesses=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_odd_bank_count_dodges_power_of_two_strides(self, power, accesses):
        """The paper's argument for 9 banks: 2^k line strides spread."""
        gb = GlobalBuffer(banks=9)
        stride = (2**power) * LINE_VALUES
        cycles = gb.conflict_cycles(stride, accesses)
        assert cycles == math.ceil(accesses / 9)
        assert gb.conflicts == 0


class TestStridedBurstConformance:
    @given(
        stride=st.integers(0, 128),
        accesses=st.integers(0, 800),
        banks=st.integers(1, 16),
    )
    @settings(max_examples=120, deadline=None)
    def test_closed_form_matches_reference_loop(self, stride, accesses, banks):
        """The engine's periodic pricing is exactly `conflict_cycles`."""
        gb = GlobalBuffer(banks=banks)
        reference = gb.conflict_cycles(stride, accesses)
        cycles, conflicts = strided_burst_cycles(stride, accesses, banks)
        assert cycles == reference
        assert conflicts == gb.conflicts

    @given(stride=st.integers(0, 64), banks=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_extrapolated_region_is_consistent(self, stride, banks):
        """Doubling a whole number of periods exactly doubles the cost.

        The bank pattern's period always divides ``access_bytes * banks``
        (16 accesses restore line alignment, ``banks`` restore the bank
        offset and burst alignment), so this base is safe for any stride.
        """
        base = 16 * banks * 5
        once = strided_burst_cycles(stride, base, banks)
        twice = strided_burst_cycles(stride, 2 * base, banks)
        assert twice == (2 * once[0], 2 * once[1])
