"""Workload-reuse layer: cache hits must be byte-identical to cold
builds, across the in-memory LRU, the on-disk tensor store, and the
cached Gibbs-lambda inverse."""

import numpy as np
import pytest

from repro.traces.synthetic import (
    _gibbs_inverse,
    _gibbs_lambda,
    _gibbs_lambda_bisect,
    gibbs_cache_clear,
    gibbs_cache_info,
)
from repro.traces.workload_cache import (
    WORKLOAD_CACHE_VERSION,
    WorkloadCache,
    cache_for,
    tensor_key,
    workload_key,
)
from repro.traces.workloads import build_workloads


def _assert_same_build(got, want):
    """Field-exact equality of two workload lists (arrays byte-equal)."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.model == w.model and g.layer == w.layer and g.phase == w.phase
        assert g.macs == w.macs and g.reduction == w.reduction
        assert g.acc_frac_bits == w.acc_frac_bits
        assert g.input_bytes == w.input_bytes
        assert g.output_bytes == w.output_bytes
        assert g.streams == w.streams
        assert g.values_a.tobytes() == w.values_a.tobytes()
        assert g.values_b.tobytes() == w.values_b.tobytes()


class TestWorkloadKey:
    def test_equal_inputs_equal_keys(self):
        a = workload_key("NCF", 0.5, ("AxW",), 8192, 0, None)
        b = workload_key("NCF", 0.5, ("AxW",), 8192, 0, None)
        assert a == b

    def test_config_independence_fields_only(self):
        """The key covers exactly the build inputs -- changing any one
        changes the key."""
        base = workload_key("NCF", 0.5, ("AxW",), 8192, 0, None)
        assert workload_key("Bert", 0.5, ("AxW",), 8192, 0, None) != base
        assert workload_key("NCF", 0.6, ("AxW",), 8192, 0, None) != base
        assert workload_key("NCF", 0.5, ("GxW",), 8192, 0, None) != base
        assert workload_key("NCF", 0.5, ("AxW",), 4096, 0, None) != base
        assert workload_key("NCF", 0.5, ("AxW",), 8192, 1, None) != base
        assert (
            workload_key("NCF", 0.5, ("AxW",), 8192, 0, {"fc1": 9}) != base
        )

    def test_tensor_key_drops_acc_profile(self):
        assert tensor_key("NCF", 0.5, ("AxW",), 8192, 0) == workload_key(
            "NCF", 0.5, ("AxW",), 8192, 0, None
        )


class TestMemoryCache:
    def test_hit_returns_same_objects(self):
        cache = WorkloadCache()
        first = build_workloads("NCF", cache=cache)
        second = build_workloads("NCF", cache=cache)
        assert all(a is b for a, b in zip(first, second))
        assert cache.stats.hits == 1
        assert cache.stats.builds == 1

    def test_hit_byte_identical_to_cold_build(self):
        cache = WorkloadCache()
        build_workloads("NCF", cache=cache)
        hit = build_workloads("NCF", cache=cache)
        cold = build_workloads("NCF", cache=None)
        _assert_same_build(hit, cold)

    def test_acc_profile_gets_distinct_entry(self):
        cache = WorkloadCache()
        plain = build_workloads("NCF", cache=cache)
        profiled = build_workloads(
            "NCF", acc_profile={plain[0].layer: 9}, cache=cache
        )
        assert profiled[0].acc_frac_bits == 9
        assert plain[0].acc_frac_bits is None
        # Tensors are identical; only the metadata differs.
        assert (
            profiled[0].values_a.tobytes() == plain[0].values_a.tobytes()
        )

    def test_lru_eviction(self):
        cache = WorkloadCache(capacity=1)
        build_workloads("NCF", cache=cache)
        build_workloads("NCF", progress=0.6, cache=cache)
        build_workloads("NCF", cache=cache)
        assert cache.stats.builds == 3  # first entry was evicted
        assert cache.stats.hits == 0

    def test_returned_list_is_a_copy(self):
        cache = WorkloadCache()
        first = build_workloads("NCF", cache=cache)
        first.clear()
        assert len(build_workloads("NCF", cache=cache)) > 0


class TestDiskCache:
    def test_round_trip_byte_identical(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        cold = build_workloads("NCF", cache=writer)
        # A fresh cache instance (fresh process, conceptually) must
        # reproduce the cold build byte for byte from disk alone.
        reader = WorkloadCache(disk_dir=tmp_path)
        warm = build_workloads("NCF", cache=reader)
        _assert_same_build(warm, cold)
        assert reader.stats.disk_hits == 1
        assert reader.stats.builds == 0

    def test_acc_profile_shares_disk_tensors(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        plain = build_workloads("NCF", cache=writer)
        reader = WorkloadCache(disk_dir=tmp_path)
        profiled = build_workloads(
            "NCF", acc_profile={plain[0].layer: 7}, cache=reader
        )
        assert reader.stats.disk_hits == 1
        assert profiled[0].acc_frac_bits == 7
        assert (
            profiled[0].values_a.tobytes() == plain[0].values_a.tobytes()
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        writer = WorkloadCache(disk_dir=tmp_path)
        build_workloads("NCF", cache=writer)
        for path in sorted(tmp_path.glob("workload-*.npz")):
            path.write_bytes(b"not an npz")
        reader = WorkloadCache(disk_dir=tmp_path)
        rebuilt = build_workloads("NCF", cache=reader)
        assert reader.stats.disk_hits == 0
        assert reader.stats.builds == 1
        _assert_same_build(rebuilt, build_workloads("NCF", cache=None))

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        key = tensor_key("NCF", 0.5, ("AxW", "GxW", "AxG"), 8192, 0)
        other = tensor_key("NCF", 0.25, ("AxW", "GxW", "AxG"), 8192, 0)
        workloads = build_workloads("NCF", cache=None)
        cache.store_tensors(key, workloads)
        # Simulate a hash collision: move the entry onto another key's
        # path.
        cache.path_for(key).rename(cache.path_for(other))
        assert cache.load_tensors(other) is None

    def test_version_in_key(self):
        assert f'"version":{WORKLOAD_CACHE_VERSION}' in workload_key(
            "NCF", 0.5, ("AxW",), 8192, 0, None
        )

    def test_cache_for_reuses_per_directory_instance(self, tmp_path):
        assert cache_for(tmp_path) is cache_for(str(tmp_path))
        assert cache_for(None) is None
        own = WorkloadCache()
        assert cache_for(own) is own


class TestVersionInvalidation:
    """Bumping WORKLOAD_CACHE_VERSION must orphan every old entry."""

    def test_memory_entries_invalidated(self, monkeypatch):
        cache = WorkloadCache()
        build_workloads("NCF", cache=cache)
        assert cache.stats.builds == 1
        monkeypatch.setattr(
            "repro.traces.workload_cache.WORKLOAD_CACHE_VERSION",
            WORKLOAD_CACHE_VERSION + 1,
        )
        build_workloads("NCF", cache=cache)
        # The new-version key misses both layers and rebuilds cold.
        assert cache.stats.builds == 2
        assert cache.stats.hits == 0

    def test_disk_entries_invalidated(self, tmp_path, monkeypatch):
        writer = WorkloadCache(disk_dir=tmp_path)
        build_workloads("NCF", cache=writer)
        assert any(tmp_path.glob("workload-*.npz"))
        monkeypatch.setattr(
            "repro.traces.workload_cache.WORKLOAD_CACHE_VERSION",
            WORKLOAD_CACHE_VERSION + 1,
        )
        reader = WorkloadCache(disk_dir=tmp_path)
        build_workloads("NCF", cache=reader)
        assert reader.stats.disk_hits == 0
        assert reader.stats.builds == 1

    def test_version_skewed_file_is_a_miss(self, tmp_path):
        """An entry written under another version misses by key content."""
        cache = WorkloadCache(disk_dir=tmp_path)
        current = tensor_key("NCF", 0.5, ("AxW",), 8192, 0)
        stale = current.replace(
            f'"version":{WORKLOAD_CACHE_VERSION}',
            f'"version":{WORKLOAD_CACHE_VERSION - 1}',
        )
        assert stale != current
        workloads = build_workloads("NCF", phases=("AxW",), cache=None)
        cache.store_tensors(stale, workloads)
        cache.path_for(stale).rename(cache.path_for(current))
        assert cache.load_tensors(current) is None


class TestCorruptEntries:
    def test_truncated_npz_is_a_miss(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        key = tensor_key("NCF", 0.5, ("AxW",), 8192, 0)
        cache.store_tensors(key, build_workloads("NCF", phases=("AxW",), cache=None))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load_tensors(key) is None

    def test_missing_array_field_is_a_miss(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        key = tensor_key("NCF", 0.5, ("AxW",), 8192, 0)
        np.savez(cache.path_for(key), key=np.array(key))
        assert cache.load_tensors(key) is None

    def test_shape_skewed_arrays_are_a_miss(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        key = tensor_key("NCF", 0.5, ("AxW",), 8192, 0)
        np.savez(
            cache.path_for(key),
            key=np.array(key),
            values_a=np.zeros((3, 8)),
            values_b=np.zeros((2, 8)),
        )
        assert cache.load_tensors(key) is None

    def test_wrong_rank_is_a_miss(self, tmp_path):
        cache = WorkloadCache(disk_dir=tmp_path)
        key = tensor_key("NCF", 0.5, ("AxW",), 8192, 0)
        np.savez(
            cache.path_for(key),
            key=np.array(key),
            values_a=np.zeros(8),
            values_b=np.zeros(8),
        )
        assert cache.load_tensors(key) is None


class TestLRUOrder:
    """Eviction follows recency of *use*, not insertion."""

    def test_get_refreshes_recency(self):
        cache = WorkloadCache(capacity=2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.get("a")  # a becomes most recent
        cache.put("c", [3])  # evicts b, not a
        assert cache.get("a") == [1]
        assert cache.get("b") is None
        assert cache.get("c") == [3]

    def test_put_refreshes_recency(self):
        cache = WorkloadCache(capacity=2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.put("a", [10])  # refresh a by re-insert
        cache.put("c", [3])  # evicts b
        assert cache.get("a") == [10]
        assert cache.get("b") is None

    def test_eviction_is_fifo_without_touches(self):
        cache = WorkloadCache(capacity=3)
        for name in "abcd":
            cache.put(name, [name])
        assert cache.get("a") is None
        assert [cache.get(k) is not None for k in "bcd"] == [True] * 3

    def test_capacity_floor_is_one(self):
        cache = WorkloadCache(capacity=0)
        cache.put("a", [1])
        cache.put("b", [2])
        assert cache.get("a") is None
        assert cache.get("b") == [2]

    def test_build_access_refreshes_model_entry(self):
        cache = WorkloadCache(capacity=2)
        build_workloads("NCF", cache=cache)  # entry A
        build_workloads("NCF", progress=0.6, cache=cache)  # entry B
        build_workloads("NCF", cache=cache)  # hit refreshes A
        build_workloads("NCF", progress=0.7, cache=cache)  # evicts B
        before = cache.stats.builds
        build_workloads("NCF", cache=cache)  # still a hit
        assert cache.stats.builds == before
        build_workloads("NCF", progress=0.6, cache=cache)  # rebuilt
        assert cache.stats.builds == before + 1


class TestGibbsCache:
    def test_cached_inverse_matches_bisection(self):
        gibbs_cache_clear()
        targets = np.linspace(0.9, 4.6, 23)
        for target in targets:
            clipped = float(np.clip(target, 1.05, 4.4))
            assert _gibbs_lambda(target) == _gibbs_lambda_bisect(clipped)

    def test_repeated_targets_hit(self):
        gibbs_cache_clear()
        _gibbs_lambda(2.5)
        before = gibbs_cache_info().hits
        _gibbs_lambda(2.5)
        _gibbs_lambda(2.5)
        assert gibbs_cache_info().hits == before + 2
        assert gibbs_cache_info().misses == 1

    def test_cached_weights_are_the_bisection_weights(self):
        gibbs_cache_clear()
        lam, weights = _gibbs_inverse(3.0)
        from repro.traces.synthetic import _MAN_TERMS

        expected = np.exp(-_gibbs_lambda_bisect(3.0) * _MAN_TERMS)
        expected /= expected.sum()
        assert np.array(weights).tobytes() == expected.tobytes()
