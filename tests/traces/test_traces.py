"""Tests for calibration, synthetic generation, evolution, and workloads."""

import numpy as np
import pytest

from repro.core.workload import PHASES
from repro.fp.bfloat16 import bf16_quantize
from repro.models.zoo import STUDIED_MODELS, get_model
from repro.traces.calibration import (
    CALIBRATIONS,
    TensorStats,
    get_calibration,
)
from repro.traces.evolution import calibration_at
from repro.traces.synthetic import (
    generate_tensor,
    mantissas_with_mean_terms,
    measured_stats,
)
from repro.traces.workloads import (
    ACTIVATION_BUFFER_BYTES,
    build_phase_workload,
    build_workloads,
)


class TestCalibrations:
    def test_all_studied_models_calibrated(self):
        for model in STUDIED_MODELS:
            get_calibration(model)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_calibration("GPT-5")

    def test_derived_term_sparsity_in_range(self):
        for calibration in CALIBRATIONS.values():
            for tensor in ("A", "W", "G"):
                stats = calibration.for_tensor(tensor)
                assert 0.0 < stats.term_sparsity < 1.0
                assert stats.exp_local_std <= stats.exp_std + 1e-9

    def test_resnet50_s2_has_weight_sparsity(self):
        """The dynamic-sparse-trained model is the only one with
        substantial weight sparsity (paper Fig 1a)."""
        s2 = get_calibration("ResNet50-S2").weights.value_sparsity
        for model in STUDIED_MODELS:
            if model != "ResNet50-S2":
                assert get_calibration(model).weights.value_sparsity < s2

    def test_ncf_gradients_sparsest(self):
        """NCF's embedding gradients tower over everything (Fig 2)."""
        ncf = get_calibration("NCF").gradients.value_sparsity
        assert ncf >= 0.9

    def test_quantized_model_has_fewest_terms(self):
        q = get_calibration("ResNet18-Q").activations.mean_terms_nonzero
        for model in ("VGG16", "SqueezeNet 1.1", "ResNet50-S2"):
            assert get_calibration(model).activations.mean_terms_nonzero > q

    def test_tensor_lookup(self):
        cal = get_calibration("VGG16")
        assert cal.for_tensor("I") is cal.activations
        with pytest.raises(KeyError):
            cal.for_tensor("Z")


class TestSyntheticGenerator:
    def test_matches_targets(self, rng):
        for model in ("VGG16", "ResNet18-Q", "NCF"):
            calibration = get_calibration(model)
            for tensor in ("A", "W", "G"):
                stats = calibration.for_tensor(tensor)
                values = generate_tensor(stats, 40000, rng)
                measured = measured_stats(values)
                assert measured.value_sparsity == pytest.approx(
                    stats.value_sparsity, abs=0.02
                )
                assert measured.term_sparsity == pytest.approx(
                    stats.term_sparsity, abs=0.02
                )

    def test_bf16_exact(self, rng):
        values = generate_tensor(TensorStats(0.3, 2.5, -2.0, 3.0), 5000, rng)
        assert np.array_equal(bf16_quantize(values), values)

    def test_deterministic(self):
        stats = TensorStats(0.3, 2.5, -2.0, 3.0)
        v1 = generate_tensor(stats, 1000, np.random.default_rng(7))
        v2 = generate_tensor(stats, 1000, np.random.default_rng(7))
        assert np.array_equal(v1, v2)

    def test_exponent_mean(self, rng):
        from repro.core.schedule import operand_exponents

        stats = TensorStats(0.0, 3.0, -5.0, 2.0, 1.0)
        values = generate_tensor(stats, 40000, rng)
        exps = operand_exponents(values)
        assert float(exps.mean()) == pytest.approx(-5.0, abs=0.2)

    def test_group_correlation(self, rng):
        """Within-group exponent spread must be tighter than global."""
        from repro.core.schedule import operand_exponents

        stats = TensorStats(0.0, 3.0, -2.0, 3.0, exp_local_std=0.8)
        values = generate_tensor(stats, 32 * 2000, rng)
        exps = operand_exponents(values).reshape(-1, 32).astype(np.float64)
        within = exps.std(axis=1).mean()
        overall = exps.std()
        assert within < overall * 0.6

    def test_mantissa_mean_terms_solver(self, rng):
        from repro.encoding.booth import csd_encode

        for target in (1.2, 2.0, 3.0, 4.0):
            mans = mantissas_with_mean_terms(target, 30000, rng)
            counts = np.array([len(csd_encode(int(m))) for m in np.unique(mans)])
            mean = np.mean([len(csd_encode(int(m))) for m in mans[:5000]])
            assert mean == pytest.approx(target, abs=0.1)
            assert mans.min() >= 128 and mans.max() <= 255


class TestEvolution:
    def test_progress_bounds(self):
        with pytest.raises(ValueError):
            calibration_at("VGG16", 1.5)

    def test_endpoint_is_base(self):
        base = get_calibration("VGG16")
        late = calibration_at("VGG16", 1.0)
        assert late.weights == base.weights

    def test_vgg_densifies_late(self):
        early = calibration_at("VGG16", 0.2)
        late = calibration_at("VGG16", 0.9)
        assert (
            late.activations.mean_terms_nonzero
            > early.activations.mean_terms_nonzero
        )

    def test_resnet18q_sharpens_after_pact_settles(self):
        early = calibration_at("ResNet18-Q", 0.1)
        late = calibration_at("ResNet18-Q", 0.6)
        assert late.activations.mean_terms_nonzero < early.activations.mean_terms_nonzero

    def test_relu_sparsity_ramps_in(self):
        start = calibration_at("SqueezeNet 1.1", 0.0)
        settled = calibration_at("SqueezeNet 1.1", 0.5)
        assert start.activations.value_sparsity < settled.activations.value_sparsity

    def test_stable_models_flat(self):
        for progress in (0.2, 0.5, 0.9):
            assert calibration_at("Bert", progress) == calibration_at("Bert", 0.4)


class TestWorkloads:
    def test_structure(self):
        workloads = build_workloads("NCF", progress=0.5)
        spec = get_model("NCF")
        assert len(workloads) == len(spec.layers) * 3
        phases = {w.phase for w in workloads}
        assert phases == set(PHASES)

    def test_phase_tensor_names(self):
        for w in build_workloads("NCF"):
            if w.phase == "AxW":
                assert (w.tensor_a, w.tensor_b) == ("A", "W")
            elif w.phase == "GxW":
                assert (w.tensor_a, w.tensor_b) == ("G", "W")
            else:
                assert (w.tensor_a, w.tensor_b) == ("A", "G")

    def test_deterministic(self):
        w1 = build_workloads("NCF", seed=3)
        w2 = build_workloads("NCF", seed=3)
        for a, b in zip(w1, w2):
            assert np.array_equal(a.values_a, b.values_a)
            assert a.macs == b.macs

    def test_traffic_weights_always_stream(self):
        """Every AxW phase reads its weights from DRAM."""
        for w in build_workloads("NCF"):
            if w.phase == "AxW":
                layer = next(
                    l for l in get_model("NCF").layers if l.name == w.layer
                )
                assert w.input_bytes >= layer.weight_bytes()

    def test_small_model_activations_stay_on_chip(self):
        """NCF's activations fit the buffer: no activation traffic."""
        spec = get_model("NCF")
        assert spec.total_activation_bytes < ACTIVATION_BUFFER_BYTES
        for w in build_workloads("NCF"):
            if w.phase == "AxW":
                layer = next(l for l in spec.layers if l.name == w.layer)
                assert w.input_bytes == layer.weight_bytes()
                assert w.output_bytes == 0.0

    def test_big_model_activations_spill(self):
        """VGG16's activations exceed the buffer: they stream off-chip."""
        spec = get_model("VGG16")
        assert spec.total_activation_bytes > ACTIVATION_BUFFER_BYTES
        conv1 = [
            w for w in build_workloads("VGG16")
            if w.layer == "conv1_2" and w.phase == "AxW"
        ][0]
        layer = next(l for l in spec.layers if l.name == "conv1_2")
        assert conv1.output_bytes == layer.output_bytes(spec.batch)

    def test_acc_profile_wiring(self):
        profile = {"mlp1": 6}
        workloads = build_workloads("NCF", acc_profile=profile)
        for w in workloads:
            if w.layer == "mlp1":
                assert w.acc_frac_bits == 6
            else:
                assert w.acc_frac_bits is None
