"""The gatekeeping test: the repo's own source tree must lint clean.

This is the same invocation CI runs; if a change introduces a genuine
finding it must either be fixed or carry an explicit
``# repro: noqa RPRxxx -- reason`` suppression.
"""

from pathlib import Path

from repro.__main__ import main
from repro.lint import lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_tree_lints_clean(capsys):
    assert main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_src_tree_has_meaningful_coverage():
    report = lint_paths([SRC])
    assert report.findings == []
    # The walker must actually be visiting the tree, not skipping it.
    assert report.files_checked > 50
