"""RPR004 fixture: stale literals and non-exhaustive dispatch."""

SCHEMES = ("data", "model")  # missing "pipeline"

KERNEL_BACKENDS = ("numpy",)  # missing "numba"


def simulate(strip_engine: str, memory_engine: str, partition: str):
    """Every dispatch mistake the rule knows about."""
    if strip_engine == "batchd":  # typo'd literal
        return 1
    if memory_engine not in ("roofline",):  # stale validation tuple
        raise ValueError(memory_engine)
    if partition == "data":
        result = 2
    elif partition == "model":
        result = 3
    else:
        result = 4  # silently swallows unknown schemes (no raise)
    return result


def dispatch_kernels(kernel_backend: str):
    """Comparison against an unregistered backend name."""
    if kernel_backend == "cython":  # not a registered backend
        return 1
    return 0


def build_flags(parser):
    """Choices tuple missing a registered engine."""
    parser.add_argument("--memory-engine", choices=("roofline",))
    parser.add_argument("--kernel-backend", choices=("numpy",))
