"""RPR001 fixture: every banned randomness/clock pattern."""

import random
import time

import numpy as np


def draw():
    """Unseeded and wall-clock calls the determinism rule must flag."""
    stamp = time.time()
    legacy = np.random.rand(4)
    entropy = np.random.default_rng()
    stdlib = random.random()
    return stamp, legacy, entropy, stdlib
