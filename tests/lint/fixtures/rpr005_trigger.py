"""RPR005 fixture: hash-order and OS-order leaks into output."""

import os


def render(rows):
    """Every unstable-order pattern the rule flags."""
    lines = [name for name in {row[0] for row in rows}]  # set-order leak
    for name in {"b", "a"}:  # set literal iteration
        lines.append(name)
    ordered = list(set(lines))  # list(set(...)) dedupe leak
    for entry in os.listdir("."):  # OS-dependent listing order
        lines.append(entry)
    return lines, ordered
