"""RPR001 fixture: the blessed seeded-generator patterns."""

import random
import time

import numpy as np


def draw(seed: int):
    """Explicitly seeded generators and a monotonic timer are fine."""
    rng = np.random.default_rng(seed)
    paired = np.random.default_rng((seed, 17))
    stdlib = random.Random(seed)
    t0 = time.perf_counter()
    return rng.normal(), paired.normal(), stdlib.random(), t0
