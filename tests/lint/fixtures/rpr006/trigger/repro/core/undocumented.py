CONSTANT = 1


class Accumulator:

    def add(self, value):
        return value + CONSTANT


def top_level(value):
    return value
