"""Fully documented module: RPR006 must stay quiet here."""

CONSTANT = 1


class Accumulator:
    """A documented public class."""

    def __init__(self):
        pass

    def add(self, value):
        """A documented public method."""
        return value + CONSTANT

    def _internal(self, value):
        return value


def top_level(value):
    """A documented public function."""
    return value


def _private(value):
    return value
