"""RPR004 fixture: exhaustive, validated dispatch patterns."""

SCHEMES = ("data", "model", "pipeline")

KERNEL_BACKENDS = ("numpy", "numba")


def dispatch_kernels(kernel_backend: str):
    """Validated backend knob with a single-branch gate."""
    if kernel_backend not in ("numpy", "numba"):
        raise ValueError(kernel_backend)
    if kernel_backend == "numba":  # single-branch gate: exempt
        return 1
    return 0


def simulate(strip_engine: str, memory_engine: str, partition: str):
    """Validated knobs, full chains, and one-value fallthroughs."""
    if strip_engine not in ("batched", "serial"):
        raise ValueError(strip_engine)
    if memory_engine not in ("roofline", "hierarchy"):
        raise ValueError(memory_engine)
    if strip_engine == "serial":  # single-branch gate: exempt
        return 0
    if partition == "data":
        result = 2
    elif partition == "model":
        result = 3
    elif partition == "pipeline":
        result = 4
    else:
        raise ValueError(partition)
    return result


def build_flags(parser):
    """Choices tuples matching the registered sets."""
    parser.add_argument("--memory-engine", choices=("roofline", "hierarchy"))
    parser.add_argument("--partition", choices=("data", "model", "pipeline"))
