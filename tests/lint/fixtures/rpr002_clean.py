"""RPR002 fixture: canonical key covering its full input surface."""

import json


class SimRequest:
    """Miniature request; every field appears in the key."""

    model: str
    seed: int
    nodes: int


def canonical_key(request, sample_strips):
    """Key builder covering request fields and its own parameters."""
    spec = {
        "model": request.model,
        "seed": request.seed,
        "nodes": request.nodes,
        "sample_strips": sample_strips,
        "memory_engine": "roofline",
    }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def execute_request(request, sample_strips, memory_engine="roofline"):
    """Simulator entry; all parameters are keyed above."""
    return (request, sample_strips, memory_engine)
