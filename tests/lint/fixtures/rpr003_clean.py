"""RPR003 fixture: byte-stable round trips, literal and FIELDS-driven."""

from dataclasses import dataclass


@dataclass
class LiteralCounters:
    """Field-for-field literal dict round trip."""

    cycles: float
    macs: float

    def to_dict(self) -> dict:
        """Emit every field."""
        return {"cycles": self.cycles, "macs": self.macs}

    @classmethod
    def from_dict(cls, data: dict) -> "LiteralCounters":
        """Consume every field."""
        return cls(cycles=float(data["cycles"]), macs=float(data["macs"]))


@dataclass
class FieldsDriven:
    """The repo's ``for name in self.FIELDS`` comprehension idiom."""

    payload_bytes: float = 0.0
    wire_bytes: float = 0.0

    FIELDS = ("payload_bytes", "wire_bytes")

    def to_dict(self) -> dict:
        """Emit via the class constant."""
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "FieldsDriven":
        """Consume via the class constant."""
        return cls(**{name: float(data[name]) for name in cls.FIELDS})


@dataclass
class OptionalKey:
    """A conditionally-emitted key is still parity-checked."""

    cycles: float
    memory: dict | None = None

    def to_dict(self) -> dict:
        """Emit ``memory`` only when present (cache-stability idiom)."""
        data = {"cycles": self.cycles}
        if self.memory is not None:
            data["memory"] = self.memory
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "OptionalKey":
        """Consume the optional key with ``.get``."""
        return cls(cycles=float(data["cycles"]), memory=data.get("memory"))
