"""RPR007 trigger: a facade whose __all__ drifted from the surface.

Four findings: the list is unsorted, the documented name ``scaleout``
is missing, ``teleport`` is exported without being documented, and
``teleport`` is not bound in the module either.
"""

ServiceClient = object
ServiceConnectionError = object
ServiceError = object
ServiceTimeoutError = object
SessionConfig = object
SessionStats = object
SimRequest = object
SimulationSession = object
WireFormatError = object


def connect():
    """Stub."""


def session():
    """Stub."""


def simulate():
    """Stub."""


def sweep():
    """Stub."""


__all__ = [
    "simulate",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeoutError",
    "SessionConfig",
    "SessionStats",
    "SimRequest",
    "SimulationSession",
    "WireFormatError",
    "connect",
    "session",
    "sweep",
    "teleport",
]
