"""RPR007 clean twin: __all__ equals the documented surface exactly."""

ServiceClient = object
ServiceConnectionError = object
ServiceError = object
ServiceTimeoutError = object
SessionConfig = object
SessionStats = object
SimRequest = object
SimulationSession = object
WireFormatError = object


def connect():
    """Stub."""


def scaleout():
    """Stub."""


def session():
    """Stub."""


def simulate():
    """Stub."""


def sweep():
    """Stub."""


__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeoutError",
    "SessionConfig",
    "SessionStats",
    "SimRequest",
    "SimulationSession",
    "WireFormatError",
    "connect",
    "scaleout",
    "session",
    "simulate",
    "sweep",
]
