"""RPR005 fixture: the same shapes, order-stabilized or order-free."""

import os


def render(rows):
    """sorted() wrapping and order-independent consumers are fine."""
    names = {row[0] for row in rows}
    lines = [name for name in sorted(names)]
    ordered = sorted(set(lines))
    count = len({row[1] for row in rows})  # order-independent
    present = "key" in {row[0] for row in rows}  # membership only
    for entry in sorted(os.listdir(".")):
        lines.append(entry)
    total = sum({1, 2, 3})  # order-independent reduction
    return lines, ordered, count, present, total
