"""RPR003 fixture: lossy and asymmetric serialization pairs."""

from dataclasses import dataclass


@dataclass
class LossyCounters:
    """Drops a field on the way out and renames one on the way back."""

    cycles: float
    macs: float
    groups: float

    def to_dict(self) -> dict:
        """Forgets ``groups`` entirely."""
        return {"cycles": self.cycles, "macs": self.macs}

    @classmethod
    def from_dict(cls, data: dict) -> "LossyCounters":
        """Consumes a key (``mac_count``) that to_dict never emits."""
        return cls(
            cycles=float(data["cycles"]),
            macs=float(data["mac_count"]),
            groups=0.0,
        )
