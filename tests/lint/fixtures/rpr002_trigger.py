"""RPR002 fixture: canonical key missing result-affecting inputs."""

import json


class SimRequest:
    """Miniature request with a field the key below forgets."""

    model: str
    seed: int
    nodes: int


def canonical_key(request, sample_strips):
    """Key builder that drops ``nodes`` and its own ``sample_strips``."""
    spec = {
        "model": request.model,
        "seed": request.seed,
    }
    return json.dumps(spec)


def execute_request(request, sample_strips, memory_engine="roofline"):
    """Simulator entry whose ``memory_engine`` the key above ignores."""
    return (request, sample_strips, memory_engine)
