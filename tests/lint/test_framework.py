"""Unit tests for the lint framework itself: suppression parsing, the
rule registry, code resolution, and file discovery."""

import pytest

from repro.lint import REGISTRY, Finding, Rule, lint_paths, register
from repro.lint.registry import resolve_codes
from repro.lint.runner import iter_python_files
from repro.lint.suppressions import parse_suppressions


class TestSuppressionParsing:
    def test_trailing_comment_is_line_scoped(self):
        src = "x = 1  # repro: noqa RPR001\n"
        sup = parse_suppressions(src)
        assert sup.line_codes.get(1) == {"RPR001"}
        assert not sup.file_codes

    def test_standalone_comment_is_file_scoped(self):
        src = "# repro: noqa RPR002\nx = 1\n"
        sup = parse_suppressions(src)
        assert sup.file_codes == {"RPR002"}

    def test_bare_noqa_suppresses_everything(self):
        sup = parse_suppressions("x = 1  # repro: noqa\n")
        assert sup.is_suppressed("RPR001", 1)
        assert sup.is_suppressed("RPR006", 1)
        assert not sup.is_suppressed("RPR001", 2)

    def test_multiple_codes_and_reason_tail(self):
        src = "x = 1  # repro: noqa RPR001, RPR005 -- legacy shim\n"
        sup = parse_suppressions(src)
        assert sup.line_codes[1] == {"RPR001", "RPR005"}

    def test_case_insensitive_marker(self):
        sup = parse_suppressions("x = 1  # REPRO: NOQA RPR001\n")
        assert sup.is_suppressed("RPR001", 1)

    def test_plain_comment_is_not_a_suppression(self):
        sup = parse_suppressions("x = 1  # regular comment\n")
        assert not sup.line_codes
        assert not sup.file_codes


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert sorted(REGISTRY) == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
        ]

    def test_duplicate_registration_rejected(self):
        class Dupe(Rule):
            code = "RPR001"
            name = "dupe"
            rationale = "x"

        with pytest.raises(ValueError):
            register(Dupe)

    def test_malformed_code_rejected(self):
        class Bad(Rule):
            code = "XYZ1"
            name = "bad"
            rationale = "x"

        with pytest.raises(ValueError):
            register(Bad)

    def test_resolve_codes_splits_commas_and_spaces(self):
        codes, unknown = resolve_codes(
            ["RPR001,RPR002", "RPR003"], set(REGISTRY)
        )
        assert codes == {"RPR001", "RPR002", "RPR003"}
        assert unknown == []

    def test_resolve_codes_reports_unknown(self):
        codes, unknown = resolve_codes(["RPR001", "RPR999"], set(REGISTRY))
        assert codes == {"RPR001"}
        assert unknown == ["RPR999"]


class TestFileDiscovery:
    def test_overlapping_paths_deduplicate(self, tmp_path):
        (tmp_path / "a.py").write_text('"""Doc."""\n')
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert files == [tmp_path / "a.py"]

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text('"""Doc."""\n')
        files = iter_python_files([tmp_path])
        assert files == [tmp_path / "real.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_python_files([tmp_path / "ghost.py"])

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello\n")
        (tmp_path / "mod.py").write_text('"""Doc."""\n')
        files = iter_python_files([tmp_path])
        assert files == [tmp_path / "mod.py"]


class TestFindingOrdering:
    def test_report_is_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import numpy as np\n"
                                       "x = np.random.rand(2)\n")
        (tmp_path / "a.py").write_text("import numpy as np\n"
                                       "y = np.random.rand(2)\n")
        first = lint_paths([tmp_path], select=["RPR001"])
        second = lint_paths([tmp_path], select=["RPR001"])
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        paths = [f.path for f in first.findings]
        assert paths == sorted(paths)

    def test_finding_to_dict_shape(self):
        finding = Finding(
            code="RPR001", message="m", path="p.py", line=3, col=0
        )
        assert finding.to_dict() == {
            "code": "RPR001",
            "message": "m",
            "path": "p.py",
            "line": 3,
            "col": 0,
        }
