"""Acceptance guard for RPR002: deleting any result-affecting entry
from the real ``canonical_key`` spec dict must make the lint fail.

The test performs AST surgery on a copy of ``harness/runner.py`` --
removing one spec entry at a time -- and asserts the cache-key rule
reports the regression.  This proves the rule protects every key the
production cache depends on, not just the ones it was written against.
"""

import ast
from pathlib import Path

import pytest

from repro.lint import lint_paths

RUNNER = Path(__file__).parents[2] / "src" / "repro" / "harness" / "runner.py"


def _canonical_spec_dict(tree: ast.Module) -> ast.Dict:
    """The spec dict literal inside canonical_key()."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "canonical_key":
            dicts = [n for n in ast.walk(node) if isinstance(n, ast.Dict)]
            assert dicts, "canonical_key() lost its spec dict literal"
            return max(dicts, key=lambda d: len(d.keys))
    raise AssertionError("canonical_key() not found in runner.py")


def _spec_keys() -> list[str]:
    tree = ast.parse(RUNNER.read_text())
    spec = _canonical_spec_dict(tree)
    return [k.value for k in spec.keys if isinstance(k, ast.Constant)]


SPEC_KEYS = _spec_keys()


def test_spec_covers_the_full_result_surface():
    """The production key covers the documented 12 result inputs."""
    assert set(SPEC_KEYS) >= {
        "model",
        "config",
        "progress",
        "seed",
        "acc_profile",
        "phases",
        "sample_strips",
        "sample_steps",
        "sim_seed",
        "memory_engine",
        "nodes",
        "partition",
    }


def test_unmodified_runner_is_rpr002_clean(tmp_path):
    """Control: unparse alone must not introduce RPR002 findings."""
    tree = ast.parse(RUNNER.read_text())
    copy = tmp_path / "runner.py"
    copy.write_text(ast.unparse(tree) + "\n")
    report = lint_paths([copy], select=["RPR002"])
    assert report.findings == []


@pytest.mark.parametrize("victim", SPEC_KEYS)
def test_deleting_spec_key_fails_lint(victim, tmp_path):
    tree = ast.parse(RUNNER.read_text())
    spec = _canonical_spec_dict(tree)
    survivors = [
        (k, v)
        for k, v in zip(spec.keys, spec.values)
        if not (isinstance(k, ast.Constant) and k.value == victim)
    ]
    assert len(survivors) == len(spec.keys) - 1
    spec.keys = [k for k, _ in survivors]
    spec.values = [v for _, v in survivors]
    copy = tmp_path / "runner.py"
    copy.write_text(ast.unparse(ast.fix_missing_locations(tree)) + "\n")

    report = lint_paths([copy], select=["RPR002"])
    assert report.findings, f"deleting {victim!r} went undetected"
    assert any(f"'{victim}'" in f.message for f in report.findings)
