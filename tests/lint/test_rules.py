"""Per-rule fixture tests: each RPR rule fires on its trigger fixture
and stays quiet on its clean twin."""

from pathlib import Path

import pytest

from repro.lint import REGISTRY, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

# (code, trigger path, clean path, expected trigger finding count)
CASES = [
    ("RPR001", "rpr001_trigger.py", "rpr001_clean.py", 4),
    ("RPR002", "rpr002_trigger.py", "rpr002_clean.py", 5),
    ("RPR003", "rpr003_trigger.py", "rpr003_clean.py", 5),
    ("RPR004", "rpr004_trigger.py", "rpr004_clean.py", 8),
    ("RPR005", "rpr005_trigger.py", "rpr005_clean.py", 4),
    ("RPR006", "rpr006/trigger", "rpr006/clean", 4),
    ("RPR007", "rpr007/trigger", "rpr007/clean", 4),
]


def test_every_registered_rule_has_a_fixture_case():
    codes = {code for code, _, _, _ in CASES}
    assert codes == set(REGISTRY)


@pytest.mark.parametrize(
    "code,trigger,clean,expected", CASES, ids=[c[0] for c in CASES]
)
def test_trigger_fixture_fires(code, trigger, clean, expected):
    report = lint_paths([FIXTURES / trigger], select=[code])
    assert len(report.findings) == expected
    assert all(f.code == code for f in report.findings)


@pytest.mark.parametrize(
    "code,trigger,clean,expected", CASES, ids=[c[0] for c in CASES]
)
def test_clean_fixture_is_quiet(code, trigger, clean, expected):
    report = lint_paths([FIXTURES / clean], select=[code])
    assert report.findings == []


def test_findings_are_sorted_and_attributed():
    report = lint_paths([FIXTURES / "rpr001_trigger.py"], select=["RPR001"])
    keys = [f.sort_key() for f in report.findings]
    assert keys == sorted(keys)
    for finding in report.findings:
        assert finding.line > 0
        assert finding.path.endswith("rpr001_trigger.py")


def test_select_isolates_rules():
    # The RPR004 trigger also lacks docstring problems etc.; selecting a
    # different rule over it must come back clean.
    report = lint_paths([FIXTURES / "rpr004_trigger.py"], select=["RPR001"])
    assert report.findings == []


def test_ignore_masks_rule():
    report = lint_paths([FIXTURES / "rpr001_trigger.py"], ignore=["RPR001"])
    assert report.findings == []


def test_rule_metadata_complete():
    for code, rule_cls in REGISTRY.items():
        assert rule_cls.code == code
        assert rule_cls.name
        assert rule_cls.rationale
        assert rule_cls.__doc__
