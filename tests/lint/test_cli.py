"""End-to-end tests for the ``repro lint`` subcommand: exit codes,
selection flags, suppressions, and the JSON reporter."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
TRIGGER = str(FIXTURES / "rpr001_trigger.py")
CLEAN = str(FIXTURES / "rpr001_clean.py")


class TestExitCodes:
    def test_clean_file_exits_0(self, capsys):
        assert main(["lint", CLEAN]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, capsys):
        assert main(["lint", TRIGGER]) == 1
        assert "RPR001" in capsys.readouterr().out

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "no/such/path.py" in capsys.readouterr().err

    def test_unknown_select_code_exits_2(self, capsys):
        assert main(["lint", CLEAN, "--select", "RPR999"]) == 2
        assert "RPR999" in capsys.readouterr().err

    def test_unknown_ignore_code_exits_2(self, capsys):
        assert main(["lint", CLEAN, "--ignore", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestSelection:
    def test_select_limits_to_one_rule(self, capsys):
        assert main(["lint", TRIGGER, "--select", "RPR005"]) == 0

    def test_ignore_masks_the_only_firing_rule(self, capsys):
        assert main(["lint", TRIGGER, "--ignore", "RPR001"]) == 0

    def test_comma_separated_codes(self, capsys):
        assert main(["lint", TRIGGER, "--select", "RPR001,RPR005"]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006"):
            assert code in out


class TestSuppressions:
    def _write(self, tmp_path, body):
        path = tmp_path / "mod.py"
        path.write_text(body)
        return str(path)

    def test_trailing_noqa_suppresses_that_line(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '"""Doc."""\n'
            "import numpy as np\n"
            "a = np.random.rand(3)  # repro: noqa RPR001 -- fixture\n"
            "b = np.random.rand(3)\n",
        )
        assert main(["lint", path, "--select", "RPR001"]) == 1
        out = capsys.readouterr().out
        assert out.count("RPR001") == 2  # one finding + summary count
        assert ":4:" in out and ":3:" not in out

    def test_file_level_noqa_suppresses_everywhere(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '"""Doc."""\n'
            "# repro: noqa RPR001 -- whole-file fixture\n"
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "b = np.random.rand(3)\n",
        )
        assert main(["lint", path, "--select", "RPR001"]) == 0

    def test_bare_noqa_suppresses_all_codes_on_line(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '"""Doc."""\n'
            "import numpy as np\n"
            "a = np.random.rand(3)  # repro: noqa\n",
        )
        assert main(["lint", path]) == 0

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '"""Doc."""\n'
            "import numpy as np\n"
            "a = np.random.rand(3)  # repro: noqa RPR005\n",
        )
        assert main(["lint", path, "--select", "RPR001"]) == 1


class TestJsonReporter:
    def test_json_format_parses_and_counts(self, capsys):
        assert main(["lint", TRIGGER, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts_by_code"] == {"RPR001": 4}
        assert len(payload["findings"]) == 4
        first = payload["findings"][0]
        assert set(first) == {"code", "message", "path", "line", "col"}

    def test_out_writes_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "lint.json"
        assert main(["lint", TRIGGER, "--out", str(out_file)]) == 1
        payload = json.loads(out_file.read_text())
        assert payload["counts_by_code"] == {"RPR001": 4}
        # text still goes to stdout for the human
        assert "RPR001" in capsys.readouterr().out

    def test_out_to_directory_exits_2(self, tmp_path, capsys):
        assert main(["lint", CLEAN, "--out", str(tmp_path)]) == 2

    def test_json_clean_report(self, capsys):
        assert main(["lint", CLEAN, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["counts_by_code"] == {}


class TestSyntaxErrors:
    def test_unparseable_file_reports_internal_code(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def oops(:\n")
        assert main(["lint", str(path)]) == 1
        assert "RPR000" in capsys.readouterr().out
