"""Tests for the motivation-figure analyses (Figs 1, 2, 6)."""

import numpy as np
import pytest

from repro.analysis.exponents import exponent_histogram, exponent_range_covered
from repro.analysis.potential import (
    model_potential_speedups,
    phase_potential_speedup,
)
from repro.analysis.sparsity import all_models_sparsity, model_sparsity_report
from repro.fp.bfloat16 import bf16_quantize


class TestSparsityReports:
    def test_report_matches_calibration(self):
        from repro.traces.calibration import get_calibration

        report = model_sparsity_report("VGG16", sample_size=30000)
        calibration = get_calibration("VGG16")
        for tensor in ("A", "W", "G"):
            stats = calibration.for_tensor(tensor)
            assert report.value[tensor] == pytest.approx(
                stats.value_sparsity, abs=0.02
            )
            assert report.term[tensor] == pytest.approx(
                stats.term_sparsity, abs=0.02
            )

    def test_term_sparsity_exceeds_value_sparsity(self):
        """The paper's central observation: term sparsity is much higher
        than value sparsity, for every tensor of every model."""
        for report in all_models_sparsity(("VGG16", "SNLI", "Bert", "NCF")):
            for tensor in ("A", "W", "G"):
                assert report.term[tensor] > report.value[tensor]

    def test_nlp_models_have_low_value_sparsity(self):
        for model in ("SNLI", "Bert"):
            report = model_sparsity_report(model, sample_size=20000)
            assert report.value["W"] < 0.1

    def test_deterministic(self):
        r1 = model_sparsity_report("NCF", sample_size=10000, seed=4)
        r2 = model_sparsity_report("NCF", sample_size=10000, seed=4)
        assert r1.value == r2.value


class TestPotential:
    def test_ncf_axg_towers(self):
        """Fig 2's skyline: NCF's weight-gradient phase has by far the
        largest ideal speedup (sparse embedding gradients)."""
        ncf = model_potential_speedups("NCF", sample_size=30000)
        assert ncf["AxG"] > 20.0
        vgg = model_potential_speedups("VGG16", sample_size=30000)
        assert ncf["AxG"] > 3 * max(vgg.values())

    def test_potential_at_least_one(self):
        for model in ("VGG16", "Bert", "ResNet18-Q"):
            for value in model_potential_speedups(model, sample_size=20000).values():
                assert value >= 1.0

    def test_quantized_model_high_potential(self):
        q = model_potential_speedups("ResNet18-Q", sample_size=20000)
        assert q["AxW"] > 5.0

    def test_serial_side_choice_is_best(self):
        """The phase potential uses the better of the two tensors."""
        pot = phase_potential_speedup("NCF", "GxW", sample_size=20000)
        # G is far sparser than W for NCF, so the potential must reflect
        # G's term count, not W's.
        assert pot > 10.0


class TestExponentAnalysis:
    def test_histogram_sums_to_one(self, rng):
        values = bf16_quantize(rng.normal(0, 1, 20000))
        bins, density = exponent_histogram(values, lo=-30, hi=10)
        assert density.sum() == pytest.approx(1.0, abs=1e-6)

    def test_histogram_empty(self):
        bins, density = exponent_histogram(np.zeros(10))
        assert density.sum() == 0.0

    def test_range_covered_narrow_for_training_values(self, rng):
        """The paper's Fig 6 point: a few dozen exponent values hold
        nearly all the mass, out of the format's 256."""
        values = bf16_quantize(rng.normal(0, 1, 50000))
        width = exponent_range_covered(values, mass=0.99)
        assert 0 < width < 40

    def test_range_covered_grows_with_spread(self, rng):
        tight = bf16_quantize(rng.normal(0, 1, 20000))
        wild = bf16_quantize(
            rng.normal(0, 1, 20000) * 2.0 ** rng.integers(-40, 40, 20000)
        )
        assert exponent_range_covered(wild) > exponent_range_covered(tight)

    def test_range_covered_all_zero(self):
        assert exponent_range_covered(np.zeros(100)) == 0
