"""Tests for bfloat16 helpers and raw-bit conversions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bfloat16 import bf16_fields, bf16_quantize, bf16_to_bits, bits_to_bf16


class TestBitConversions:
    def test_known_patterns(self):
        # 1.0 = 0x3F80, -2.0 = 0xC000, 0.0 = 0x0000.
        bits = bf16_to_bits(np.array([1.0, -2.0, 0.0]))
        assert list(bits) == [0x3F80, 0xC000, 0x0000]

    def test_roundtrip_random(self, rng):
        values = bf16_quantize(rng.normal(0, 50, 5000))
        assert np.array_equal(bits_to_bf16(bf16_to_bits(values)), values)

    def test_all_normal_bit_patterns_roundtrip(self):
        # Every positive normal bfloat16: exponent fields 1..254.
        bits = np.arange(0x0080, 0x7F80, dtype=np.uint16)
        values = bits_to_bf16(bits)
        assert np.array_equal(bf16_to_bits(values), bits)

    def test_negative_zero(self):
        assert bf16_to_bits(np.array([-0.0]))[0] == 0x8000


class TestFields:
    def test_field_reconstruction(self, rng):
        values = bf16_quantize(rng.normal(0, 3, 1000))
        sign, exp, man, is_zero = bf16_fields(values)
        live = ~is_zero
        rebuilt = np.where(sign == 1, -1.0, 1.0) * np.ldexp(
            man.astype(np.float64), exp - 7
        )
        assert np.allclose(rebuilt[live], values[live], rtol=0, atol=0)

    def test_significand_has_hidden_bit(self, bf16_vector):
        _, _, man, is_zero = bf16_fields(bf16_vector)
        assert np.all((man[~is_zero] >= 128) & (man[~is_zero] <= 255))

    @given(st.floats(min_value=-1e20, max_value=1e20, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_quantize_bits_consistent(self, x):
        q = bf16_quantize(x)
        assert float(bits_to_bf16(bf16_to_bits(q))) == float(q)


class TestQuantizeDefaults:
    def test_saturates_by_default(self):
        out = bf16_quantize(1e40)
        assert np.isfinite(out)

    def test_inf_mode(self):
        assert np.isinf(bf16_quantize(1e40, overflow="inf"))
