"""Tests for the generic softfloat formats and RNE quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.softfloat import (
    BFLOAT16,
    FP16,
    FP32,
    FloatFormat,
    compose,
    decompose,
    quantize,
    round_significand,
    ulp,
)


class TestFloatFormat:
    def test_bfloat16_geometry(self):
        assert BFLOAT16.bias == 127
        assert BFLOAT16.emax == 127
        assert BFLOAT16.emin == -126
        assert BFLOAT16.total_bits == 16

    def test_fp32_geometry(self):
        assert FP32.bias == 127
        assert FP32.man_bits == 23
        assert FP32.total_bits == 32

    def test_fp16_geometry(self):
        assert FP16.bias == 15
        assert FP16.emax == 15
        assert FP16.total_bits == 16

    def test_max_value_bf16(self):
        # bfloat16 max: (2 - 2^-7) * 2^127.
        assert BFLOAT16.max_value == (2.0 - 2.0**-7) * 2.0**127

    def test_min_normal(self):
        assert BFLOAT16.min_normal == 2.0**-126

    def test_str(self):
        assert "e8m7" in str(BFLOAT16)


class TestQuantize:
    def test_exact_values_unchanged(self):
        values = np.array([1.0, -2.0, 0.5, 1.5, 0.0, 96.0])
        assert np.array_equal(quantize(values, BFLOAT16), values)

    def test_one_is_one(self):
        assert quantize(1.0, BFLOAT16) == 1.0

    def test_rounds_to_nearest(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7: RNE
        # picks the even significand, 1.0.
        assert quantize(1.0 + 2.0**-8, BFLOAT16) == 1.0
        # 1 + 3 * 2^-8 is halfway between 1+2^-7 and 1+2^-6: even is
        # 1 + 2^-6 (significand ...10).
        assert quantize(1.0 + 3.0 * 2.0**-8, BFLOAT16) == 1.0 + 2.0**-6

    def test_carry_into_next_exponent(self):
        # Just below 2.0 rounds up across the binade boundary.
        assert quantize(2.0 - 2.0**-9, BFLOAT16) == 2.0

    def test_denormal_flush(self):
        tiny = 2.0**-130
        assert quantize(tiny, BFLOAT16) == 0.0
        assert quantize(-tiny, BFLOAT16) == 0.0

    def test_overflow_inf(self):
        assert np.isinf(quantize(1e39, BFLOAT16, overflow="inf"))

    def test_overflow_sat(self):
        assert quantize(1e39, BFLOAT16, overflow="sat") == BFLOAT16.max_value

    def test_overflow_mode_validation(self):
        with pytest.raises(ValueError):
            quantize(1.0, BFLOAT16, overflow="wrap")

    def test_nan_propagates(self):
        out = quantize(np.array([np.nan]), BFLOAT16)
        assert np.isnan(out[0])

    def test_inf_propagates(self):
        out = quantize(np.array([np.inf, -np.inf]), BFLOAT16)
        assert np.isinf(out).all()

    def test_matches_hardware_rounding_trick(self, rng):
        """Cross-check against the float32-truncation RNE bit trick."""
        x = rng.normal(0, 10, 50000)
        q = quantize(x, BFLOAT16)
        u = x.astype(np.float32).view(np.uint32)
        bias = ((u >> 16) & 1) + 0x7FFF
        bits = ((u + bias) >> 16).astype(np.uint16)
        ref = (np.asarray(bits, dtype=np.uint32) << 16).view(np.float32)
        assert np.array_equal(q, ref.astype(np.float64))

    def test_error_within_half_ulp(self, rng):
        x = rng.uniform(0.5, 4.0, 1000)
        q = quantize(x, BFLOAT16)
        for xi, qi in zip(x, q):
            assert abs(xi - qi) <= ulp(qi, BFLOAT16) / 2 + 1e-30

    @given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_idempotent(self, x):
        once = float(quantize(x, BFLOAT16))
        twice = float(quantize(once, BFLOAT16))
        assert once == twice

    @given(st.floats(min_value=1e-30, max_value=1e30))
    @settings(max_examples=300, deadline=None)
    def test_sign_symmetric(self, x):
        assert float(quantize(-x, BFLOAT16)) == -float(quantize(x, BFLOAT16))

    @given(
        st.floats(min_value=1e-20, max_value=1e20),
        st.floats(min_value=1e-20, max_value=1e20),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert float(quantize(lo, BFLOAT16)) <= float(quantize(hi, BFLOAT16))


class TestDecomposeCompose:
    def test_roundtrip(self, rng):
        values = quantize(rng.normal(0, 100, 2000), BFLOAT16)
        sign, exp, man, is_zero = decompose(values, BFLOAT16)
        back = compose(sign, exp, man, BFLOAT16)
        assert np.array_equal(back, values)

    def test_hidden_bit_range(self, rng):
        values = quantize(rng.normal(0, 5, 2000), BFLOAT16)
        _, _, man, is_zero = decompose(values, BFLOAT16)
        live = man[~is_zero]
        assert live.min() >= 128
        assert live.max() <= 255

    def test_zero_fields(self):
        sign, exp, man, is_zero = decompose(np.array([0.0, 1.0]), BFLOAT16)
        assert bool(is_zero[0]) and not bool(is_zero[1])
        assert man[0] == 0
        assert exp[0] == 0

    def test_known_value(self):
        # 1.5 = significand 1.1000000 -> 192, exponent 0.
        sign, exp, man, _ = decompose(np.array([1.5]), BFLOAT16)
        assert (sign[0], exp[0], man[0]) == (0, 0, 192)

    def test_negative_sign_bit(self):
        sign, _, _, _ = decompose(np.array([-3.0]), BFLOAT16)
        assert sign[0] == 1


class TestRoundSignificand:
    def test_identity_for_representable(self):
        assert round_significand(np.array([1.5]), 7)[0] == 1.5

    def test_narrows(self):
        # 1 + 2^-12 rounds away at 4 fractional bits.
        assert round_significand(np.array([1.0 + 2.0**-12]), 4)[0] == 1.0

    def test_ties_to_even(self):
        # 1 + 2^-5 at 4 bits: halfway -> even -> 1.0.
        assert round_significand(np.array([1.0 + 2.0**-5]), 4)[0] == 1.0
        # 1 + 3*2^-5 at 4 bits: halfway -> even -> 1 + 2^-3... check
        # against python round-half-even on the scaled significand.
        value = 1.0 + 3.0 * 2.0**-5
        out = round_significand(np.array([value]), 4)[0]
        assert out == 1.0 + 2.0**-3

    def test_any_exponent(self):
        x = np.array([3.14159e-20, 2.71828e20])
        out = round_significand(x, 12)
        assert np.all(np.abs(out - x) <= np.abs(x) * 2.0**-12)

    def test_zero(self):
        assert round_significand(np.array([0.0]), 12)[0] == 0.0

    @given(st.floats(min_value=1e-15, max_value=1e15), st.integers(4, 20))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bound(self, x, bits):
        out = float(round_significand(np.array([x]), bits)[0])
        assert abs(out - x) <= x * 2.0 ** (-bits)


class TestUlp:
    def test_ulp_of_one(self):
        assert ulp(1.0, BFLOAT16) == 2.0**-7

    def test_ulp_scales_with_binade(self):
        assert ulp(2.0, BFLOAT16) == 2.0 * ulp(1.0, BFLOAT16)

    def test_ulp_of_zero(self):
        assert ulp(0.0, BFLOAT16) > 0.0
