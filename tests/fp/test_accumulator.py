"""Tests for the extended-precision accumulator (the golden reference)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.accumulator import (
    AccumulatorSpec,
    ChunkAccumulator,
    ExtendedAccumulator,
    Product,
    dot_reference,
    exact_product,
    rne_shift_right,
)
from repro.fp.bfloat16 import bf16_quantize


class TestRneShiftRight:
    def test_no_shift(self):
        assert rne_shift_right(42, 0) == 42

    def test_negative_shift_is_left_shift(self):
        assert rne_shift_right(3, -2) == 12

    def test_exact_division(self):
        assert rne_shift_right(8, 2) == 2

    def test_round_up(self):
        assert rne_shift_right(7, 2) == 2  # 1.75 -> 2

    def test_round_down(self):
        assert rne_shift_right(5, 2) == 1  # 1.25 -> 1

    def test_tie_to_even_down(self):
        assert rne_shift_right(2, 2) == 0  # 0.5 -> 0 (even)

    def test_tie_to_even_up(self):
        assert rne_shift_right(6, 2) == 2  # 1.5 -> 2 (even)

    def test_negative_values_symmetric(self):
        for v in range(-64, 65):
            for s in range(0, 5):
                assert rne_shift_right(-v, s) == -rne_shift_right(v, s)

    @given(st.integers(-(2**40), 2**40), st.integers(0, 30))
    @settings(max_examples=500, deadline=None)
    def test_matches_fraction_rounding(self, value, shift):
        """RNE shift must equal exact rational rounding half-to-even."""
        exact = Fraction(value, 1 << shift)
        floor = exact.numerator // exact.denominator
        rem = exact - floor
        if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and floor % 2):
            expected = floor + 1
        else:
            expected = floor
        assert rne_shift_right(value, shift) == expected


class TestExactProduct:
    def test_simple(self):
        p = exact_product(1.5, 2.0)
        assert p.value() == 3.0

    def test_zero_operand(self):
        assert exact_product(0.0, 5.0).is_zero
        assert exact_product(5.0, 0.0).is_zero

    def test_sign_rules(self):
        assert exact_product(-1.5, 2.0).sign == -1
        assert exact_product(-1.5, -2.0).sign == 1

    def test_exactness_random(self, rng):
        a = bf16_quantize(rng.normal(0, 10, 500))
        b = bf16_quantize(rng.normal(0, 10, 500))
        for x, y in zip(a, b):
            assert exact_product(x, y).value() == x * y

    def test_significand_range(self, rng):
        a = bf16_quantize(rng.uniform(1, 100, 200))
        b = bf16_quantize(rng.uniform(1, 100, 200))
        for x, y in zip(a, b):
            p = exact_product(x, y)
            # P * 2^-14 lies in [1, 4).
            assert (1 << 14) <= p.sig < (1 << 16)


class TestExtendedAccumulator:
    def test_starts_at_zero(self):
        acc = ExtendedAccumulator()
        assert acc.is_zero
        assert acc.value() == 0.0

    def test_single_product(self):
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(1.5, 2.0)])
        assert acc.value() == 3.0

    def test_normalized_invariant(self, rng):
        acc = ExtendedAccumulator()
        a = bf16_quantize(rng.normal(0, 2, 64))
        b = bf16_quantize(rng.normal(0, 2, 64))
        for i in range(0, 64, 8):
            acc.accumulate(
                [exact_product(x, y) for x, y in zip(a[i : i + 8], b[i : i + 8])]
            )
            if not acc.is_zero:
                frac = acc.spec.frac_bits
                assert (1 << frac) <= abs(acc.sig) < (1 << (frac + 1))

    def test_close_to_float_dot(self, rng):
        acc = ExtendedAccumulator()
        a = bf16_quantize(rng.normal(0, 1, 32))
        b = bf16_quantize(rng.normal(0, 1, 32))
        for i in range(0, 32, 8):
            acc.accumulate(
                [exact_product(x, y) for x, y in zip(a[i : i + 8], b[i : i + 8])]
            )
        exact = float(a @ b)
        # 12 fractional bits of a running sum: relative error stays small.
        assert abs(acc.value() - exact) <= max(abs(exact), 1.0) * 2.0**-8

    def test_cancellation_to_zero(self):
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(1.5, 2.0), exact_product(-1.5, 2.0)])
        assert acc.is_zero

    def test_all_zero_group_keeps_state(self):
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(1.0, 1.0)])
        before = acc.value()
        acc.accumulate([exact_product(0.0, 0.0)] * 8)
        assert acc.value() == before

    def test_swamping(self):
        """A tiny addend beyond the accumulator's reach is absorbed."""
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(1.0, 1.0)])
        acc.accumulate([exact_product(2.0**-40, 2.0**-40)])
        assert acc.value() == 1.0

    def test_read_bf16(self):
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(1.0, 1.0), exact_product(1.0, 2.0**-12)])
        # Extended value 1 + 2^-12 reads back as bfloat16 1.0.
        assert acc.read_bf16() == 1.0
        assert acc.value() == 1.0 + 2.0**-12

    def test_accumulate_exact_matches_products_path(self, rng):
        a = bf16_quantize(rng.normal(0, 1, 8))
        b = bf16_quantize(rng.normal(0, 1, 8))
        products = [exact_product(x, y) for x, y in zip(a, b)]
        acc1 = ExtendedAccumulator()
        acc1.accumulate(products)
        acc2 = ExtendedAccumulator()
        live = [p for p in products if not p.is_zero]
        emax = max(p.exp for p in live)
        acc2.accumulate_exact(
            [(p.sign * p.sig, p.exp - 14) for p in live], emax
        )
        assert acc1.value() == acc2.value()

    def test_reset(self):
        acc = ExtendedAccumulator()
        acc.accumulate([exact_product(3.0, 3.0)])
        acc.reset()
        assert acc.is_zero

    def test_narrow_spec_swamps_earlier(self):
        narrow = ExtendedAccumulator(AccumulatorSpec(frac_bits=4))
        wide = ExtendedAccumulator(AccumulatorSpec(frac_bits=12))
        groups = [
            [exact_product(1.0, 1.0)],
            [exact_product(1.0, 2.0**-6)],
        ]
        for g in groups:
            narrow.accumulate(g)
            wide.accumulate(g)
        assert narrow.value() == 1.0  # 2^-6 below 4 fractional bits
        assert wide.value() == 1.0 + 2.0**-6


class TestChunkAccumulator:
    def test_single_chunk_equals_inner(self, rng):
        a = bf16_quantize(rng.normal(0, 1, 32))
        b = bf16_quantize(rng.normal(0, 1, 32))
        chunk = ChunkAccumulator()
        inner = ExtendedAccumulator()
        for i in range(0, 32, 8):
            products = [
                exact_product(x, y) for x, y in zip(a[i : i + 8], b[i : i + 8])
            ]
            chunk.add_group(products)
            inner.accumulate(products)
        assert chunk.result() == float(np.float32(inner.value()))

    def test_flush_resets_inner(self, rng):
        chunk = ChunkAccumulator(AccumulatorSpec(chunk_size=16))
        a = bf16_quantize(rng.normal(0, 1, 16))
        b = bf16_quantize(rng.normal(0, 1, 16))
        for i in range(0, 16, 8):
            chunk.add_group(
                [exact_product(x, y) for x, y in zip(a[i : i + 8], b[i : i + 8])]
            )
        assert chunk.inner.is_zero  # flushed at exactly chunk_size MACs
        assert chunk.outer != 0.0

    def test_long_reduction_stability(self, rng):
        """Chunking keeps long reductions close to the fp64 result."""
        n = 1024
        a = bf16_quantize(rng.normal(0, 1, n))
        b = bf16_quantize(rng.normal(0, 1, n))
        result = dot_reference(a, b)
        exact = float(a @ b)
        scale = float(np.abs(a * b).sum())
        assert abs(result - exact) <= scale * 2.0**-9

    def test_reset(self):
        chunk = ChunkAccumulator()
        chunk.add_group([exact_product(1.0, 1.0)])
        chunk.reset()
        assert chunk.result() == 0.0

    def test_result_bf16(self):
        chunk = ChunkAccumulator()
        chunk.add_group([exact_product(1.5, 1.5)])
        assert chunk.result_bf16() == 2.25


class TestDotReference:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dot_reference(np.zeros(4), np.zeros(5))

    def test_zero_vectors(self):
        assert dot_reference(np.zeros(16), np.zeros(16)) == 0.0

    def test_matches_manual_small(self):
        a = np.array([1.0, 2.0, -1.5, 0.0])
        b = np.array([2.0, 0.5, 2.0, 9.0])
        assert dot_reference(a, b) == 1.0 + 2.0 - 3.0
