"""N=1 scale-out is bit-identical to the single-tile path.

The same contract the batched strip engine carries against the serial
reference: under *every* partition scheme, a one-node
:class:`ScaleOutSimulator` run must reproduce the plain simulator's
cycles, counters, and energy exactly -- for the FPRaker config, the
analytic baseline, Pragmatic-FP, and the hierarchy memory engine, on
concrete zoo models and on randomized synthetic workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import AcceleratorSimulator
from repro.core.baseline import BaselineAccelerator
from repro.core.config import (
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.core.workload import PhaseWorkload
from repro.fp.bfloat16 import bf16_quantize
from repro.scale.partition import SCHEMES
from repro.scale.scaleout import ScaleOutSimulator, single_node_result
from repro.traces.workloads import build_workloads

FAST = dict(sample_strips=2, sample_steps=8)


@pytest.fixture(scope="module")
def ncf_workloads():
    return build_workloads("NCF", progress=0.5)


def _assert_matches(scale_result, single_result):
    """Aggregate fields equal the single-tile result bit for bit."""
    assert scale_result.nodes == 1
    assert scale_result.cycles == single_result.cycles
    assert scale_result.node_cycles == single_result.cycles
    assert scale_result.comm_cycles == 0.0
    assert scale_result.link_energy_nj == 0.0
    assert (
        scale_result.counters.to_dict()
        == single_result.counters_total().to_dict()
    )
    assert (
        scale_result.energy.to_dict() == single_result.energy_total().to_dict()
    )


class TestSingleNodeConformance:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fpraker(self, ncf_workloads, scheme):
        single = AcceleratorSimulator(
            fpraker_paper_config(), **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        scale = ScaleOutSimulator(
            fpraker_paper_config(), nodes=1, scheme=scheme, **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        _assert_matches(scale, single)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_baseline(self, ncf_workloads, scheme):
        single = BaselineAccelerator(
            baseline_paper_config()
        ).simulate_workload(ncf_workloads)
        scale = ScaleOutSimulator(
            baseline_paper_config(), nodes=1, scheme=scheme, **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        _assert_matches(scale, single)

    def test_pragmatic(self, ncf_workloads):
        single = PragmaticFPAccelerator(
            pragmatic_paper_config(), **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        scale = ScaleOutSimulator(
            pragmatic_paper_config(), nodes=1, scheme="data", **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        _assert_matches(scale, single)

    def test_hierarchy_memory_engine(self, ncf_workloads):
        single = AcceleratorSimulator(
            fpraker_paper_config(), memory_engine="hierarchy", **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        scale = ScaleOutSimulator(
            fpraker_paper_config(),
            nodes=1,
            scheme="model",
            memory_engine="hierarchy",
            **FAST,
        ).simulate_workload(ncf_workloads, model="NCF")
        _assert_matches(scale, single)

    def test_single_node_result_wrapper(self, ncf_workloads):
        single = AcceleratorSimulator(
            fpraker_paper_config(), **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        wrapped = single_node_result(single, "data")
        _assert_matches(wrapped, single)


def _random_workloads(seed, layers, sparsity):
    rng = np.random.default_rng(seed)
    workloads = []
    for i in range(layers):
        for phase, (ta, tb) in (
            ("AxW", ("A", "W")),
            ("GxW", ("G", "W")),
            ("AxG", ("A", "G")),
        ):
            values_a = bf16_quantize(rng.normal(0, 1, 256))
            values_a[rng.random(256) < sparsity] = 0.0
            values_b = bf16_quantize(rng.normal(0, 2, 256))
            workloads.append(
                PhaseWorkload(
                    model="prop",
                    layer=f"l{i}",
                    phase=phase,
                    macs=int(rng.integers(1, 10)) * 1_000_000,
                    reduction=int(rng.integers(3, 10)) * 64,
                    tensor_a=ta,
                    tensor_b=tb,
                    values_a=values_a,
                    values_b=values_b,
                    input_bytes=float(rng.integers(1, 100)) * 1e4,
                    output_bytes=float(rng.integers(1, 100)) * 1e3,
                )
            )
    return workloads


class TestSingleNodeProperty:
    """Hypothesis: N=1 exactness holds for arbitrary workload mixes."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        layers=st.integers(1, 4),
        sparsity=st.floats(0.0, 0.9),
        scheme=st.sampled_from(SCHEMES),
    )
    def test_n1_bit_exact(self, seed, layers, sparsity, scheme):
        workloads = _random_workloads(seed, layers, sparsity)
        single = AcceleratorSimulator(
            fpraker_paper_config(), sample_strips=1, sample_steps=4
        ).simulate_workload(workloads, model="prop")
        scale = ScaleOutSimulator(
            fpraker_paper_config(),
            nodes=1,
            scheme=scheme,
            sample_strips=1,
            sample_steps=4,
        ).simulate_workload(workloads, model="prop")
        _assert_matches(scale, single)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nodes=st.integers(2, 8),
        scheme=st.sampled_from(SCHEMES),
    )
    def test_multi_node_sane(self, seed, nodes, scheme):
        """N>1 aggregates stay finite, positive, and serializable."""
        workloads = _random_workloads(seed, 3, 0.4)
        result = ScaleOutSimulator(
            fpraker_paper_config(),
            nodes=nodes,
            scheme=scheme,
            sample_strips=1,
            sample_steps=4,
        ).simulate_workload(workloads, model="prop")
        assert result.nodes == nodes
        assert len(result.node_summaries) == nodes
        assert np.isfinite(result.cycles) and result.cycles > 0
        assert result.cycles >= result.node_cycles
        round_trip = type(result).from_dict(result.to_dict())
        assert round_trip.to_dict() == result.to_dict()


class TestMultiNodeBehavior:
    def test_data_parallel_speeds_up(self, ncf_workloads):
        runs = {
            n: ScaleOutSimulator(
                fpraker_paper_config(), nodes=n, scheme="data", **FAST
            ).simulate_workload(ncf_workloads, model="NCF")
            for n in (1, 2, 4)
        }
        assert runs[2].cycles < runs[1].cycles
        assert runs[4].cycles < runs[2].cycles
        # Communication makes scaling sub-linear.
        assert runs[4].speedup_vs(runs[1]) < 4.0

    def test_symmetric_nodes_identical(self, ncf_workloads):
        result = ScaleOutSimulator(
            fpraker_paper_config(), nodes=4, scheme="data", **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        dicts = [s.to_dict() for s in result.node_summaries]
        for entry in dicts:
            entry.pop("node_id")
        assert all(entry == dicts[0] for entry in dicts)

    def test_comm_priced_only_above_one_node(self, ncf_workloads):
        n4 = ScaleOutSimulator(
            fpraker_paper_config(), nodes=4, scheme="data", **FAST
        ).simulate_workload(ncf_workloads, model="NCF")
        assert n4.comm_cycles > 0.0
        assert n4.link_energy_nj > 0.0

    def test_pipeline_idle_stages_cost_nothing(self):
        workloads = _random_workloads(11, 2, 0.3)
        result = ScaleOutSimulator(
            fpraker_paper_config(), nodes=4, scheme="pipeline", **FAST
        ).simulate_workload(workloads, model="prop")
        idle = [s for s in result.node_summaries if s.layer_phases == 0]
        assert idle
        for summary in idle:
            assert summary.cycles == 0.0
            assert summary.macs == 0.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            ScaleOutSimulator(nodes=0)
        with pytest.raises(ValueError, match="scheme"):
            ScaleOutSimulator(scheme="torus")
        with pytest.raises(ValueError, match="microbatches"):
            ScaleOutSimulator(nodes=2, microbatches=0)
        with pytest.raises(ValueError, match="empty"):
            ScaleOutSimulator(nodes=2).simulate_workload([])
