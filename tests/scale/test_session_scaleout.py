"""Scale-out requests through the session: keys, memo, and disk cache."""

import pytest

from repro.harness.cache import CACHE_VERSION, ResultCache
from repro.harness.runner import SimRequest, SimulationSession, canonical_key
from repro.scale.scaleout import ScaleOutResult

FAST = dict(sample_strips=2, sample_steps=8)


def _key(request):
    return canonical_key(request, 2, 8, 1234, "roofline")


class TestCanonicalKeys:
    def test_nodes_and_partition_in_key(self):
        base = SimRequest.make("NCF", nodes=2, partition="data")
        assert _key(base) != _key(SimRequest.make("NCF", nodes=4, partition="data"))
        assert _key(base) != _key(SimRequest.make("NCF", nodes=2, partition="model"))

    def test_single_node_partition_normalized_away(self):
        """N=1 requests share keys regardless of (irrelevant) scheme."""
        plain = SimRequest.make("NCF")
        for scheme in ("data", "model", "pipeline"):
            assert _key(plain) == _key(
                SimRequest.make("NCF", nodes=1, partition=scheme)
            )

    def test_key_spec_contains_nodes(self):
        assert '"nodes":4' in _key(SimRequest.make("NCF", nodes=4))


class TestSessionScaleout:
    def test_n1_shares_memo_with_plain_simulate(self):
        session = SimulationSession(**FAST)
        plain = session.simulate("NCF")
        assert session.stats.simulations == 1
        anchor = session.scaleout("NCF", 1, "pipeline")
        assert session.stats.simulations == 1  # memo hit, no re-run
        assert anchor is plain

    def test_multi_node_returns_scaleout_result(self):
        session = SimulationSession(**FAST)
        result = session.scaleout("NCF", 2, "data")
        assert isinstance(result, ScaleOutResult)
        assert result.nodes == 2 and result.scheme == "data"

    def test_memoized_per_scheme(self):
        session = SimulationSession(**FAST)
        first = session.scaleout("NCF", 2, "data")
        again = session.scaleout("NCF", 2, "data")
        other = session.scaleout("NCF", 2, "model")
        assert again is first
        assert other is not first
        assert session.stats.simulations == 2

    def test_prefetch_covers_scaleout_requests(self):
        session = SimulationSession(**FAST)
        session.prefetch(
            [
                SimRequest.make("NCF", nodes=n, partition="data")
                for n in (1, 2)
            ]
        )
        assert session.stats.simulations == 2
        session.scaleout("NCF", 2, "data")
        assert session.stats.simulations == 2


class TestDiskCache:
    def test_scaleout_round_trip(self, tmp_path):
        session = SimulationSession(cache_dir=tmp_path, **FAST)
        cold = session.scaleout("NCF", 4, "pipeline")
        warm_session = SimulationSession(cache_dir=tmp_path, **FAST)
        warm = warm_session.scaleout("NCF", 4, "pipeline")
        assert warm_session.stats.disk_hits == 1
        assert warm_session.stats.simulations == 0
        assert isinstance(warm, ScaleOutResult)
        assert warm.to_dict() == cold.to_dict()

    def test_kind_tag_selects_deserializer(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        session = SimulationSession(cache_dir=tmp_path, **FAST)
        request = SimRequest.make("NCF", nodes=2, partition="data")
        session.prefetch([request])
        key = session.key_of(request)
        payload = json.loads(cache.path_for(key).read_text())
        assert payload["version"] == CACHE_VERSION
        assert payload["kind"] == "scaleout"
        loaded = cache.load(key)
        assert isinstance(loaded, ScaleOutResult)

    def test_workload_results_tagged_workload(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        session = SimulationSession(cache_dir=tmp_path, **FAST)
        request = SimRequest.make("NCF")
        session.prefetch([request])
        payload = json.loads(
            cache.path_for(session.key_of(request)).read_text()
        )
        assert payload["kind"] == "workload"

    def test_version_mismatch_is_miss(self, tmp_path, monkeypatch):
        session = SimulationSession(cache_dir=tmp_path, **FAST)
        request = SimRequest.make("NCF", nodes=2, partition="data")
        session.prefetch([request])
        monkeypatch.setattr("repro.harness.cache.CACHE_VERSION", 999)
        assert ResultCache(tmp_path).load(session.key_of(request)) is None


class TestParallelFanOut:
    def test_jobs_bit_identical_to_serial(self, tmp_path):
        requests = [
            SimRequest.make("NCF", nodes=n, partition=p)
            for n, p in ((2, "data"), (2, "model"), (4, "pipeline"))
        ]
        serial = SimulationSession(**FAST)
        serial.prefetch(requests)
        parallel = SimulationSession(jobs=2, **FAST)
        parallel.prefetch(requests)
        for request in requests:
            a = serial._memo[serial.key_of(request)]
            b = parallel._memo[parallel.key_of(request)]
            assert a.to_dict() == b.to_dict()
