"""Partition plans: structure, sharded volumes, and error handling."""

import numpy as np
import pytest

from repro.core.workload import PhaseWorkload
from repro.fp.bfloat16 import bf16_quantize
from repro.scale.interconnect import (
    all_gather_wire_bytes,
    all_reduce_wire_bytes,
)
from repro.scale.partition import SCHEMES, partition_workloads
from repro.traces.workloads import build_workloads


@pytest.fixture(scope="module")
def ncf_workloads():
    return build_workloads("NCF", progress=0.5)


def _synthetic(layer="l0", phase="AxW", macs=4_000_000, reduction=512):
    rng = np.random.default_rng(7)
    return PhaseWorkload(
        model="prop",
        layer=layer,
        phase=phase,
        macs=macs,
        reduction=reduction,
        tensor_a="A",
        tensor_b="W",
        values_a=bf16_quantize(rng.normal(0, 1, 256)),
        values_b=bf16_quantize(rng.normal(0, 1, 256)),
        input_bytes=1e6,
        output_bytes=2.5e5,
    )


class TestValidation:
    def test_unknown_scheme_rejected(self, ncf_workloads):
        with pytest.raises(ValueError, match="unknown partition scheme"):
            partition_workloads(ncf_workloads, 2, "ring")

    def test_nonpositive_nodes_rejected(self, ncf_workloads):
        with pytest.raises(ValueError, match="nodes"):
            partition_workloads(ncf_workloads, 0, "data")

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            partition_workloads([], 2, "data")


class TestSingleNodePassThrough:
    """N=1 hands over the original objects with zero communication."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_original_objects_and_zero_comm(self, ncf_workloads, scheme):
        plan = partition_workloads(ncf_workloads, 1, scheme)
        assert plan.nodes == 1 and plan.symmetric
        (node,) = plan.node_plans
        assert all(a is b for a, b in zip(node.workloads, ncf_workloads))
        assert len(node.workloads) == len(ncf_workloads)
        assert node.comm.payload_bytes == 0.0
        assert node.comm.wire_bytes == 0.0
        assert node.comm.steps == 0.0


class TestDataParallel:
    def test_structure(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 4, "data")
        assert plan.symmetric and len(plan.node_plans) == 4
        for node in plan.node_plans:
            assert len(node.workloads) == len(ncf_workloads)

    def test_weights_replicate_batch_shards(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 4, "data")
        for original, shard in zip(
            ncf_workloads, plan.node_plans[0].workloads
        ):
            assert shard.macs == -(-original.macs // 4)
            for s_orig, s_new in zip(original.streams, shard.streams):
                if s_orig.tensor == "W":
                    assert s_new.volume_bytes == s_orig.volume_bytes
                else:
                    assert s_new.volume_bytes == pytest.approx(
                        s_orig.volume_bytes / 4
                    )
            if original.phase == "AxG":
                assert shard.reduction == max(1, original.reduction // 4)
            else:
                assert shard.reduction == original.reduction
            # Value arrays are shared, never copied.
            assert shard.values_a is original.values_a

    def test_allreduce_volume(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 8, "data")
        payload = sum(
            s.volume_bytes
            for w in ncf_workloads
            if w.phase == "AxG"
            for s in w.streams
            if s.direction == "write" and s.tensor == "W"
        )
        comm = plan.node_plans[0].comm
        assert comm.payload_bytes == pytest.approx(payload)
        assert comm.wire_bytes == pytest.approx(
            all_reduce_wire_bytes(payload, 8)
        )
        assert comm.steps == 2 * (8 - 1)


class TestModelParallel:
    def test_weight_streams_shard(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 4, "model")
        assert plan.symmetric
        for original, shard in zip(
            ncf_workloads, plan.node_plans[0].workloads
        ):
            for s_orig, s_new in zip(original.streams, shard.streams):
                if s_orig.tensor == "W":
                    assert s_new.volume_bytes == pytest.approx(
                        s_orig.volume_bytes / 4
                    )
            if original.phase == "GxW":
                assert shard.reduction == max(1, original.reduction // 4)

    def test_collective_volume(self, ncf_workloads):
        nodes = 4
        plan = partition_workloads(ncf_workloads, nodes, "model")
        gather = sum(
            s.volume_bytes
            for w in ncf_workloads
            if w.phase == "AxW"
            for s in w.streams
            if s.direction == "write" and s.tensor == "G"
        )
        scatter = sum(
            s.volume_bytes
            for w in ncf_workloads
            if w.phase == "GxW"
            for s in w.streams
            if s.direction == "write" and s.tensor == "A"
        )
        comm = plan.node_plans[0].comm
        assert comm.payload_bytes == pytest.approx(gather + scatter)
        assert comm.wire_bytes == pytest.approx(
            all_gather_wire_bytes(gather, nodes)
            + all_gather_wire_bytes(scatter, nodes)
        )


class TestPipelineParallel:
    def test_contiguous_cover(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 2, "pipeline")
        assert not plan.symmetric
        assigned = [w for node in plan.node_plans for w in node.workloads]
        assert sorted(id(w) for w in assigned) == sorted(
            id(w) for w in ncf_workloads
        )
        # Workloads pass through unchanged (same objects).
        assert all(any(w is o for o in ncf_workloads) for w in assigned)

    def test_layers_not_split_across_stages(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 2, "pipeline")
        stage_layers = [
            {w.layer for w in node.workloads} for node in plan.node_plans
        ]
        for i, layers in enumerate(stage_layers):
            for other in stage_layers[i + 1:]:
                assert not layers & other

    def test_more_nodes_than_layers_leaves_idle_stages(self):
        workloads = [_synthetic(layer=f"l{i}") for i in range(2)]
        plan = partition_workloads(workloads, 4, "pipeline")
        busy = [node for node in plan.node_plans if node.workloads]
        idle = [node for node in plan.node_plans if not node.workloads]
        assert len(busy) == 2 and len(idle) == 2
        for node in idle:
            assert node.comm.wire_bytes == 0.0

    def test_boundary_traffic_on_interior_stages(self, ncf_workloads):
        plan = partition_workloads(ncf_workloads, 4, "pipeline")
        busy = [node for node in plan.node_plans if node.workloads]
        assert busy[0].comm.wire_bytes > 0.0  # sends forward
        assert busy[-1].comm.wire_bytes > 0.0  # receives + returns grad
        if len(busy) > 2:
            # Interior stages pay both boundaries.
            assert busy[1].comm.steps == 2.0


class TestMacConservation:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_macs_cover_original(self, ncf_workloads, scheme, nodes):
        """Sharded MACs sum to >= the original (ceil padding only)."""
        plan = partition_workloads(ncf_workloads, nodes, scheme)
        total = sum(w.macs for w in ncf_workloads)
        if scheme == "pipeline":
            sharded = sum(
                w.macs for node in plan.node_plans for w in node.workloads
            )
            assert sharded == total
        else:
            per_node = sum(w.macs for w in plan.node_plans[0].workloads)
            assert total <= per_node * nodes < total + nodes * len(
                ncf_workloads
            )
