"""Tests pinning the energy/area model to its Table III calibration."""

import pytest

from repro.core.stats import LaneLedger, SimCounters, TermLedger
from repro.energy.model import TABLE3, AreaModel, CoreEnergy, EnergyBreakdown, EnergyModel


class TestTable3Constants:
    def test_area_ratio(self):
        assert TABLE3.area_ratio == pytest.approx(0.22, abs=0.01)

    def test_power_ratio(self):
        ratio = TABLE3.fpraker_tile_power / TABLE3.baseline_tile_power
        assert ratio == pytest.approx(0.23, abs=0.01)

    def test_iso_area_tiles(self):
        area = AreaModel()
        assert area.iso_area_tiles(8) == 36
        assert area.iso_area_pragmatic_tiles(8) == 20


class TestBaselineEnergy:
    def test_per_mac_constant_from_power(self):
        """The baseline per-MAC energy must follow from its measured
        power: 475 mW / 600 MHz / 512 MACs-per-cycle = 1.546 pJ."""
        model = EnergyModel()
        derived = (
            TABLE3.baseline_tile_power
            / 1e3
            / (TABLE3.clock_mhz * 1e6)
            / 512
            * 1e12
        )
        assert model.baseline_mac_pj == pytest.approx(derived, rel=0.01)

    def test_core_energy_scales_with_macs(self):
        model = EnergyModel()
        one = model.baseline_core_energy(1e6).total
        two = model.baseline_core_energy(2e6).total
        assert two == pytest.approx(2 * one)


class TestFPRakerEnergyCalibration:
    def _busy_tile_counters(self, cycles_per_group=3.0, terms_per_group=8.0):
        """Counters of one tile running flat out for one second."""
        cycles = TABLE3.clock_mhz * 1e6  # one second of cycles
        pes = 64
        groups = pes * cycles / cycles_per_group
        counters = SimCounters(
            cycles=cycles,
            groups=groups,
            macs=groups * 8,
            lanes=LaneLedger(useful=pes * cycles * 8),  # lane-cycles
            terms=TermLedger(processed=groups * terms_per_group),
            exponent_invocations=groups,
            accumulator_updates=groups,
        )
        return counters

    def test_tile_power_matches_table3(self):
        """A tile at the paper's average activity (~3 cycles/group, ~8
        terms/group) must dissipate its measured 109.5 mW within a
        reasonable band."""
        model = EnergyModel()
        counters = self._busy_tile_counters()
        energy_nj = model.fpraker_core_energy(counters).total
        watts = energy_nj * 1e-9  # nJ over one second
        assert watts * 1e3 == pytest.approx(TABLE3.fpraker_tile_power, rel=0.35)

    def test_efficiency_improves_with_term_sparsity(self):
        """Fewer terms -> less compute energy for the same MACs."""
        model = EnergyModel()
        dense = model.fpraker_core_energy(
            self._busy_tile_counters(terms_per_group=20.0)
        ).total
        sparse = model.fpraker_core_energy(
            self._busy_tile_counters(terms_per_group=4.0)
        ).total
        assert sparse < dense

    def test_split_is_positive(self):
        model = EnergyModel()
        core = model.fpraker_core_energy(self._busy_tile_counters())
        assert core.compute > 0 and core.control > 0 and core.accumulation > 0


class TestMemoryEnergies:
    def test_on_chip(self):
        model = EnergyModel()
        assert model.on_chip_energy(1000.0) == pytest.approx(2.5)

    def test_off_chip(self):
        model = EnergyModel()
        # 1 kB at 4 pJ/bit = 32 nJ.
        assert model.off_chip_energy(1000.0) == pytest.approx(32.0)


class TestBreakdownContainer:
    def test_add(self):
        a = EnergyBreakdown(core=CoreEnergy(compute=1.0), on_chip=2.0)
        b = EnergyBreakdown(core=CoreEnergy(control=3.0), off_chip=4.0)
        a.add(b)
        assert a.total == 10.0
        assert a.core.total == 4.0
