"""Tests for the tile simulator: synchronization and conservation laws."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core.config import PEConfig, TileConfig
from repro.core.tile import TileSimulator, accumulator_exponents
from repro.fp.bfloat16 import bf16_quantize


def _strip(rng, rows=8, cols=8, steps=16, spread=4, zero_fraction=0.3):
    a = bf16_quantize(
        rng.normal(0, 1, (cols, steps, 8)) * 2.0 ** rng.integers(-spread, spread, (cols, steps, 8))
    )
    b = bf16_quantize(
        rng.normal(0, 1, (rows, steps, 8)) * 2.0 ** rng.integers(-spread, spread, (rows, steps, 8))
    )
    a[rng.random(a.shape) < zero_fraction] = 0.0
    return a, b


class TestAccumulatorExponents:
    def test_shape(self, rng):
        a, b = _strip(rng, steps=10)
        eacc = accumulator_exponents(a, b)
        assert eacc.shape == (8, 8, 10)

    def test_first_step_empty(self, rng):
        a, b = _strip(rng)
        eacc = accumulator_exponents(a, b)
        assert np.all(eacc[:, :, 0] < -(1 << 39))

    def test_tracks_running_sum(self, rng):
        a, b = _strip(rng, zero_fraction=0.0)
        eacc = accumulator_exponents(a, b)
        partial = np.einsum("csl,rsl->rcs", a, b)
        running = np.cumsum(partial, axis=2)
        for r in range(8):
            for c in range(8):
                for s in range(1, 10):
                    total = running[r, c, s - 1]
                    if total != 0.0:
                        expected = int(np.floor(np.log2(abs(total))))
                        assert eacc[r, c, s] == expected

    def test_warm_start_raises_exponent(self, rng):
        a, b = _strip(rng)
        cold = accumulator_exponents(a, b)
        warm = accumulator_exponents(a, b, np.full((8, 8), 1e6))
        assert warm[:, :, 0].min() >= 19  # log2(1e6) ~ 19.9
        assert np.all(warm[:, :, 0] > cold[:, :, 0])

    def test_batched_axis_matches_per_strip(self, rng):
        """A [strip, ...] stack evolves each strip independently."""
        a0, b0 = _strip(rng, steps=10)
        a1, b1 = _strip(rng, steps=10)
        a = np.stack([a0, a1])
        b = np.stack([b0, b1])
        init = rng.normal(0, 1e4, (2, 8, 8))
        batch = accumulator_exponents(a, b, init)
        assert batch.shape == (2, 8, 8, 10)
        for i in range(2):
            single = accumulator_exponents(a[i], b[i], init[i])
            assert np.array_equal(batch[i], single)


class TestTileSimulator:
    def test_shape_validation(self, rng):
        a, b = _strip(rng, rows=4)
        with pytest.raises(ValueError):
            TileSimulator(TileConfig(rows=8)).simulate_strip(a, b)

    def test_lane_cycle_conservation(self, rng):
        """Total lane-cycles must equal makespan x rows x cols x lanes."""
        for _ in range(10):
            a, b = _strip(rng)
            result = TileSimulator().simulate_strip(a, b)
            expected = result.makespan * 8 * 8 * 8
            assert result.counters.lanes.total() == pytest.approx(expected)

    def test_minimum_two_cycles_per_step(self, rng):
        """Exponent-block sharing floors every group at two cycles."""
        a = np.ones((8, 16, 8))
        b = np.ones((8, 16, 8))
        result = TileSimulator().simulate_strip(a, b)
        assert result.cycles_per_step >= 2.0

    def test_no_sharing_floor_is_one(self):
        config = TileConfig(pe=PEConfig(exponent_sharing=1))
        a = np.ones((8, 16, 8))
        b = np.ones((8, 16, 8))
        result = TileSimulator(config).simulate_strip(a, b)
        assert result.cycles_per_step < 2.0

    def test_macs_accounted(self, rng):
        a, b = _strip(rng, steps=12)
        result = TileSimulator().simulate_strip(a, b)
        assert result.counters.macs == 8 * 8 * 12 * 8
        assert result.counters.groups == 8 * 8 * 12

    def test_deeper_buffers_never_slower(self, rng):
        for _ in range(5):
            a, b = _strip(rng, spread=6)
            shallow = TileSimulator(TileConfig(buffer_depth=1)).simulate_strip(a, b)
            deep = TileSimulator(TileConfig(buffer_depth=8)).simulate_strip(a, b)
            assert deep.makespan <= shallow.makespan

    def test_sparser_serial_side_faster(self, rng):
        a, b = _strip(rng, zero_fraction=0.0)
        dense = TileSimulator().simulate_strip(a, b)
        a_sparse = a.copy()
        a_sparse[rng.random(a.shape) < 0.6] = 0.0
        sparse = TileSimulator().simulate_strip(bf16_quantize(a_sparse), b)
        assert sparse.makespan <= dense.makespan

    def test_ob_skipping_helps_or_equal(self, rng):
        a, b = _strip(rng, spread=8)
        with_ob = TileSimulator(TileConfig(pe=PEConfig(ob_skip=True)))
        without = TileSimulator(TileConfig(pe=PEConfig(ob_skip=False)))
        warm = np.full((8, 8), 1e4)
        r1 = with_ob.simulate_strip(a, b, warm)
        r0 = without.simulate_strip(a, b, warm)
        assert r1.makespan <= r0.makespan
        assert r1.counters.terms.ob_skipped > 0

    def test_nonstandard_geometry(self, rng):
        config = TileConfig(rows=4, cols=2)
        a, b = _strip(rng, rows=4, cols=2, steps=8)
        result = TileSimulator(config).simulate_strip(a, b)
        assert result.counters.groups == 4 * 2 * 8
        expected = result.makespan * 4 * 2 * 8
        assert result.counters.lanes.total() == pytest.approx(expected)

    def test_term_ledger_scales_with_rows(self, rng):
        """Every PE of a column processes the column's term stream."""
        a2, b2 = _strip(rng, rows=2, steps=8)
        config2 = TileConfig(rows=2)
        r2 = TileSimulator(config2).simulate_strip(a2, b2)
        a4 = a2.copy()
        b4 = np.concatenate([b2, b2], axis=0)
        config4 = TileConfig(rows=4)
        r4 = TileSimulator(config4).simulate_strip(a4, b4)
        # Identical B rows duplicated: twice the PEs process the exact
        # same terms.
        assert r4.counters.terms.processed == 2 * r2.counters.terms.processed

    def test_cycles_per_step(self, rng):
        a, b = _strip(rng, steps=20)
        result = TileSimulator().simulate_strip(a, b)
        assert result.cycles_per_step == result.makespan / 20
