"""Tests for the FPRaker PE functional model (bit-faithful arithmetic)."""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.fp.accumulator import (
    AccumulatorSpec,
    ExtendedAccumulator,
    exact_product,
)
from repro.fp.bfloat16 import bf16_quantize


def _reference(a, b, spec=None):
    acc = ExtendedAccumulator(spec)
    acc.accumulate([exact_product(x, y) for x, y in zip(a, b)])
    return acc.value()


class TestExactness:
    def test_matches_reference_without_ob(self, rng):
        """With OB skipping off, the PE is bit-identical to the golden
        accumulator on every group."""
        pe = FPRakerPE(PEConfig(ob_skip=False))
        for _ in range(300):
            a = bf16_quantize(rng.normal(0, 2, 8))
            b = bf16_quantize(rng.normal(0, 2, 8))
            pe.reset()
            pe.process_group(a, b)
            assert pe.value() == _reference(a, b)

    def test_matches_reference_with_zeros(self, rng):
        pe = FPRakerPE(PEConfig(ob_skip=False))
        for _ in range(200):
            a = bf16_quantize(rng.normal(0, 2, 8))
            b = bf16_quantize(rng.normal(0, 2, 8))
            a[rng.random(8) < 0.4] = 0.0
            b[rng.random(8) < 0.4] = 0.0
            pe.reset()
            pe.process_group(a, b)
            assert pe.value() == _reference(a, b)

    def test_matches_reference_wide_exponents(self, rng):
        pe = FPRakerPE(PEConfig(ob_skip=False))
        for _ in range(200):
            a = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-30, 30, 8))
            b = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-30, 30, 8))
            pe.reset()
            pe.process_group(a, b)
            assert pe.value() == _reference(a, b)

    def test_ob_skipping_error_bounded(self, rng):
        """OB skipping may only drop terms beyond the accumulator's
        reach: the result differs from the reference by at most a few
        grid units of the round."""
        spec = AccumulatorSpec()
        for _ in range(300):
            a = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-8, 8, 8))
            b = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-8, 8, 8))
            pe = FPRakerPE(PEConfig(ob_skip=True))
            pe.process_group(a, b)
            reference = _reference(a, b)
            products = [x * y for x, y in zip(a, b) if x * y != 0.0]
            if not products:
                assert pe.value() == reference
                continue
            emax = int(np.floor(np.log2(max(abs(p) for p in products)))) + 1
            grid = 2.0 ** (emax - spec.frac_bits)
            # Each lane's dropped tail is under ~2 grid units.
            assert abs(pe.value() - reference) <= 16 * grid

    def test_ob_agrees_when_nothing_skippable(self, rng):
        """Same-magnitude operands leave nothing out of bounds."""
        for _ in range(100):
            a = bf16_quantize(rng.uniform(1.0, 2.0, 8))
            b = bf16_quantize(rng.uniform(1.0, 2.0, 8))
            pe = FPRakerPE(PEConfig(ob_skip=True))
            trace = pe.process_group(a, b)
            assert trace.terms_ob_skipped == 0
            assert pe.value() == _reference(a, b)


class TestAccumulationAcrossGroups:
    def test_multi_group_reduction(self, rng):
        pe = FPRakerPE(PEConfig(ob_skip=False))
        ref = ExtendedAccumulator()
        a = bf16_quantize(rng.normal(0, 1, 64))
        b = bf16_quantize(rng.normal(0, 1, 64))
        for i in range(0, 64, 8):
            pe.process_group(a[i : i + 8], b[i : i + 8])
            ref.accumulate(
                [exact_product(x, y) for x, y in zip(a[i : i + 8], b[i : i + 8])]
            )
            assert pe.value() == ref.value()

    def test_read_bf16(self):
        pe = FPRakerPE()
        pe.process_group([1.5], [2.0])
        assert pe.read_bf16() == 3.0


class TestWorkAccounting:
    def test_zero_serial_operand_has_no_terms(self):
        pe = FPRakerPE()
        trace = pe.process_group([0.0] * 8, [1.0] * 8)
        assert trace.terms_processed == 0
        assert trace.terms_zero_skipped == 64
        assert trace.cycles == 1

    def test_zero_parallel_operand_still_consumes_terms_without_ob(self):
        pe = FPRakerPE(PEConfig(ob_skip=False))
        trace = pe.process_group([1.0] * 8, [0.0] * 8)
        assert trace.terms_processed == 8  # one term per A value
        assert pe.value() == 0.0

    def test_zero_parallel_operand_ob_skips(self):
        """With OB on, a zero B drives the product exponent to the
        floor, so every term of that lane is out of bounds."""
        pe = FPRakerPE(PEConfig(ob_skip=True))
        trace = pe.process_group([1.0, 1.0], [0.0, 1.0])
        assert trace.terms_ob_skipped >= 1
        assert pe.value() == 1.0

    def test_zero_pair_never_wins_round_exponent(self):
        """Regression: a 0 x large pair reads -127 + 14 = -113 at the
        exponent adders, which used to beat a genuinely tiny live
        product (2^-126) and push it off the accumulator grid."""
        tiny = 1.1754943508222875e-38  # 2^-126
        pe = FPRakerPE(PEConfig(ob_skip=False))
        trace = pe.process_group([0.0, 1.0], [16384.0, tiny])
        assert pe.value() == tiny
        assert trace.emax == -126

    def test_dead_lane_offsets_clamp_at_round_base(self):
        """A zero-product lane sitting above the masked round MAX gets
        its (unsigned) shift distance clamped at 0 rather than going
        negative: it fires with the base round and cannot stall the
        live lanes or set a bogus schedule base."""
        tiny = 2.0**-126
        pe = FPRakerPE(PEConfig(ob_skip=True))
        trace = pe.process_group([tiny, 2.0**14], [tiny, 0.0])
        assert trace.emax == -252  # the live lane's product exponent
        assert trace.cycles == 1
        assert trace.lane_shift == [0, 0]
        assert trace.terms_ob_skipped == 0

    def test_term_conservation(self, rng):
        for _ in range(100):
            a = bf16_quantize(rng.normal(0, 2, 8))
            a[rng.random(8) < 0.3] = 0.0
            b = bf16_quantize(rng.normal(0, 2, 8))
            pe = FPRakerPE()
            trace = pe.process_group(a, b)
            total = (
                trace.terms_processed
                + trace.terms_zero_skipped
                + trace.terms_ob_skipped
            )
            assert total == 8 * 8  # TERM_SLOTS per lane

    def test_lane_cycle_conservation(self, rng):
        for _ in range(100):
            a = bf16_quantize(rng.normal(0, 2, 8))
            b = bf16_quantize(rng.normal(0, 2, 8))
            pe = FPRakerPE()
            trace = pe.process_group(a, b)
            for lane in range(8):
                busy = (
                    trace.lane_useful[lane]
                    + trace.lane_shift[lane]
                    + trace.lane_no_term[lane]
                )
                assert busy == trace.cycles

    def test_useful_equals_terms_processed(self, rng):
        for _ in range(100):
            a = bf16_quantize(rng.normal(0, 2, 8))
            b = bf16_quantize(rng.normal(0, 2, 8))
            pe = FPRakerPE()
            trace = pe.process_group(a, b)
            assert sum(trace.lane_useful) == trace.terms_processed


class TestValidation:
    def test_lane_count_mismatch(self):
        pe = FPRakerPE()
        with pytest.raises(ValueError):
            pe.process_group([1.0, 2.0], [1.0])

    def test_too_many_lanes(self):
        pe = FPRakerPE()
        with pytest.raises(ValueError):
            pe.process_group([1.0] * 9, [1.0] * 9)

    def test_partial_group_allowed(self):
        pe = FPRakerPE()
        pe.process_group([1.0, 2.0], [3.0, 4.0])
        assert pe.value() == 11.0


class TestShiftWindowTiming:
    def test_tight_values_fast(self):
        """Identical operands fire all lanes together: cycles = terms."""
        pe = FPRakerPE()
        trace = pe.process_group([1.0] * 8, [1.0] * 8)
        assert trace.cycles == 1  # single term, all lanes in one round

    def test_spread_values_slow(self):
        """Exponent spread beyond the window serializes base rounds."""
        a = [1.0, 2.0**6, 1.0, 2.0**6, 1.0, 2.0**6, 1.0, 2.0**6]
        pe = FPRakerPE()
        trace = pe.process_group(a, [1.0] * 8)
        assert trace.cycles >= 2
        assert sum(trace.lane_shift) > 0

    def test_wider_window_never_slower(self, rng):
        for _ in range(50):
            a = bf16_quantize(rng.normal(0, 4, 8))
            b = bf16_quantize(rng.normal(0, 4, 8))
            narrow = FPRakerPE(PEConfig(shift_window=1)).process_group(a, b)
            wide = FPRakerPE(PEConfig(shift_window=8)).process_group(a, b)
            assert wide.cycles <= narrow.cycles

    def test_ob_never_slower(self, rng):
        for _ in range(100):
            a = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-6, 6, 8))
            b = bf16_quantize(rng.normal(0, 1, 8) * 2.0 ** rng.integers(-6, 6, 8))
            with_ob = FPRakerPE(PEConfig(ob_skip=True)).process_group(a, b)
            without = FPRakerPE(PEConfig(ob_skip=False)).process_group(a, b)
            assert with_ob.cycles <= without.cycles
