"""Tests for configuration objects and statistic ledgers."""

import pytest

from repro.core.config import (
    AcceleratorConfig,
    PEConfig,
    TileConfig,
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.core.stats import LaneLedger, SimCounters, TermLedger


class TestPaperConfigs:
    def test_fpraker_table2(self):
        config = fpraker_paper_config()
        assert config.tiles == 36
        assert config.total_pes == 2304
        assert config.tile.pe.lanes == 8
        assert config.tile.pe.shift_window == 3
        assert config.tile.pe.accumulator.frac_bits == 12
        assert config.clock_mhz == 600.0

    def test_baseline_table2(self):
        config = baseline_paper_config()
        assert config.tiles == 8
        assert config.total_pes == 512
        assert config.peak_macs_per_cycle == 4096
        assert not config.base_delta_compression

    def test_pragmatic_iso_area(self):
        config = pragmatic_paper_config()
        assert config.tiles == 20
        assert not config.tile.pe.ob_skip
        assert config.tile.pe.exponent_sharing == 1

    def test_overrides(self):
        config = fpraker_paper_config(tiles=4)
        assert config.tiles == 4

    def test_min_group_cycles(self):
        assert PEConfig(exponent_sharing=2).min_group_cycles == 2
        assert PEConfig(exponent_sharing=1).min_group_cycles == 1

    def test_tile_helpers(self):
        tile = TileConfig(rows=4, cols=2)
        assert tile.pes == 8
        assert tile.macs_per_group_step == 64


class TestLaneLedger:
    def test_total_and_fractions(self):
        ledger = LaneLedger(useful=6, no_term=2, shift_range=1, inter_pe=1)
        assert ledger.total() == 10
        fractions = ledger.fractions()
        assert fractions["useful"] == 0.6
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert all(v == 0.0 for v in LaneLedger().fractions().values())

    def test_add_with_weight(self):
        a = LaneLedger(useful=1.0, exponent=2.0)
        b = LaneLedger(useful=3.0)
        a.add(b, weight=2.0)
        assert a.useful == 7.0
        assert a.exponent == 2.0

    def test_utilization(self):
        assert LaneLedger(useful=3, no_term=1).utilization() == 0.75


class TestTermLedger:
    def test_skipped_fraction(self):
        terms = TermLedger(processed=2, zero_skipped=5, ob_skipped=1)
        assert terms.total_slots() == 8
        assert terms.skipped_fraction() == 0.75
        assert terms.ob_share_of_skipped() == pytest.approx(1 / 6)

    def test_empty(self):
        assert TermLedger().skipped_fraction() == 0.0
        assert TermLedger().ob_share_of_skipped() == 0.0


class TestSimCounters:
    def test_add_scales_everything(self):
        a = SimCounters(cycles=10, groups=5, macs=40)
        a.lanes.useful = 100
        a.terms.processed = 50
        b = SimCounters(cycles=1, groups=1, macs=8)
        b.lanes.useful = 10
        b.terms.processed = 5
        a.add(b, weight=3.0)
        assert a.cycles == 13
        assert a.macs == 64
        assert a.lanes.useful == 130
        assert a.terms.processed == 65
