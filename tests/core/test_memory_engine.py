"""Cross-engine conformance: hierarchy vs roofline memory pricing.

The contract of ``memory_engine="hierarchy"``: the compute side of the
simulation (cycles, lane/term ledgers, group counts) is bit-identical to
the roofline reference, the memory-bound cycles are never *below* the
roofline's (container padding only adds bytes), and results from either
engine survive the session's JSON persistence byte for byte.
"""

import json

import pytest

from repro.core.accelerator import AcceleratorSimulator, WorkloadResult
from repro.harness.runner import SimRequest, SimulationSession
from repro.memory.dram import DRAMModel
from repro.memory.traffic import phase_traffic
from repro.models.zoo import STUDIED_MODELS
from repro.traces.workloads import build_workloads

# Reduced sampling keeps each cold simulation fast; conformance is
# exact at any sampling level because both engines consume the same
# operand draw.
QUICK = dict(sample_strips=2, sample_steps=8)

# One pure-fc, one mixed, and one all-conv geometry.
MODELS = ("NCF", "SNLI", "SqueezeNet 1.1")


def _counters_sans_memory(counters) -> dict:
    data = counters.to_dict()
    data.pop("memory", None)
    return data


def _pair(model):
    workloads = build_workloads(model, progress=0.5, seed=0)
    roof = AcceleratorSimulator(**QUICK).simulate_workload(workloads)
    hier = AcceleratorSimulator(
        **QUICK, memory_engine="hierarchy"
    ).simulate_workload(workloads)
    return roof, hier


class TestCrossEngineConformance:
    @pytest.mark.parametrize("model", MODELS)
    def test_compute_identical_memory_at_least_roofline(self, model):
        roof, hier = _pair(model)
        assert len(roof.phases) == len(hier.phases)
        for pr, ph in zip(roof.phases, hier.phases):
            # Compute side: bit-identical.
            assert ph.compute_cycles == pr.compute_cycles
            assert ph.serial_tensor == pr.serial_tensor
            assert _counters_sans_memory(ph.counters) == _counters_sans_memory(
                pr.counters
            )
            # Memory side: event-level, never below the roofline.
            assert pr.counters.memory is None
            assert ph.counters.memory is not None
            assert ph.dram_cycles >= pr.dram_cycles
            assert ph.cycles == max(ph.compute_cycles, ph.dram_cycles)

    def test_hierarchy_counters_populated_for_conv_geometry(self):
        _, hier = _pair("SqueezeNet 1.1")
        memory = hier.counters_total().memory
        assert memory.containers > 0
        assert memory.dram_cycles > 0
        assert memory.bank_cycles > 0
        # Misaligned conv channel strides collide in the banks, and the
        # backward passes route weights/gradients through the
        # transposers -- both visible in the new stall counters.
        assert memory.bank_conflict_cycles > 0
        assert memory.transposer_cycles > 0
        assert memory.scratchpad_bytes > 0

    def test_zoo_wide_traffic_dominates_roofline(self):
        """Pure traffic pricing across every studied model's geometry."""
        dram = DRAMModel()
        for model in STUDIED_MODELS:
            for workload in build_workloads(model, progress=0.5, seed=0):
                traffic = phase_traffic(workload, dram=dram, clock_mhz=600.0)
                roofline = dram.transfer_cycles(workload.total_bytes, 600.0)
                assert traffic.dram_cycles >= roofline
                assert traffic.memory_cycles >= traffic.dram_cycles
                assert traffic.bank_conflict_cycles >= 0.0


class TestEngineValidation:
    def test_simulator_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            AcceleratorSimulator(memory_engine="bogus")

    def test_session_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            SimulationSession(memory_engine="bogus")

    def test_engines_get_distinct_canonical_keys(self):
        request = SimRequest.make("NCF")
        roof = SimulationSession(**QUICK)
        hier = SimulationSession(**QUICK, memory_engine="hierarchy")
        assert roof.key_of(request) != hier.key_of(request)

    def test_baseline_keys_shared_across_engines(self):
        """The analytic baseline is engine-independent: both engines
        must reuse one cached baseline instead of re-simulating."""
        from repro.core.config import baseline_paper_config

        request = SimRequest.make("NCF", baseline_paper_config())
        roof = SimulationSession(**QUICK)
        hier = SimulationSession(**QUICK, memory_engine="hierarchy")
        assert roof.key_of(request) == hier.key_of(request)


class TestSessionRoundTrip:
    @pytest.mark.parametrize("engine", ("roofline", "hierarchy"))
    def test_cached_results_round_trip_byte_identically(self, tmp_path, engine):
        session = SimulationSession(
            cache_dir=tmp_path, memory_engine=engine, **QUICK
        )
        result = session.simulate("NCF")
        key = session.key_of(SimRequest.make("NCF"))
        path = session.disk.path_for(key)
        raw = path.read_bytes()

        fresh = SimulationSession(
            cache_dir=tmp_path, memory_engine=engine, **QUICK
        )
        again = fresh.simulate("NCF")
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.simulations == 0
        assert again.to_dict() == result.to_dict()
        # Re-persisting the loaded result rewrites the same bytes.
        fresh.disk.store(key, again)
        assert path.read_bytes() == raw

    @pytest.mark.parametrize("engine", ("roofline", "hierarchy"))
    def test_workload_result_json_round_trip_exact(self, engine):
        workloads = build_workloads("NCF", progress=0.5, seed=0)
        result = AcceleratorSimulator(
            **QUICK, memory_engine=engine
        ).simulate_workload(workloads)
        back = WorkloadResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.to_dict() == result.to_dict()
        if engine == "hierarchy":
            restored = back.counters_total().memory
            original = result.counters_total().memory
            assert restored.to_dict() == original.to_dict()
