"""Integration tests for the accelerator-level simulators."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core.accelerator import (
    AcceleratorSimulator,
    choose_serial_side,
    _sample_runs,
    _sample_column_runs,
)
from repro.core.baseline import BaselineAccelerator
from repro.core.config import (
    baseline_paper_config,
    fpraker_paper_config,
    pragmatic_paper_config,
)
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.core.workload import PhaseWorkload
from repro.fp.bfloat16 import bf16_quantize


def _workload(rng, macs=8_000_000, reduction=512, sparsity=0.4, bytes_=1e6):
    values_a = bf16_quantize(rng.normal(0, 1, 4096))
    values_a[rng.random(4096) < sparsity] = 0.0
    values_b = bf16_quantize(rng.normal(0, 1, 4096))
    return PhaseWorkload(
        model="test",
        layer="layer0",
        phase="AxW",
        macs=macs,
        reduction=reduction,
        tensor_a="A",
        tensor_b="W",
        values_a=values_a,
        values_b=values_b,
        input_bytes=bytes_,
        output_bytes=bytes_ / 4,
    )


class TestPhaseWorkload:
    def test_phase_validation(self, rng):
        with pytest.raises(ValueError):
            PhaseWorkload(
                model="m", layer="l", phase="XxY", macs=1, reduction=1,
                tensor_a="A", tensor_b="W",
                values_a=np.ones(4), values_b=np.ones(4),
            )

    def test_macs_validation(self, rng):
        with pytest.raises(ValueError):
            PhaseWorkload(
                model="m", layer="l", phase="AxW", macs=0, reduction=1,
                tensor_a="A", tensor_b="W",
                values_a=np.ones(4), values_b=np.ones(4),
            )


class TestSerialSideSelection:
    def test_auto_picks_fewer_terms(self, rng):
        sparse = np.zeros(256)
        sparse[:16] = 1.0
        dense = bf16_quantize(rng.normal(0, 1, 256))
        workload = _workload(rng)
        workload.values_a = sparse
        workload.values_b = dense
        serial, parallel, name = choose_serial_side(workload, "auto")
        assert name == "A"
        workload.values_a, workload.values_b = dense, sparse
        _, _, name = choose_serial_side(workload, "auto")
        assert name == "W"

    def test_forced_sides(self, rng):
        workload = _workload(rng)
        assert choose_serial_side(workload, "a")[2] == "A"
        assert choose_serial_side(workload, "b")[2] == "W"

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            choose_serial_side(_workload(rng), "c")


class TestSamplers:
    def test_runs_are_contiguous(self, rng):
        values = np.arange(1000, dtype=np.float64)
        runs = _sample_runs(values, (5, 7), 8, rng)
        assert runs.shape == (5, 7, 8)
        diffs = np.diff(runs, axis=-1)
        assert np.all(diffs == 1.0)

    def test_column_runs_strided(self, rng):
        values = np.arange(1000, dtype=np.float64)
        runs = _sample_column_runs(values, 8, 5, 8, rng)
        assert runs.shape == (8, 5, 8)
        # Adjacent columns offset by the stride at every step.
        assert np.all(runs[1] - runs[0] == 2.0)

    def test_small_value_pool_tiled(self, rng):
        values = np.array([1.0, 2.0])
        runs = _sample_runs(values, (3,), 8, rng)
        assert runs.shape == (3, 8)

    def test_empty_stream_yields_zero_runs(self, rng):
        """Regression: an empty stream used to crash rng.integers (tiling
        cannot grow a zero-size array, so high stayed non-positive)."""
        runs = _sample_runs(np.array([]), (3, 4), 8, rng)
        assert runs.shape == (3, 4, 8)
        assert np.all(runs == 0.0)

    def test_empty_stream_yields_zero_column_runs(self, rng):
        runs = _sample_column_runs(np.array([]), 8, 5, 8, rng)
        assert runs.shape == (8, 5, 8)
        assert np.all(runs == 0.0)

    def test_single_value_pool_column_runs(self, rng):
        """A pool smaller than the column span tiles up cleanly."""
        runs = _sample_column_runs(np.array([3.0]), 8, 5, 8, rng)
        assert runs.shape == (8, 5, 8)
        assert np.all(runs == 3.0)


class TestAcceleratorSimulator:
    def test_deterministic(self, rng):
        workload = _workload(rng)
        r1 = AcceleratorSimulator(seed=5).simulate_phase(workload)
        r2 = AcceleratorSimulator(seed=5).simulate_phase(workload)
        assert r1.cycles == r2.cycles
        assert r1.counters.terms.processed == r2.counters.terms.processed

    def test_seed_changes_sampling(self, rng):
        workload = _workload(rng)
        r1 = AcceleratorSimulator(seed=5).simulate_phase(workload)
        r2 = AcceleratorSimulator(seed=6).simulate_phase(workload)
        assert r1.compute_cycles != r2.compute_cycles  # strips differ

    def test_counters_scaled_to_macs(self, rng):
        workload = _workload(rng)
        result = AcceleratorSimulator().simulate_phase(workload)
        assert result.counters.macs == pytest.approx(workload.macs)
        assert result.counters.groups == pytest.approx(workload.macs / 8)

    def test_compute_cycles_scaling(self, rng):
        """Twice the MACs costs twice the compute cycles."""
        w1 = _workload(rng, macs=4_000_000)
        w2 = _workload(rng, macs=8_000_000)
        sim = AcceleratorSimulator()
        r1, r2 = sim.simulate_phase(w1), sim.simulate_phase(w2)
        assert r2.compute_cycles == pytest.approx(2 * r1.compute_cycles, rel=0.05)

    def test_dram_roofline_binds(self, rng):
        heavy = _workload(rng, macs=1_000_000, bytes_=1e9)
        result = AcceleratorSimulator().simulate_phase(heavy)
        assert result.cycles == result.dram_cycles
        assert result.dram_cycles > result.compute_cycles

    def test_bdc_reduces_traffic(self, rng):
        workload = _workload(rng, bytes_=1e8)
        with_bdc = AcceleratorSimulator(fpraker_paper_config())
        without = AcceleratorSimulator(
            replace(fpraker_paper_config(), base_delta_compression=False)
        )
        r1 = with_bdc.simulate_phase(workload)
        r0 = without.simulate_phase(workload)
        assert r1.dram_bytes < r0.dram_bytes
        assert r0.dram_bytes == workload.total_bytes

    def test_narrow_accumulator_override_speeds_up(self, rng):
        workload = _workload(rng)
        narrow = replace(workload) if False else workload
        base = AcceleratorSimulator().simulate_phase(workload)
        workload.acc_frac_bits = 5
        profiled = AcceleratorSimulator().simulate_phase(workload)
        workload.acc_frac_bits = None
        assert profiled.compute_cycles <= base.compute_cycles

    def test_workload_result_aggregation(self, rng):
        workloads = [_workload(rng), _workload(rng, macs=2_000_000)]
        workloads[1].phase = "GxW"
        result = AcceleratorSimulator().simulate_workload(workloads)
        assert result.macs == 10_000_000
        assert result.cycles == pytest.approx(
            sum(p.cycles for p in result.phases)
        )
        assert result.cycles_of_phase("GxW") == result.phases[1].cycles
        assert result.macs_of_phase("AxW") == 8_000_000

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSimulator().simulate_workload([])

    def test_energy_positive(self, rng):
        result = AcceleratorSimulator().simulate_phase(_workload(rng))
        assert result.energy.core.total > 0
        assert result.energy.on_chip > 0
        assert result.energy.off_chip > 0

    def test_empty_value_streams_simulate(self, rng):
        """Regression: a fully-sparse/empty tensor workload used to
        crash deep in the run samplers; it must yield a well-defined
        all-idle result instead."""
        workload = _workload(rng)
        workload.values_a = np.array([])
        workload.values_b = np.array([])
        result = AcceleratorSimulator(
            sample_strips=2, sample_steps=8
        ).simulate_phase(workload)
        assert np.isfinite(result.cycles) and result.cycles > 0
        assert result.counters.lanes.useful == 0.0
        assert result.counters.terms.processed == 0.0

    def test_all_zero_value_streams_simulate(self, rng):
        workload = _workload(rng)
        workload.values_a = np.zeros(4096)
        workload.values_b = np.zeros(4096)
        result = AcceleratorSimulator(
            sample_strips=2, sample_steps=8
        ).simulate_phase(workload)
        assert np.isfinite(result.cycles) and result.cycles > 0
        assert result.counters.terms.processed == 0.0


class TestBaselineAccelerator:
    def test_compute_is_macs_over_peak(self, rng):
        workload = _workload(rng, bytes_=0.0)
        config = baseline_paper_config()
        result = BaselineAccelerator(config).simulate_phase(workload)
        assert result.compute_cycles == workload.macs / config.peak_macs_per_cycle

    def test_value_independent(self, rng):
        w1 = _workload(rng, sparsity=0.0)
        w2 = _workload(rng, sparsity=0.9)
        sim = BaselineAccelerator()
        assert sim.simulate_phase(w1).cycles == sim.simulate_phase(w2).cycles

    def test_lanes_always_useful(self, rng):
        result = BaselineAccelerator().simulate_phase(_workload(rng))
        assert result.counters.lanes.utilization() == 1.0

    def test_no_compression(self, rng):
        workload = _workload(rng, bytes_=1e8)
        result = BaselineAccelerator().simulate_phase(workload)
        assert result.dram_bytes == workload.total_bytes


class TestSpeedupRelations:
    def test_fpraker_beats_baseline_on_sparse_work(self, rng):
        workload = _workload(rng, sparsity=0.7, bytes_=0.0)
        fpr = AcceleratorSimulator().simulate_workload([workload])
        base = BaselineAccelerator().simulate_workload([workload])
        assert fpr.speedup_vs(base) > 1.0

    def test_pragmatic_slower_than_fpraker(self, rng):
        workload = _workload(rng, sparsity=0.3, bytes_=0.0)
        fpr = AcceleratorSimulator().simulate_workload([workload])
        prag = PragmaticFPAccelerator().simulate_workload([workload])
        assert fpr.cycles < prag.cycles

    def test_speedup_symmetry(self, rng):
        workload = _workload(rng)
        fpr = AcceleratorSimulator().simulate_workload([workload])
        base = BaselineAccelerator().simulate_workload([workload])
        assert fpr.speedup_vs(base) == pytest.approx(
            1.0 / base.speedup_vs(fpr)
        )
