"""Compacting schedule loop vs the plain reference loop.

The compact loop gained a closed-form fast path (groups whose live
offsets span at most one shift window) and an int16 mode; both must
stay bit-identical to `schedule_from_weights` for arbitrary slot
contents -- including non-ascending offsets, which the column-merged
tile schedule genuinely produces when the binding row changes between
slots.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PEConfig
from repro.core.schedule import (
    _K_SENTINEL,
    _K_SENTINEL16,
    schedule_from_weights,
    schedule_from_weights_compact,
)

_FIELDS = ("cycles", "useful", "shift_stall", "no_term")


def _random_case(seed, groups, lanes, n_terms, kmax):
    rng = np.random.default_rng(seed)
    count = rng.integers(0, n_terms + 1, (groups, lanes))
    # Deliberately unsorted within the live prefix.
    k = rng.integers(0, kmax, (groups, lanes, n_terms))
    slot = np.arange(n_terms)
    k = np.where(slot < count[:, :, None], k, _K_SENTINEL)
    zero = np.zeros((groups, lanes), dtype=np.int64)
    return k, count, zero


class TestCompactEqualsReference:
    @settings(max_examples=120, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        groups=st.integers(1, 12),
        lanes=st.integers(1, 8),
        n_terms=st.integers(1, 5),
        kmax=st.sampled_from([2, 6, 14, 40]),
        window=st.integers(1, 8),
    )
    def test_property(self, seed, groups, lanes, n_terms, kmax, window):
        k, kept, zero = _random_case(seed, groups, lanes, n_terms, kmax)
        config = PEConfig(shift_window=window)
        ref = schedule_from_weights(k.copy(), kept.copy(), zero, zero, config)
        got = schedule_from_weights_compact(
            k.copy(), kept.copy(), zero, zero, config
        )
        for field in _FIELDS:
            assert (getattr(got, field) == getattr(ref, field)).all(), field

    def test_int16_inputs(self):
        """The batched tile engine hands the loop int16 offsets."""
        k, kept, zero = _random_case(3, 40, 8, 5, 14)
        k16 = np.where(k >= _K_SENTINEL, np.int64(_K_SENTINEL16), k).astype(
            np.int16
        )
        config = PEConfig(shift_window=3)
        ref = schedule_from_weights(k, kept, zero, zero, config)
        got = schedule_from_weights_compact(k16, kept, zero, zero, config)
        for field in _FIELDS:
            assert (getattr(got, field) == getattr(ref, field)).all(), field

    def test_all_fast_path(self):
        """Every group inside one window: pure closed form."""
        k, kept, zero = _random_case(5, 30, 4, 3, 2)
        config = PEConfig(shift_window=8)
        ref = schedule_from_weights(k.copy(), kept.copy(), zero, zero, config)
        got = schedule_from_weights_compact(
            k.copy(), kept.copy(), zero, zero, config
        )
        for field in _FIELDS:
            assert (getattr(got, field) == getattr(ref, field)).all(), field
        assert (got.cycles == kept.max(axis=1).clip(min=1)).all()

    def test_all_empty_groups(self):
        k = np.full((6, 4, 3), _K_SENTINEL)
        kept = np.zeros((6, 4), dtype=np.int64)
        zero = np.zeros((6, 4), dtype=np.int64)
        got = schedule_from_weights_compact(k, kept, zero, zero, PEConfig())
        assert (got.cycles == 1).all()
        assert (got.no_term == 1).all()
        assert (got.useful == 0).all()
