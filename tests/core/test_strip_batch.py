"""Batched strip engine vs the serial reference: bit-exact equivalence.

`TileSimulator.simulate_strips` re-derives the column schedule through
monotone reductions over the per-PE alignment base (and runs them in
int16), so nothing about its implementation is shared with the per-strip
reference beyond the cycle-loop semantics.  These tests pin the required
contract: for every geometry, buffer depth, PE configuration, and
operand stream -- including degenerate all-zero ones -- the batch result
is bit-identical to looping `simulate_strip`, mirroring how the
vectorized schedule is pinned against the scalar PE.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import AcceleratorSimulator
from repro.core.config import PEConfig, TileConfig
from repro.core.pragmatic import PragmaticFPAccelerator
from repro.core.tile import TileSimulator
from repro.core.workload import PhaseWorkload
from repro.fp.accumulator import AccumulatorSpec
from repro.fp.bfloat16 import bf16_quantize


def _strip_stack(seed, strips, rows, cols, steps, spread, zero_fraction):
    """Random bfloat16 operand stacks with controlled sparsity."""
    rng = np.random.default_rng(seed)
    a = bf16_quantize(
        rng.normal(0, 1, (strips, cols, steps, 8))
        * 2.0 ** rng.integers(-spread, spread + 1, (strips, cols, steps, 8))
    )
    b = bf16_quantize(
        rng.normal(0, 1, (strips, rows, steps, 8))
        * 2.0 ** rng.integers(-spread, spread + 1, (strips, rows, steps, 8))
    )
    a[rng.random(a.shape) < zero_fraction] = 0.0
    b[rng.random(b.shape) < zero_fraction / 2] = 0.0
    return a, b, rng


def _assert_batch_matches_serial(config, a, b, initial_sums):
    """The core contract: batch entry i == simulate_strip of strip i."""
    sim = TileSimulator(config)
    batch = sim.simulate_strips(a, b, initial_sums)
    assert batch.strips == a.shape[0]
    assert batch.steps == a.shape[2]
    for i in range(a.shape[0]):
        ref = sim.simulate_strip(
            a[i], b[i], None if initial_sums is None else initial_sums[i]
        )
        got = batch.strip_result(i)
        assert got.makespan == ref.makespan
        assert got.steps == ref.steps
        # SimCounters is a plain dataclass tree: == is field-exact.
        assert got.counters == ref.counters
    assert batch.makespan == sum(
        int(m) for m in batch.makespans
    )


class TestBatchedEqualsSerial:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        strips=st.integers(1, 6),
        rows=st.sampled_from([1, 2, 4, 8]),
        cols=st.sampled_from([1, 2, 4, 8]),
        steps=st.integers(1, 24),
        depth=st.integers(1, 8),
        spread=st.integers(0, 8),
        zero_fraction=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        warm=st.sampled_from([None, 1.0, 1e4, 1e8]),
        ob_skip=st.booleans(),
        window=st.integers(1, 8),
    )
    def test_property(
        self,
        seed,
        strips,
        rows,
        cols,
        steps,
        depth,
        spread,
        zero_fraction,
        warm,
        ob_skip,
        window,
    ):
        """Random geometries, depths, streams (incl. all-zero), warm
        starts, and PE variants: batched == serial, bit for bit."""
        config = TileConfig(
            rows=rows,
            cols=cols,
            buffer_depth=depth,
            pe=PEConfig(ob_skip=ob_skip, shift_window=window),
        )
        a, b, rng = _strip_stack(
            seed, strips, rows, cols, steps, spread, zero_fraction
        )
        if warm is None:
            initial = None
        else:
            initial = rng.normal(0, warm, (strips, rows, cols))
        _assert_batch_matches_serial(config, a, b, initial)

    def test_all_zero_streams(self):
        """Fully zero operands: every strip is pure exponent cycles."""
        a = np.zeros((3, 8, 5, 8))
        b = np.zeros((3, 8, 5, 8))
        _assert_batch_matches_serial(TileConfig(), a, b, None)
        sim = TileSimulator()
        batch = sim.simulate_strips(a, b)
        assert all(c.terms.processed == 0.0 for c in batch.counters)

    def test_wide_datapath_config(self):
        """Pragmatic-FP style PEs (no OB skip, unsaturated shifts)."""
        a, b, _ = _strip_stack(5, 4, 8, 8, 12, 8, 0.2)
        config = TileConfig(
            pe=PEConfig(ob_skip=False, saturate_shifts=False)
        )
        _assert_batch_matches_serial(config, a, b, None)

    def test_narrow_accumulator_config(self):
        a, b, rng = _strip_stack(9, 4, 8, 8, 12, 6, 0.3)
        config = TileConfig(
            pe=PEConfig(accumulator=AccumulatorSpec(frac_bits=5))
        )
        initial = rng.normal(0, 1e6, (4, 8, 8))
        _assert_batch_matches_serial(config, a, b, initial)

    def test_counters_total_matches_serial_accumulation(self):
        a, b, _ = _strip_stack(1, 5, 8, 8, 10, 5, 0.4)
        sim = TileSimulator()
        batch = sim.simulate_strips(a, b)
        total = batch.counters_total()
        assert total.groups == 5 * 8 * 8 * 10
        assert total.cycles == float(batch.makespan)

    def test_shape_validation(self):
        sim = TileSimulator()
        with pytest.raises(ValueError):
            sim.simulate_strips(np.zeros((2, 8, 4, 8)), np.zeros((8, 4, 8)))
        with pytest.raises(ValueError):
            sim.simulate_strips(np.zeros((2, 4, 4, 8)), np.zeros((2, 8, 4, 8)))
        with pytest.raises(ValueError):
            sim.simulate_strips(np.zeros((2, 8, 4, 8)), np.zeros((3, 8, 4, 8)))
        with pytest.raises(ValueError):
            sim.simulate_strips(np.zeros((0, 8, 4, 8)), np.zeros((0, 8, 4, 8)))


class TestLoopFreeStripSchedule:
    """The loop-free column schedule vs the serial `_schedule_columns`.

    `_schedule_strip_columns` derives the firing offsets through a
    masked max-reduction over the row axis (no Python row loop) on
    int16 bit-extracted operand fields; these tests pin it directly --
    schedule arrays, not just aggregated counters -- against the int64
    per-row reference across geometries, depths, PE variants, and
    degenerate streams.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        strips=st.integers(1, 4),
        rows=st.sampled_from([1, 2, 4, 8, 16]),
        cols=st.sampled_from([1, 2, 8]),
        steps=st.integers(1, 16),
        spread=st.integers(0, 8),
        zero_fraction=st.sampled_from([0.0, 0.3, 1.0]),
        ob_skip=st.booleans(),
        saturate=st.booleans(),
        window=st.integers(1, 8),
        warm=st.sampled_from([None, 1.0, 1e6]),
    )
    def test_schedule_bit_identical(
        self,
        seed,
        strips,
        rows,
        cols,
        steps,
        spread,
        zero_fraction,
        ob_skip,
        saturate,
        window,
        warm,
    ):
        from repro.core.tile import accumulator_exponents

        config = TileConfig(
            rows=rows,
            cols=cols,
            pe=PEConfig(
                ob_skip=ob_skip,
                saturate_shifts=saturate,
                shift_window=window,
            ),
        )
        a, b, rng = _strip_stack(
            seed, strips, rows, cols, steps, spread, zero_fraction
        )
        initial = (
            None if warm is None else rng.normal(0, warm, (strips, rows, cols))
        )
        sim = TileSimulator(config)
        eacc = accumulator_exponents(a, b, initial)
        batched = sim._schedule_strip_columns(a, b, eacc)
        for i in range(strips):
            ref = sim._schedule_columns(a[i], b[i], eacc[i])
            for field in (
                "cycles",
                "useful",
                "shift_stall",
                "no_term",
                "terms_processed",
                "terms_zero_skipped",
                "terms_ob_skipped",
            ):
                got = getattr(batched, field)[i]
                want = getattr(ref, field).reshape(got.shape)
                assert (got == want).all(), field


class TestPhaseStacking:
    """Multi-phase stacks == per-phase batched calls, bit for bit."""

    def _workloads(self, model="NCF", acc_profile=None):
        from repro.traces.workloads import build_workloads

        return build_workloads(
            model, progress=0.5, seed=0, acc_profile=acc_profile, cache=None
        )

    def test_stacked_equals_unstacked(self):
        workloads = self._workloads()
        stacked = AcceleratorSimulator().simulate_workload(workloads)
        unstacked = AcceleratorSimulator(
            phase_stacking=False
        ).simulate_workload(workloads)
        assert stacked.to_dict() == unstacked.to_dict()

    def test_stacked_equals_serial_reference(self):
        workloads = self._workloads()
        stacked = AcceleratorSimulator(
            sample_strips=2, sample_steps=8
        ).simulate_workload(workloads)
        serial = AcceleratorSimulator(
            sample_strips=2, sample_steps=8, strip_engine="serial"
        ).simulate_workload(workloads)
        assert stacked.to_dict() == serial.to_dict()

    def test_mixed_tile_configs_group_correctly(self):
        """Per-layer accumulator overrides split phases into distinct
        stacks; results still match the unstacked path."""
        from repro.models.zoo import get_model

        layers = [layer.name for layer in get_model("NCF").layers]
        profile = {layers[0]: 9, layers[1]: 15}
        workloads = self._workloads(acc_profile=profile)
        stacked = AcceleratorSimulator().simulate_workload(workloads)
        unstacked = AcceleratorSimulator(
            phase_stacking=False
        ).simulate_workload(workloads)
        assert stacked.to_dict() == unstacked.to_dict()

    def test_chunking_boundary(self):
        """A tiny stack cap forces multiple chunked engine calls."""
        workloads = self._workloads()
        small = AcceleratorSimulator()
        small._MAX_STACK_ROWS = 1  # one phase per call, degenerate cap
        large = AcceleratorSimulator()
        assert (
            small.simulate_workload(workloads).to_dict()
            == large.simulate_workload(workloads).to_dict()
        )

    def test_pragmatic_stacking(self):
        workloads = self._workloads()
        stacked = PragmaticFPAccelerator().simulate_workload(workloads)
        unstacked = PragmaticFPAccelerator(
            phase_stacking=False
        ).simulate_workload(workloads)
        assert stacked.to_dict() == unstacked.to_dict()


def _phase_workload(seed, sparsity=0.4, size=2048):
    rng = np.random.default_rng(seed)
    values_a = bf16_quantize(rng.normal(0, 1, size))
    values_a[rng.random(size) < sparsity] = 0.0
    values_b = bf16_quantize(rng.normal(0, 1, size))
    return PhaseWorkload(
        model="prop",
        layer="l0",
        phase="AxW",
        macs=4_000_000,
        reduction=512,
        tensor_a="A",
        tensor_b="W",
        values_a=values_a,
        values_b=values_b,
        input_bytes=1e6,
        output_bytes=2.5e5,
    )


class TestAcceleratorEngines:
    """The two strip engines share one operand draw -> identical phases."""

    @pytest.mark.parametrize("cls", [AcceleratorSimulator, PragmaticFPAccelerator])
    def test_engines_bit_identical(self, cls):
        workload = _phase_workload(3)
        batched = cls(strip_engine="batched").simulate_phase(workload)
        serial = cls(strip_engine="serial").simulate_phase(workload)
        assert batched.to_dict() == serial.to_dict()

    def test_engines_identical_on_empty_streams(self):
        workload = _phase_workload(4)
        workload.values_a = np.array([])
        workload.values_b = np.array([])
        batched = AcceleratorSimulator(
            sample_strips=2, sample_steps=8, strip_engine="batched"
        ).simulate_phase(workload)
        serial = AcceleratorSimulator(
            sample_strips=2, sample_steps=8, strip_engine="serial"
        ).simulate_phase(workload)
        assert batched.to_dict() == serial.to_dict()

    def test_engines_identical_on_zero_streams(self):
        workload = _phase_workload(5)
        workload.values_a = np.zeros(512)
        workload.values_b = np.zeros(512)
        batched = AcceleratorSimulator(
            sample_strips=2, sample_steps=8, strip_engine="batched"
        ).simulate_phase(workload)
        serial = AcceleratorSimulator(
            sample_strips=2, sample_steps=8, strip_engine="serial"
        ).simulate_phase(workload)
        assert batched.to_dict() == serial.to_dict()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSimulator(strip_engine="gpu")
