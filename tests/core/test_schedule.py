"""Tests for the vectorized schedule model, cross-checked vs the scalar PE."""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.core.schedule import (
    group_term_weights,
    operand_exponents,
    schedule_groups,
)
from repro.fp.accumulator import AccumulatorSpec
from repro.fp.bfloat16 import bf16_quantize


def _random_groups(rng, n, zero_fraction=0.25, exp_range=6):
    a = bf16_quantize(rng.normal(0, 1, (n, 8)) * 2.0 ** rng.integers(-exp_range, exp_range, (n, 8)))
    b = bf16_quantize(rng.normal(0, 1, (n, 8)) * 2.0 ** rng.integers(-exp_range, exp_range, (n, 8)))
    a[rng.random((n, 8)) < zero_fraction] = 0.0
    b[rng.random((n, 8)) < zero_fraction / 2] = 0.0
    return a, b


class TestScalarEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            PEConfig(),
            PEConfig(ob_skip=False),
            PEConfig(shift_window=1),
            PEConfig(shift_window=8),
            PEConfig(accumulator=AccumulatorSpec(frac_bits=6)),
            PEConfig(ob_skip=False, saturate_shifts=False),
        ],
        ids=["default", "no-ob", "window1", "window8", "narrow-acc", "wide-path"],
    )
    def test_matches_scalar_pe(self, rng, config):
        """The vectorized schedule must agree with the scalar PE group
        by group across configurations."""
        a, b = _random_groups(rng, 150)
        result = schedule_groups(a, b, config)
        for g in range(a.shape[0]):
            pe = FPRakerPE(config)
            trace = pe.process_group(a[g], b[g])
            assert trace.cycles == result.cycles[g]
            assert sum(trace.lane_useful) == result.useful[g].sum()
            assert sum(trace.lane_shift) == result.shift_stall[g].sum()
            assert sum(trace.lane_no_term) == result.no_term[g].sum()
            assert trace.terms_processed == result.terms_processed[g].sum()
            assert trace.terms_ob_skipped == result.terms_ob_skipped[g].sum()
            assert trace.terms_zero_skipped == result.terms_zero_skipped[g].sum()


class TestScheduleInvariants:
    def test_lane_cycle_conservation(self, rng):
        a, b = _random_groups(rng, 500)
        result = schedule_groups(a, b)
        busy = result.useful + result.shift_stall + result.no_term
        assert np.array_equal(busy, np.broadcast_to(result.cycles[:, None], busy.shape))

    def test_minimum_one_cycle(self, rng):
        a = np.zeros((50, 8))
        b = np.zeros((50, 8))
        result = schedule_groups(a, b)
        assert np.all(result.cycles == 1)
        assert np.all(result.no_term == 1)

    def test_useful_equals_kept_terms(self, rng):
        a, b = _random_groups(rng, 500)
        result = schedule_groups(a, b)
        assert np.array_equal(result.useful, result.terms_processed)

    def test_term_slots_conserved(self, rng):
        a, b = _random_groups(rng, 500)
        result = schedule_groups(a, b)
        total = (
            result.terms_processed
            + result.terms_zero_skipped
            + result.terms_ob_skipped
        )
        assert np.all(total == 8)

    def test_ob_never_slower(self, rng):
        a, b = _random_groups(rng, 500, exp_range=8)
        with_ob = schedule_groups(a, b, PEConfig(ob_skip=True))
        without = schedule_groups(a, b, PEConfig(ob_skip=False))
        assert np.all(with_ob.cycles <= without.cycles)

    def test_wider_window_never_slower(self, rng):
        a, b = _random_groups(rng, 300)
        narrow = schedule_groups(a, b, PEConfig(shift_window=1))
        wide = schedule_groups(a, b, PEConfig(shift_window=12))
        assert np.all(wide.cycles <= narrow.cycles)

    def test_accumulator_exponent_enables_skipping(self, rng):
        """A high accumulator exponent pushes small products' terms out
        of bounds."""
        a = bf16_quantize(rng.uniform(1, 2, (100, 8)))
        b = bf16_quantize(rng.uniform(1, 2, (100, 8)))
        cold = schedule_groups(a, b, eacc=None)
        hot = schedule_groups(
            a, b, eacc=np.full(100, 14, dtype=np.int64)
        )
        assert hot.terms_ob_skipped.sum() > cold.terms_ob_skipped.sum()
        assert hot.cycles.sum() <= cold.cycles.sum()


class TestLeadingBatchDims:
    """The schedule API accepts any leading batch shape (the batched
    strip engine hands it [strip, col, step] stacks)."""

    def test_matches_flat_layout(self, rng):
        a, b = _random_groups(rng, 120)
        flat = schedule_groups(a, b)
        shaped = schedule_groups(
            a.reshape(4, 5, 6, 8), b.reshape(4, 5, 6, 8)
        )
        assert shaped.cycles.shape == (4, 5, 6)
        assert shaped.useful.shape == (4, 5, 6, 8)
        assert np.array_equal(shaped.cycles.reshape(-1), flat.cycles)
        assert np.array_equal(shaped.useful.reshape(-1, 8), flat.useful)
        assert np.array_equal(
            shaped.terms_ob_skipped.reshape(-1, 8), flat.terms_ob_skipped
        )
        assert shaped.groups == flat.groups
        assert shaped.total_cycles() == flat.total_cycles()

    def test_eacc_in_leading_shape(self, rng):
        a, b = _random_groups(rng, 60)
        eacc = rng.integers(-10, 20, 60)
        flat = schedule_groups(a, b, eacc=eacc)
        shaped = schedule_groups(
            a.reshape(3, 20, 8), b.reshape(3, 20, 8), eacc=eacc.reshape(3, 20)
        )
        assert np.array_equal(shaped.cycles.reshape(-1), flat.cycles)

    def test_compact_loop_matches_plain(self, rng):
        """schedule_from_weights_compact is the batched engine's loop:
        identical per-group outcomes to schedule_from_weights."""
        from repro.core.schedule import (
            group_term_weights,
            schedule_from_weights,
            schedule_from_weights_compact,
        )

        a, b = _random_groups(rng, 400, exp_range=8)
        config = PEConfig()
        k, kept, zero_slots, ob, _ = group_term_weights(a, b, None, config)
        plain = schedule_from_weights(k, kept, zero_slots, ob, config)
        compact = schedule_from_weights_compact(k, kept, zero_slots, ob, config)
        assert np.array_equal(plain.cycles, compact.cycles)
        assert np.array_equal(plain.useful, compact.useful)
        assert np.array_equal(plain.shift_stall, compact.shift_stall)
        assert np.array_equal(plain.no_term, compact.no_term)


class TestOperandExponents:
    def test_zero_reads_as_minimum(self):
        exps = operand_exponents(np.array([0.0, 1.0, 4.0]))
        assert exps[0] == -127
        assert exps[1] == 0
        assert exps[2] == 2

    def test_matches_frexp(self, bf16_vector):
        exps = operand_exponents(bf16_vector)
        for x, e in zip(bf16_vector, exps):
            if x != 0.0:
                assert 2.0**e <= abs(x) < 2.0 ** (e + 1)


class TestGroupTermWeights:
    def test_k_nonnegative_floor(self, rng):
        """Offsets can only go one position above emax (the carry term)."""
        a, b = _random_groups(rng, 200)
        k, kept, _, _, emax = group_term_weights(a, b, None, PEConfig())
        live = k < (1 << 29)
        assert k[live].min() >= -1

    def test_k_ascending_per_lane(self, rng):
        a, b = _random_groups(rng, 200)
        k, kept, _, _, _ = group_term_weights(a, b, None, PEConfig())
        for g in range(200):
            for lane in range(8):
                ks = k[g, lane, : kept[g, lane]]
                assert np.all(np.diff(ks) > 0)

    def test_ob_threshold_respected(self, rng):
        a, b = _random_groups(rng, 200, exp_range=10)
        config = PEConfig()
        k, kept, _, ob, _ = group_term_weights(a, b, None, config)
        live = k < (1 << 29)
        assert np.all(k[live] <= config.accumulator.ob_threshold)
