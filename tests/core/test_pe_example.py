"""A worked PE example in the spirit of the paper's Fig 5.

The paper walks two lanes with 4-bit significands through the modified
PE: terms fire MSB-first, lanes whose alignment offset is farther than
the shift window from the round's base stall, and a narrow accumulator
lets the tail of a lane be skipped as out of bounds.  This test replays
the same scenario through our PE (which encodes significands in
canonical form rather than raw bits, so term counts differ) and checks
every qualitative behaviour of the figure.
"""

import numpy as np

from repro.core.config import PEConfig
from repro.core.pe import FPRakerPE
from repro.fp.accumulator import AccumulatorSpec, ExtendedAccumulator, exact_product

# The paper's operands: A0 = 2^2 x 1.1101, B0 = 2^3 x 1.0011,
#                       A1 = 2^1 x 1.1011, B1 = 2^1 x 1.1010.
A0 = 2.0**2 * (1.0 + 0.5 + 0.25 + 0.0625)  # 1.1101b
B0 = 2.0**3 * (1.0 + 0.125 + 0.0625)  # 1.0011b
A1 = 2.0**1 * (1.0 + 0.5 + 0.125 + 0.0625)  # 1.1011b
B1 = 2.0**1 * (1.0 + 0.5 + 0.125)  # 1.1010b


class TestFig5Example:
    def test_operands_are_bf16_exact(self):
        from repro.fp.bfloat16 import bf16_quantize

        for x in (A0, B0, A1, B1):
            assert float(bf16_quantize(x)) == x

    def test_exact_result_without_skipping(self):
        pe = FPRakerPE(PEConfig(ob_skip=False))
        pe.process_group([A0, A1], [B0, B1])
        assert pe.value() == _reference_value()

    def test_lane_zero_has_larger_product_exponent(self):
        """ABe0 = 5 vs ABe1 = 2: lane 1's terms trail lane 0's."""
        pe = FPRakerPE(PEConfig(ob_skip=False))
        trace = pe.process_group([A0, A1], [B0, B1])
        # The 3-bit gap plus intra-lane spread forces at least one lane
        # to wait for the other at some round.
        assert trace.cycles >= max(
            trace.lane_useful[0], trace.lane_useful[1]
        )

    def test_narrow_accumulator_skips_tail(self):
        """With a 6-bit accumulator (the figure's illustration), lane
        1's deepest term is out of bounds and processing ends early."""
        wide = FPRakerPE(
            PEConfig(ob_skip=True, accumulator=AccumulatorSpec(frac_bits=12))
        )
        narrow = FPRakerPE(
            PEConfig(ob_skip=True, accumulator=AccumulatorSpec(frac_bits=6))
        )
        wide_trace = wide.process_group([A0, A1], [B0, B1])
        narrow_trace = narrow.process_group([A0, A1], [B0, B1])
        assert narrow_trace.terms_ob_skipped > wide_trace.terms_ob_skipped
        assert narrow_trace.cycles <= wide_trace.cycles

    def test_narrow_accumulator_result_close(self):
        """The skipped tail lies below the narrow accumulator's reach,
        so the result still matches the reference at that precision."""
        narrow_spec = AccumulatorSpec(frac_bits=6)
        pe = FPRakerPE(PEConfig(ob_skip=True, accumulator=narrow_spec))
        pe.process_group([A0, A1], [B0, B1])
        acc = ExtendedAccumulator(narrow_spec)
        acc.accumulate([exact_product(A0, B0), exact_product(A1, B1)])
        grid = 2.0 ** (6 - narrow_spec.frac_bits)  # emax=5 -> 2^(5-6)
        assert abs(pe.value() - acc.value()) <= 4 * grid

    def test_fig5_shift_window_is_three(self):
        assert PEConfig().shift_window == 3


def _reference_value() -> float:
    acc = ExtendedAccumulator()
    acc.accumulate([exact_product(A0, B0), exact_product(A1, B1)])
    return acc.value()
