"""Tests for the report tables and quick experiment runs."""

import pytest

from repro.harness.report import Table, format_cell, geomean
from repro.harness.experiments import (
    run_table1,
    run_table2,
    run_table3,
    run_fig1_sparsity,
    run_fig2_potential,
    run_fig10_compression,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ["a", "b"])
        table.add_row("x", 1.5)
        text = table.render()
        assert "T" in text and "x" in text and "1.5" in text

    def test_row_width_validation(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_column_extraction(self):
        table = Table("T", ["a", "b"])
        table.add_row("x", 1.0)
        table.add_row("y", 2.0)
        assert table.column("b") == [1.0, 2.0]

    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1.25) == "1.25"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell("abc") == "abc"


class TestStaticTables:
    def test_table1_lists_nine_models(self):
        table = run_table1()
        assert len(table.rows) == 9

    def test_table2_iso_area_counts(self):
        table = run_table2()
        tiles = dict(zip(table.column("Parameter"), zip(table.column("FPRaker"), table.column("Baseline"))))
        assert tiles["Tiles"] == (36, 8)
        assert tiles["Total PEs"] == (2304, 512)

    def test_table3_area_ratio(self):
        table = run_table3()
        fpraker_row = table.rows[0]
        assert fpraker_row[4] == pytest.approx(0.22, abs=0.01)
        # Derived iso-area tile counts reproduce the paper's 36 and 20.
        assert table.rows[2][4] == 36
        assert table.rows[3][4] == 20


class TestAnalysisFigures:
    def test_fig1_shapes(self):
        table = run_fig1_sparsity(models=("NCF", "SNLI"), sample_size=8192)
        assert len(table.rows) == 2
        for row in table.rows:
            for cell in row[1:]:
                assert 0.0 <= cell <= 1.0

    def test_fig2_ncf_peak(self):
        table = run_fig2_potential(models=("NCF", "Bert"), sample_size=8192)
        ncf = table.rows[0]
        bert = table.rows[1]
        assert ncf[1] > bert[1]  # AxG

    def test_fig10_compression_ratios(self):
        table = run_fig10_compression(models=("VGG16",), sample_size=8192)
        for cell in table.rows[0][1:]:
            assert 0.1 < cell < 1.0
