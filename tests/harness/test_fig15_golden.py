"""Golden-fixture regression for Fig 15 under the default engine.

``tests/harness/fixtures/fig15_golden.json`` was generated from the
seed roofline path (the exact command is recorded below).  The default
``memory_engine="roofline"`` must keep reproducing it bit for bit --
this is the guard against silent figure drift while the hierarchy
engine evolves.

Regenerate (only when an *intentional* simulator change lands)::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.harness.experiments import run_fig15_stalls
    table = run_fig15_stalls(models=("NCF", "SNLI"))
    with open("tests/harness/fixtures/fig15_golden.json", "w") as fh:
        json.dump(table.to_dict(), fh, indent=2, sort_keys=True)
    PY
"""

import json
from pathlib import Path

import pytest

from repro.harness.experiments import run_fig12_energy, run_fig15_stalls
from repro.harness.runner import SimulationSession

FIXTURE = Path(__file__).parent / "fixtures" / "fig15_golden.json"
GOLDEN_MODELS = ("NCF", "SNLI")


class TestFig15Golden:
    def test_default_engine_reproduces_golden_exactly(self):
        golden = json.loads(FIXTURE.read_text())
        table = run_fig15_stalls(models=GOLDEN_MODELS)
        assert table.to_dict() == golden  # exact floats, headers, title

    def test_roofline_session_reproduces_golden_exactly(self):
        """An explicit roofline session matches the private-session path."""
        golden = json.loads(FIXTURE.read_text())
        session = SimulationSession(memory_engine="roofline")
        table = run_fig15_stalls(models=GOLDEN_MODELS, session=session)
        assert table.to_dict() == golden

    def test_hierarchy_engine_extends_but_does_not_rewrite(self):
        """Hierarchy appends the two memory-stall columns; the shared
        lane-fraction columns keep their roofline values (compute is
        bit-identical across engines)."""
        golden = json.loads(FIXTURE.read_text())
        table = run_fig15_stalls(
            models=GOLDEN_MODELS, memory_engine="hierarchy"
        )
        assert table.headers == golden["headers"] + ["bank stall", "transposer"]
        for row, golden_row in zip(table.rows, golden["rows"]):
            assert row[: len(golden_row)] == golden_row


class TestFig12Hierarchy:
    def test_fraction_columns_partition_the_total(self):
        """The Scratchpad column is carved out of On-chip: the six
        energy-share columns must still sum to 1."""
        table = run_fig12_energy(models=GOLDEN_MODELS, memory_engine="hierarchy")
        assert "Scratchpad" in table.headers
        for row in table.rows[:-1]:  # skip the geomean row
            shares = row[1:-1]  # all fraction columns
            assert sum(shares) == pytest.approx(1.0)
            assert all(share >= 0.0 for share in shares)

    def test_roofline_table_keeps_seed_headers(self):
        table = run_fig12_energy(models=("NCF",))
        assert table.headers == [
            "Model", "Compute", "Control", "Accumulation", "On-chip",
            "Off-chip", "Total vs baseline",
        ]
