"""Tests for the future-work extensions and the capture pipeline."""

import pytest

from repro.harness.extensions import (
    run_inference_extension,
    run_precision_schedule,
)
from repro.traces.capture import capture_training_traces


class TestPrecisionSchedule:
    def test_schedule_structure(self):
        table = run_precision_schedule(
            model="NCF", schedule=((0.2, 6), (0.8, 12))
        )
        assert len(table.rows) == 3  # two stages + geomean
        # The narrow-accumulator stage is at least as fast as fixed.
        assert table.rows[0][2] >= table.rows[0][3] * 0.98


class TestInferenceExtension:
    def test_forward_only_beats_baseline(self):
        table = run_inference_extension(models=("ResNet18-Q",))
        assert table.rows[0][1] > 1.0


class TestCapturePipeline:
    @pytest.fixture(scope="class")
    def captured(self):
        return capture_training_traces(epochs=3, capture_epochs=(0, 2))

    def test_training_converges(self, captured):
        assert captured.history.final_test_accuracy > 0.5

    def test_snapshots_present(self, captured):
        assert set(captured.recorder.snapshots) == {0, 2}
        for tensor in ("I", "W", "G"):
            assert captured.tensor(2, tensor).size > 0

    def test_tensors_are_bf16_exact(self, captured):
        import numpy as np

        from repro.fp.bfloat16 import bf16_quantize

        values = captured.tensor(0, "W")
        assert np.array_equal(bf16_quantize(values), values)

    def test_real_traces_have_term_sparsity(self, captured):
        """The paper's central observation holds on real training
        tensors from our framework, not just the calibrated synthetics."""
        from repro.encoding.booth import term_sparsity

        for tensor in ("I", "W", "G"):
            assert term_sparsity(captured.tensor(2, tensor)) > 0.5
